# Developer entry points.  `make test` is the tier-1 verification command;
# it clears compiled bytecode first so a stale __pycache__ can never
# resurrect the seed's duplicate-basename collection failure.

PYTHON ?= python

.PHONY: test clean-pyc serve-bench

test: clean-pyc
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

clean-pyc:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	find . -name '*.pyc' -delete

serve-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli serve-bench
