# Developer entry points.  `make test` is the tier-1 verification command;
# it clears compiled bytecode first so a stale __pycache__ can never
# resurrect the seed's duplicate-basename collection failure.
# `make test-fast` skips tests marked `slow` (sharding stress runs);
# `make check` additionally fails on any pytest collection warning.

PYTHON ?= python

.PHONY: test test-fast check clean-pyc serve-bench serve-bench-async serve-bench-smoke shard-bench train-bench bench-smoke

test: clean-pyc
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

test-fast: clean-pyc
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m "not slow"

check:
	bash scripts/check_suite.sh

clean-pyc:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	find . -name '*.pyc' -delete

serve-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli serve-bench

# Deadline-driven async front end: sweeps flush deadline vs throughput
# with concurrent producers, asserts prediction parity + the headline
# speedup over per-query serving, and writes BENCH_serve.json.
serve-bench-async:
	PYTHONPATH=src $(PYTHON) -m repro.cli serve-bench --async

# Tiny-workload async serve-bench: validates the emitted
# BENCH_serve.json schema without overwriting the real trajectory;
# hooked into scripts/check_suite.sh so a broken async bench fails
# `make check`.
serve-bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli serve-bench --async --preset smoke \
		--output /tmp/BENCH_serve.smoke.json
	rm -f /tmp/BENCH_serve.smoke.json

shard-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli shard-bench

# Times NObLe/CNNLoc cold fits (seed-equivalent float64 reference vs the
# fused float32 fast path), asserts metric parity + minimum speedup, and
# writes BENCH_train.json — the persistent perf trajectory.
train-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli train-bench

# Tiny-workload train-bench: validates the emitted BENCH_train.json
# schema without overwriting the real trajectory; hooked into
# scripts/check_suite.sh so a broken bench fails `make check`.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli train-bench --preset smoke \
		--output /tmp/BENCH_train.smoke.json
	rm -f /tmp/BENCH_train.smoke.json
