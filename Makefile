# Developer entry points.  `make test` is the tier-1 verification command;
# it clears compiled bytecode first so a stale __pycache__ can never
# resurrect the seed's duplicate-basename collection failure.
# `make test-fast` skips tests marked `slow` (sharding stress runs);
# `make check` additionally fails on any pytest collection warning and
# runs the bench smokes + committed-artifact validation.
# `make ci` / `make ci-fast` are the CI pipeline (lint + check), exactly
# what .github/workflows/ci.yml runs — reproducible locally in one line.

PYTHON ?= python

.PHONY: test test-fast check check-fast lint ci ci-fast check-bench-artifacts \
	clean-pyc serve-bench serve-bench-async serve-bench-smoke shard-bench \
	train-bench bench-smoke quant-bench quant-bench-smoke embed-bench \
	embed-bench-smoke chaos-bench chaos-smoke track-bench track-smoke \
	snapshot warm-serve

test: clean-pyc
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

test-fast: clean-pyc
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m "not slow"

check:
	bash scripts/check_suite.sh

# The fast CI lane: the same strict gate minus tests marked `slow`.
check-fast:
	bash scripts/check_suite.sh -m "not slow"

# Lint gate (pyflakes-class findings only, no style churn): ruff when
# installed, the bundled scripts/lint.py fallback checker otherwise.
lint:
	$(PYTHON) scripts/lint.py

# Bench-drift guard: schema-validate the committed BENCH_train.json /
# BENCH_serve.json trajectories (headline-floor fields included), so a
# hand-edited or stale artifact fails the build.
check-bench-artifacts:
	$(PYTHON) scripts/check_bench_artifacts.py

# The CI pipeline, end to end: lint, full strict suite (slow markers
# included), bench smokes, committed-artifact validation.
ci: lint check

# Two-python fast lane run by CI on every push/PR.
ci-fast: lint check-fast

clean-pyc:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	find . -name '*.pyc' -delete

serve-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli serve-bench

# Deadline-driven async front end: sweeps flush deadline vs throughput
# with concurrent producers, asserts prediction parity + the headline
# speedup over per-query serving, sweeps the multi-process shard-worker
# tier against the thread front end (preset worker counts), runs the
# model-store cold-vs-warm restart leg, and writes BENCH_serve.json.
serve-bench-async:
	rm -rf /tmp/repro-model-store.bench
	PYTHONPATH=src $(PYTHON) -m repro.cli serve-bench --async \
		--store /tmp/repro-model-store.bench
	rm -rf /tmp/repro-model-store.bench

# Tiny-workload async serve-bench: validates the emitted
# BENCH_serve.json schema (store restart leg and a workers=2
# multi-process leg included) without overwriting the real trajectory;
# hooked into scripts/check_suite.sh so a broken async bench fails
# `make check`.  The artifact is left in /tmp so CI can upload it.
serve-bench-smoke:
	rm -rf /tmp/repro-model-store.smoke /tmp/BENCH_serve.smoke.json
	PYTHONPATH=src $(PYTHON) -m repro.cli serve-bench --async --preset smoke \
		--workers 2 \
		--store /tmp/repro-model-store.smoke \
		--output /tmp/BENCH_serve.smoke.json
	rm -rf /tmp/repro-model-store.smoke

shard-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli shard-bench

# Quantized uint8 radio-map scan vs the monolithic float32 brute scan
# on the ~200k-point quant map: asserts the req/s, recall-at-k, and
# bytes-per-fingerprint floors (the serve-bench quant block, standalone).
quant-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli quant-bench

# Tiny-map quant-bench: exercises the binned index + rerank path and
# the recall/bytes floors in seconds (the throughput floor is disabled
# at smoke scale); hooked into scripts/check_suite.sh so a broken
# quantized scan fails `make check`.
quant-bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli quant-bench --preset smoke

# Learned-embedding kNN serving vs raw-RSSI kNN on the same noisy
# radio map: the embed-knn backend serves held-out queries through the
# composed feature-space pipeline (MLP encoder -> quantized index),
# asserting the req/s floor at matched location-recall@k and the
# position-error ceiling (the serve-bench embed block, standalone).
embed-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli embed-bench

# Tiny-map embed-bench: exercises the embedder fit + embedded scan
# path in seconds (accuracy/throughput floors are disabled at smoke
# scale); hooked into scripts/check_suite.sh so a broken embedding
# pipeline fails `make check`.
embed-bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli embed-bench --preset smoke

# Fault-injection storm against the self-protecting serving tier:
# seeded worker kills, SIGSTOP heartbeat stalls, shm-slot and
# store-artifact corruption against fair-shed admission + the
# circuit-broken thread fallback, asserting availability >= the
# preset floor, zero hung requests, and parity on every answered
# request (the serve-bench resilience block, standalone).
chaos-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli chaos-bench

# Seconds-scale chaos storm; hooked into scripts/check_suite.sh so a
# resilience regression (lost request, dirty failure, parity break)
# fails `make check`.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli chaos-bench --preset smoke

# Streaming trajectory serving: concurrent per-user TrackingSessions
# micro-batched across users per time step, asserting bitwise parity
# of every served tick against the offline single-session oracle
# (RMSE delta exactly 0.0 m), zero lost tracks across the
# checkpoint/restart leg, and the preset's concurrent-ticks/sec floor
# (the serve-bench sessions block, standalone).
track-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli track-bench

# Seconds-scale session workload; hooked into scripts/check_suite.sh
# so a session-parity or restart-recovery regression fails `make check`.
track-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli track-bench --preset smoke

# Times NObLe/CNNLoc cold fits (seed-equivalent float64 reference vs the
# fused float32 fast path), asserts metric parity + minimum speedup, and
# writes BENCH_train.json — the persistent perf trajectory.
train-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli train-bench

# Tiny-workload train-bench: validates the emitted BENCH_train.json
# schema without overwriting the real trajectory; hooked into
# scripts/check_suite.sh so a broken bench fails `make check`.  The
# artifact is left in /tmp so CI can upload it.
bench-smoke:
	rm -f /tmp/BENCH_train.smoke.json
	PYTHONPATH=src $(PYTHON) -m repro.cli train-bench --preset smoke \
		--output /tmp/BENCH_train.smoke.json

# Persist a fitted model to ./model-store, then restore and serve it
# without re-fitting — the warm-start deployment story, end to end.
snapshot:
	PYTHONPATH=src $(PYTHON) -m repro.cli snapshot --model noble

warm-serve:
	PYTHONPATH=src $(PYTHON) -m repro.cli warm-serve --model noble
