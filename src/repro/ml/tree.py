"""CART regression trees (variance-reduction splitting), from scratch."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_2d, check_fitted, check_lengths_match


@dataclass
class _Node:
    """A tree node: either a split (feature, threshold) or a leaf value."""

    feature: int = -1
    threshold: float = 0.0
    left: "int" = -1
    right: "int" = -1
    value: "np.ndarray | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.value is not None


class DecisionTreeRegressor:
    """Binary regression tree minimizing within-node variance.

    Supports multi-output targets (the leaf stores the target mean
    vector).  Split search is exact over sorted unique thresholds per
    feature, with optional feature subsampling for forest use.

    Parameters
    ----------
    max_depth:
        Depth limit (None = grow until pure/min-sized).
    min_samples_split:
        Minimum samples a node needs to be considered for splitting.
    min_samples_leaf:
        Minimum samples each child must retain.
    max_features:
        Number of candidate features per split (None = all); forests
        pass ``sqrt``-sized values for decorrelation.
    """

    def __init__(
        self,
        max_depth: "int | None" = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: "int | None" = None,
        rng=None,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        if max_features is not None and max_features < 1:
            raise ValueError(f"max_features must be >= 1, got {max_features}")
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self._rng = ensure_rng(rng)
        self.nodes_: "list[_Node] | None" = None
        self.n_features_: "int | None" = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = check_2d(x, "x")
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        check_lengths_match(x, y, "x", "y")
        if len(x) == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        self.n_features_ = x.shape[1]
        self.nodes_ = []
        self._grow(x, y, np.arange(len(x)), depth=0)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "nodes_")
        x = check_2d(x, "x")
        if x.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {x.shape[1]}"
            )
        out = np.empty((len(x), self._leaf_width()))
        for row, sample in enumerate(x):
            node = self.nodes_[0]
            while not node.is_leaf:
                if sample[node.feature] <= node.threshold:
                    node = self.nodes_[node.left]
                else:
                    node = self.nodes_[node.right]
            out[row] = node.value
        return out if out.shape[1] > 1 else out.ravel()

    @property
    def depth(self) -> int:
        """Actual depth of the grown tree."""
        check_fitted(self, "nodes_")

        def node_depth(index: int) -> int:
            node = self.nodes_[index]
            if node.is_leaf:
                return 0
            return 1 + max(node_depth(node.left), node_depth(node.right))

        return node_depth(0)

    @property
    def n_leaves(self) -> int:
        check_fitted(self, "nodes_")
        return sum(1 for node in self.nodes_ if node.is_leaf)

    # ------------------------------------------------------------ persistence
    def to_arrays(self) -> "dict[str, np.ndarray]":
        """The fitted tree as flat parallel arrays (for persistence).

        ``feature``/``threshold``/``left``/``right`` are per-node;
        ``value`` is (n_nodes, T) with rows meaningful only where
        ``is_leaf`` is set.  :meth:`from_arrays` rebuilds an identical
        predictor; growth hyperparameters are not included (they do not
        affect a fitted tree's predictions).
        """
        check_fitted(self, "nodes_")
        n = len(self.nodes_)
        arrays = {
            "feature": np.array([nd.feature for nd in self.nodes_], dtype=np.int64),
            "threshold": np.array(
                [nd.threshold for nd in self.nodes_], dtype=float
            ),
            "left": np.array([nd.left for nd in self.nodes_], dtype=np.int64),
            "right": np.array([nd.right for nd in self.nodes_], dtype=np.int64),
            "is_leaf": np.array([nd.is_leaf for nd in self.nodes_], dtype=bool),
            "value": np.zeros((n, self._leaf_width()), dtype=float),
            "n_features": np.array(self.n_features_, dtype=np.int64),
        }
        for row, node in enumerate(self.nodes_):
            if node.is_leaf:
                arrays["value"][row] = node.value
        return arrays

    @classmethod
    def from_arrays(cls, arrays: "dict[str, np.ndarray]") -> "DecisionTreeRegressor":
        """Rebuild a fitted tree from :meth:`to_arrays` output."""
        tree = cls()
        is_leaf = np.asarray(arrays["is_leaf"], dtype=bool).ravel()
        feature = np.asarray(arrays["feature"], dtype=int).ravel()
        threshold = np.asarray(arrays["threshold"], dtype=float).ravel()
        left = np.asarray(arrays["left"], dtype=int).ravel()
        right = np.asarray(arrays["right"], dtype=int).ravel()
        value = np.asarray(arrays["value"], dtype=float)
        n = len(is_leaf)
        if n == 0 or not is_leaf.any():
            raise ValueError("tree arrays describe a tree without leaves")
        if not (
            len(feature) == len(threshold) == len(left) == len(right)
            == len(value) == n
        ):
            raise ValueError("tree arrays have mismatched node counts")
        children = np.concatenate([left[~is_leaf], right[~is_leaf]])
        if len(children) and (
            children.min() < 0 or children.max() >= n
        ):
            raise ValueError("tree arrays reference out-of-range child nodes")
        tree.nodes_ = [
            _Node(value=value[i].copy())
            if is_leaf[i]
            else _Node(
                feature=int(feature[i]),
                threshold=float(threshold[i]),
                left=int(left[i]),
                right=int(right[i]),
            )
            for i in range(n)
        ]
        tree.n_features_ = int(np.asarray(arrays["n_features"]))
        return tree

    # ----------------------------------------------------------------- growth
    def _grow(self, x: np.ndarray, y: np.ndarray, index: np.ndarray, depth: int) -> int:
        node_id = len(self.nodes_)
        self.nodes_.append(_Node())
        targets = y[index]
        if (
            len(index) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.allclose(targets, targets[0])
        ):
            self.nodes_[node_id].value = targets.mean(axis=0)
            return node_id
        split = self._best_split(x, y, index)
        if split is None:
            self.nodes_[node_id].value = targets.mean(axis=0)
            return node_id
        feature, threshold = split
        mask = x[index, feature] <= threshold
        left = self._grow(x, y, index[mask], depth + 1)
        right = self._grow(x, y, index[~mask], depth + 1)
        node = self.nodes_[node_id]
        node.feature = feature
        node.threshold = threshold
        node.left = left
        node.right = right
        return node_id

    def _best_split(self, x, y, index) -> "tuple[int, float] | None":
        n = len(index)
        features = np.arange(self.n_features_)
        if self.max_features is not None and self.max_features < len(features):
            features = self._rng.choice(
                features, size=self.max_features, replace=False
            )
        targets = y[index]
        total_sum = targets.sum(axis=0)
        total_sq = (targets**2).sum()
        best_score = np.inf
        best: "tuple[int, float] | None" = None
        for feature in features:
            values = x[index, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_targets = targets[order]
            cum_sum = np.cumsum(sorted_targets, axis=0)
            cum_sq = np.cumsum(np.sum(sorted_targets**2, axis=1))
            # candidate split after position i (1-based left size); the
            # range keeps both children >= min_samples_leaf
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if sorted_values[i - 1] == sorted_values[i]:
                    continue  # cannot split between equal values
                left_n, right_n = i, n - i
                left_sum = cum_sum[i - 1]
                right_sum = total_sum - left_sum
                left_sq = cum_sq[i - 1]
                right_sq = total_sq - left_sq
                # SSE = Σy² - |Σy|²/n per side, summed over outputs
                score = (
                    left_sq
                    - np.sum(left_sum**2) / left_n
                    + right_sq
                    - np.sum(right_sum**2) / right_n
                )
                if score < best_score - 1e-12:
                    best_score = score
                    threshold = (sorted_values[i - 1] + sorted_values[i]) / 2.0
                    best = (int(feature), float(threshold))
        return best

    def _leaf_width(self) -> int:
        for node in self.nodes_:
            if node.is_leaf:
                return len(node.value)
        raise RuntimeError("tree has no leaves")  # pragma: no cover
