"""Random forest regression: bagged CART trees with feature subsampling."""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import check_2d, check_fitted, check_lengths_match


class RandomForestRegressor:
    """Breiman-style random forest for (multi-output) regression.

    Each tree trains on a bootstrap resample with ``max_features``
    candidate features per split (√D by default); predictions are the
    ensemble mean.  Out-of-bag error is tracked when ``oob`` is set.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: "int | None" = None,
        min_samples_leaf: int = 1,
        max_features: "int | str | None" = "sqrt",
        bootstrap: bool = True,
        oob: bool = False,
        rng=None,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if oob and not bootstrap:
            raise ValueError("oob error requires bootstrap sampling")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.oob = oob
        self._rng = ensure_rng(rng)
        self.trees_: "list[DecisionTreeRegressor] | None" = None
        self.oob_error_: "float | None" = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = check_2d(x, "x")
        y = np.asarray(y, dtype=float)
        squeeze = y.ndim == 1
        if squeeze:
            y = y[:, None]
        check_lengths_match(x, y, "x", "y")
        n, d = x.shape
        max_features = self._resolve_max_features(d)
        tree_rngs = spawn_rngs(self._rng, self.n_estimators)

        self.trees_ = []
        oob_sum = np.zeros_like(y)
        oob_count = np.zeros(n)
        for rng in tree_rngs:
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=rng,
            )
            tree.fit(x[sample], y[sample])
            self.trees_.append(tree)
            if self.oob:
                out_of_bag = np.setdiff1d(np.arange(n), sample)
                if len(out_of_bag):
                    prediction = tree.predict(x[out_of_bag])
                    if prediction.ndim == 1:
                        prediction = prediction[:, None]
                    oob_sum[out_of_bag] += prediction
                    oob_count[out_of_bag] += 1
        if self.oob:
            seen = oob_count > 0
            if seen.any():
                oob_prediction = oob_sum[seen] / oob_count[seen, None]
                self.oob_error_ = float(
                    np.mean(np.sum((oob_prediction - y[seen]) ** 2, axis=1))
                )
        self._squeeze = squeeze
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "trees_")
        x = check_2d(x, "x")
        total = None
        for tree in self.trees_:
            prediction = tree.predict(x)
            if prediction.ndim == 1:
                prediction = prediction[:, None]
            total = prediction if total is None else total + prediction
        mean = total / len(self.trees_)
        return mean.ravel() if self._squeeze else mean

    def _resolve_max_features(self, d: int) -> "int | None":
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if self.max_features == "log2":
            return max(1, int(np.log2(d)))
        if isinstance(self.max_features, (int, np.integer)):
            return int(min(self.max_features, d))
        raise ValueError(
            f"max_features must be None, 'sqrt', 'log2', or an int, "
            f"got {self.max_features!r}"
        )
