"""Generic kNN regression on top of the manifold neighbor index."""

from __future__ import annotations

import numpy as np

from repro.manifold.neighbors import KNNIndex
from repro.utils.validation import check_2d, check_fitted, check_lengths_match


class KNNRegressor:
    """k-nearest-neighbor (multi-output) regression.

    ``weights="uniform"`` averages the k neighbors; ``"distance"`` uses
    inverse-distance weighting (exact matches dominate).

    ``shards > 1`` swaps the monolithic index for an exact
    :class:`repro.sharding.ShardedKNNIndex` (k-means cells by default,
    since generic regression carries no building/floor labels); neighbor
    distances match the monolithic scan exactly, with neighbor identity
    unspecified only within exact distance ties (as in any full scan).
    """

    def __init__(
        self,
        k: int = 5,
        weights: str = "uniform",
        shards: int = 1,
        partitioner="kmeans",
        quantize_bins: "int | None" = None,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if weights not in ("uniform", "distance"):
            raise ValueError(
                f"weights must be 'uniform' or 'distance', got {weights!r}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.k = int(k)
        self.weights = weights
        self.shards = int(shards)
        self.partitioner = partitioner
        self.quantize_bins = (
            None if quantize_bins is None else int(quantize_bins)
        )
        self.index_ = None  # KNNIndex | ShardedKNNIndex after fit
        self.targets_: "np.ndarray | None" = None
        self._squeeze = False

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        x = check_2d(x, "x")
        y = np.asarray(y, dtype=float)
        self._squeeze = y.ndim == 1
        if self._squeeze:
            y = y[:, None]
        check_lengths_match(x, y, "x", "y")
        if len(x) < self.k:
            raise ValueError(f"need at least k={self.k} samples, got {len(x)}")
        binner = None
        if self.quantize_bins is not None:
            from repro.quantization import FeatureBinner

            binner = FeatureBinner(n_bins=self.quantize_bins).fit(x)
        if self.shards > 1:
            from repro.sharding import ShardedKNNIndex

            self.index_ = ShardedKNNIndex(
                x,
                n_shards=self.shards,
                partitioner=self.partitioner,
                method="brute",
                binner=binner,
            )
        else:
            self.index_ = KNNIndex(x, method="brute", binner=binner)
        self.targets_ = y
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "index_")
        distances, indices = self.index_.query(check_2d(x, "x"), k=self.k)
        neighbor_targets = self.targets_[indices]  # (N, k, T)
        if self.weights == "distance":
            w = 1.0 / (distances + 1e-12)
            w /= w.sum(axis=1, keepdims=True)
            out = np.sum(neighbor_targets * w[:, :, None], axis=1)
        else:
            out = neighbor_targets.mean(axis=1)
        return out.ravel() if self._squeeze else out
