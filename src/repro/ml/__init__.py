"""Classical ML substrate: decision trees, random forests, kNN regression.

The paper's §II cites [8] (Gonzalez et al., DATE 2017) as using "nearest
neighbors and random forest regression to predict the travel distance
based on IMU readings"; these from-scratch implementations power the
corresponding tracking comparator (:mod:`repro.tracking.distance_ml`)
and are generally useful building blocks.
"""

from repro.ml.tree import DecisionTreeRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn_regressor import KNNRegressor

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor", "KNNRegressor"]
