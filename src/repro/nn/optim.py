"""First-order optimizers operating on :class:`Parameter` objects.

All three optimizers have a **fused** update path (the default): when
every parameter shares one dtype, parameter values and gradients are
repacked into a single contiguous flat buffer (each ``Parameter.data`` /
``.grad`` becomes a view into it), optimizer state lives in matching
flat arrays, and a step is a dozen in-place ``out=`` ufunc calls over
one array — instead of ~12 allocating calls *per parameter*.  The fused
math is algebraically identical to the legacy allocating path;
``fused=False`` keeps the original per-parameter formulation,
byte-for-byte the seed implementation, as a reference for parity tests
and for the ``train-bench`` float64 baseline leg.

Because fusing rebinds ``Parameter.data``, construct the optimizer
*after* any ``Module.astype`` casts and do not rebind parameter arrays
afterwards (in-place updates like ``load_state_dict`` are fine — they
write through the views).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list and the learning rate."""

    def __init__(self, parameters, lr: float, fused: bool = True):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = float(lr)
        self.fused = bool(fused)
        self._flat_data: "np.ndarray | None" = None
        self._flat_grad: "np.ndarray | None" = None
        if self.fused:
            self._flatten_parameters()
        #: (data, grad) pairs the fused step iterates — one flat pair
        #: when parameters were packed, else one pair per parameter.
        if self._flat_data is not None:
            self._groups = [(self._flat_data, self._flat_grad)]
        else:
            self._groups = [(p.data, p.grad) for p in self.parameters]
        self._scratch = (
            [np.empty_like(data) for data, _grad in self._groups]
            if self.fused
            else []
        )

    def _flatten_parameters(self) -> None:
        """Repack all parameters into one flat value/grad buffer pair.

        Skipped (harmlessly) for a single parameter or mixed dtypes —
        the fused step then just iterates per-parameter buffers.
        """
        dtypes = {p.data.dtype for p in self.parameters}
        if len(self.parameters) < 2 or len(dtypes) != 1:
            return
        total = sum(p.data.size for p in self.parameters)
        flat_data = np.empty(total, dtype=dtypes.pop())
        flat_grad = np.zeros(total, dtype=flat_data.dtype)
        offset = 0
        for param in self.parameters:
            size = param.data.size
            view = flat_data[offset : offset + size]
            view[...] = param.data.ravel()
            param.data = view.reshape(param.data.shape)
            grad_view = flat_grad[offset : offset + size]
            grad_view[...] = param.grad.ravel()
            param.grad = grad_view.reshape(param.grad.shape)
            offset += size
        self._flat_data = flat_data
        self._flat_grad = flat_grad

    def _state(self) -> "list[np.ndarray]":
        """Zero-initialized state arrays matching the update groups."""
        return [np.zeros_like(data) for data, _grad in self._groups]

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        if self._flat_grad is not None:
            self._flat_grad[...] = 0.0
            return
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
        fused: bool = True,
    ):
        super().__init__(parameters, lr, fused=fused)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        if self.fused:
            self._velocity = self._state() if momentum else []
        else:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        if self.fused:
            self._step_fused()
            return
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data -= self.lr * update

    def _step_fused(self) -> None:
        velocities = self._velocity or [None] * len(self._groups)
        for (data, grad), velocity, scratch in zip(
            self._groups, velocities, self._scratch
        ):
            if self.weight_decay:
                # scratch := grad + wd * data  (the gradient stays intact)
                np.multiply(data, self.weight_decay, out=scratch)
                scratch += grad
                grad = scratch
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    # scratch := grad + momentum * velocity
                    if grad is scratch:
                        scratch += self.momentum * velocity
                    else:
                        np.multiply(velocity, self.momentum, out=scratch)
                        scratch += grad
                    update = scratch
                else:
                    update = velocity
            else:
                update = grad
            if update is scratch:
                scratch *= self.lr
            else:
                np.multiply(update, self.lr, out=scratch)
            data -= scratch


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton): per-parameter adaptive step sizes."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        fused: bool = True,
    ):
        super().__init__(parameters, lr, fused=fused)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.alpha = float(alpha)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        if self.fused:
            self._sq_avg = self._state()
            self._decayed = (
                [np.empty_like(d) for d, _ in self._groups] if weight_decay else []
            )
        else:
            self._sq_avg = [np.zeros_like(p.data) for p in self.parameters]
            self._decayed = []

    def step(self) -> None:
        if self.fused:
            self._step_fused()
            return
        for param, sq_avg in zip(self.parameters, self._sq_avg):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            sq_avg *= self.alpha
            sq_avg += (1.0 - self.alpha) * grad**2
            param.data -= self.lr * grad / (np.sqrt(sq_avg) + self.eps)

    def _step_fused(self) -> None:
        for index, ((data, grad), sq_avg, scratch) in enumerate(
            zip(self._groups, self._sq_avg, self._scratch)
        ):
            if self.weight_decay:
                decayed = self._decayed[index]
                np.multiply(data, self.weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            sq_avg *= self.alpha
            np.multiply(grad, grad, out=scratch)
            scratch *= 1.0 - self.alpha
            sq_avg += scratch
            np.sqrt(sq_avg, out=scratch)
            scratch += self.eps
            np.divide(grad, scratch, out=scratch)
            scratch *= self.lr
            data -= scratch


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction and optional weight decay."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        fused: bool = True,
    ):
        super().__init__(parameters, lr, fused=fused)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        if self.fused:
            self._m = self._state()
            self._v = self._state()
            self._decayed = (
                [np.empty_like(d) for d, _ in self._groups] if weight_decay else []
            )
        else:
            self._m = [np.zeros_like(p.data) for p in self.parameters]
            self._v = [np.zeros_like(p.data) for p in self.parameters]
            self._decayed = []
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        if self.fused:
            self._step_fused(bias1, bias2)
            return
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _step_fused(self, bias1: float, bias2: float) -> None:
        # The fused state is *unnormalized*: M = m/(1-beta1) and
        # V = v/(1-beta2), i.e. M_t = beta1*M_{t-1} + g (no scratch
        # multiply) and V_t = beta2*V_{t-1} + g^2.  The (1-beta) factors
        # and both bias corrections fold into scalars of the final step
        #   data -= c * M / (sqrt(V) + eps')
        # with c = lr*(1-beta1)*k/bias1, k = sqrt(bias2/(1-beta2)),
        # eps' = eps*k — three fewer full-array passes per step than the
        # naive in-place formulation, algebraically identical to Adam.
        k = float(np.sqrt(bias2 / (1.0 - self.beta2)))
        eps_corrected = self.eps * k
        scale = self.lr * (1.0 - self.beta1) * k / bias1
        for index, ((data, grad), m, v, scratch) in enumerate(
            zip(self._groups, self._m, self._v, self._scratch)
        ):
            if self.weight_decay:
                decayed = self._decayed[index]
                np.multiply(data, self.weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            m *= self.beta1
            m += grad
            v *= self.beta2
            np.multiply(grad, grad, out=scratch)
            v += scratch
            np.sqrt(v, out=scratch)
            scratch += eps_corrected
            np.divide(m, scratch, out=scratch)
            scratch *= scale
            data -= scratch
