"""First-order optimizers operating on :class:`Parameter` objects."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list and the learning rate."""

    def __init__(self, parameters, lr: float):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = float(lr)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data -= self.lr * update


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton): per-parameter adaptive step sizes."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.alpha = float(alpha)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._sq_avg = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, sq_avg in zip(self.parameters, self._sq_avg):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            sq_avg *= self.alpha
            sq_avg += (1.0 - self.alpha) * grad**2
            param.data -= self.lr * grad / (np.sqrt(sq_avg) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction and optional weight decay."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
