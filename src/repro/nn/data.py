"""Dataset and DataLoader abstractions for mini-batch training."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_lengths_match


class Dataset:
    """Minimal dataset interface: ``__len__`` and integer ``__getitem__``."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class TensorDataset(Dataset):
    """Zip several equally long arrays into (row, row, ...) samples."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("TensorDataset needs at least one array")
        self.arrays = [np.asarray(a) for a in arrays]
        first = self.arrays[0]
        for other in self.arrays[1:]:
            check_lengths_match(first, other, "arrays[0]", "a later array")

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index: int) -> tuple:
        return tuple(a[index] for a in self.arrays)


class DataLoader:
    """Iterate a dataset in shuffled mini-batches of stacked arrays.

    Yields tuples of arrays, one per underlying tensor, each with a
    leading batch dimension.  ``drop_last`` discards a trailing partial
    batch — needed when batchnorm requires batches of at least 2.
    """

    #: Above this many bytes the shuffled fast path gathers per batch
    #: instead of materializing a full shuffled copy of the arrays.
    PREGATHER_LIMIT_BYTES = 1 << 28

    def __init__(
        self,
        dataset: "Dataset | Sequence",
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        rng=None,
        fast_collate: bool = True,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        #: ``False`` forces the historical per-sample ``__getitem__`` +
        #: ``np.stack`` collation even for a :class:`TensorDataset` —
        #: the seed's exact loop, used by the train-bench reference leg.
        self.fast_collate = bool(fast_collate)
        self._rng = ensure_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        # Fast path: a TensorDataset is just parallel arrays, so a batch
        # is a slice or one fancy-index gather per array — identical
        # values and dtypes to the per-sample stack, without N python
        # __getitem__ calls and an np.stack per column.  Small shuffled
        # datasets are permuted once per epoch so every batch is a
        # zero-copy view; unshuffled iteration always yields views.
        arrays = getattr(self.dataset, "arrays", None) if self.fast_collate else None
        pregathered = None
        if arrays is not None:
            if not self.shuffle:
                pregathered = arrays
            elif sum(a.nbytes for a in arrays) <= self.PREGATHER_LIMIT_BYTES:
                pregathered = [a[order] for a in arrays]
        for start in range(0, n, self.batch_size):
            stop = start + self.batch_size
            index = order[start:stop]
            if self.drop_last and len(index) < self.batch_size:
                return
            if pregathered is not None:
                yield tuple(a[start:stop] for a in pregathered)
            elif arrays is not None:
                yield tuple(a[index] for a in arrays)
            else:
                samples = [self.dataset[int(i)] for i in index]
                yield tuple(np.stack(column) for column in zip(*samples))
