"""Batch normalization (Ioffe & Szegedy, 2015), used by the paper's models."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter


class BatchNorm1d(Module):
    """Normalize each feature over the batch, with learnable scale/shift.

    In training mode the batch mean/variance are used and running
    statistics are updated with exponential ``momentum``; in eval mode the
    running statistics are used, so single-sample inference is well
    defined (important for the on-device latency story in the paper).
    """

    _buffer_names = ("running_mean", "running_var")

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        self.num_features = num_features
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expected shape (N, {self.num_features}), got {x.shape}"
            )
        if self.training:
            if x.shape[0] < 2:
                raise ValueError(
                    "BatchNorm1d in training mode needs a batch of at least 2 samples"
                )
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (
                (1.0 - self.momentum) * self.running_mean + self.momentum * mean
            )
            # unbiased variance for the running estimate, as torch does
            n = x.shape[0]
            unbiased = var * n / (n - 1)
            self.running_var = (
                (1.0 - self.momentum) * self.running_var + self.momentum * unbiased
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma.data * x_hat + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        n = grad_output.shape[0]
        self.gamma.grad += np.sum(grad_output * x_hat, axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        if not self.training:
            # eval mode: mean/var are constants, gradient is a plain affine chain
            return grad_output * self.gamma.data * inv_std
        dx_hat = grad_output * self.gamma.data
        # standard batchnorm backward, vectorized over features
        return (
            inv_std
            / n
            * (
                n * dx_hat
                - dx_hat.sum(axis=0)
                - x_hat * np.sum(dx_hat * x_hat, axis=0)
            )
        )
