"""Batch normalization (Ioffe & Szegedy, 2015), used by the paper's models."""

from __future__ import annotations

import numpy as np

from repro.nn.dtypes import as_float, resolve_dtype
from repro.nn.module import Module, Parameter


class BatchNorm1d(Module):
    """Normalize each feature over the batch, with learnable scale/shift.

    In training mode the batch mean/variance are used and running
    statistics are updated with exponential ``momentum``; in eval mode the
    running statistics are used, so single-sample inference is well
    defined (important for the on-device latency story in the paper).
    ``dtype`` selects the compute precision (float64 default); running
    statistics are updated in place so steady-state training allocates
    nothing for them.
    """

    _buffer_names = ("running_mean", "running_var")

    def __init__(
        self,
        num_features: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
        dtype=None,
    ):
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        self.num_features = num_features
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.dtype = resolve_dtype(dtype)
        self.gamma = Parameter(np.ones(num_features, dtype=self.dtype), name="gamma")
        self.beta = Parameter(np.zeros(num_features, dtype=self.dtype), name="beta")
        self.running_mean = np.zeros(num_features, dtype=self.dtype)
        self.running_var = np.ones(num_features, dtype=self.dtype)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x, self.dtype)
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expected shape (N, {self.num_features}), got {x.shape}"
            )
        if self.training and x.shape[0] < 2:
            raise ValueError(
                "BatchNorm1d in training mode needs a batch of at least 2 samples"
            )
        if self._use_workspaces:
            x_hat = self._workspace("x_hat", x.shape, self.dtype)
            if self.training:
                n = x.shape[0]
                # bare add.reduce skips np.mean's wrapper overhead
                mean = np.add.reduce(x, axis=0)
                mean *= 1.0 / n
                np.subtract(x, mean, out=x_hat)
                # fused biased variance from the centered activations —
                # one einsum pass instead of np.var's extra sweeps
                var = np.einsum("ij,ij->j", x_hat, x_hat)
                var *= 1.0 / n
                self._update_running(mean, var, n)
            else:
                mean = self.running_mean
                var = self.running_var
                np.subtract(x, mean, out=x_hat)
            inv_std = 1.0 / np.sqrt(var + self.eps)
            x_hat *= inv_std
            out = self._workspace("out", x.shape, self.dtype)
            np.multiply(x_hat, self.gamma.data, out=out)
            out += self.beta.data
            self._cache = (x_hat, inv_std)
            return out
        if self.training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self._update_running(mean, var, x.shape[0])
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma.data * x_hat + self.beta.data

    def _update_running(self, mean: np.ndarray, var: np.ndarray, n: int) -> None:
        """Exponential running-statistics update, in place.

        The running variance uses the unbiased estimate, as torch does.
        """
        self.running_mean *= 1.0 - self.momentum
        self.running_mean += self.momentum * mean
        self.running_var *= 1.0 - self.momentum
        self.running_var += (self.momentum * n / (n - 1)) * var

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        n = grad_output.shape[0]
        if self._use_workspaces:
            # the parameter-gradient reductions double as the backward's
            # batch statistics: since gamma is a per-feature constant,
            # dx = gamma*inv_std * (go - Σgo/n - x_hat*Σ(go*x_hat)/n),
            # so Σgo (beta grad) and Σ(go*x_hat) (gamma grad) are each
            # computed once and reused — two single-pass reductions
            # total, no (N, F) temporaries
            go_xhat = np.einsum("ij,ij->j", grad_output, x_hat)
            go_sum = grad_output.sum(axis=0)
            if self._overwrite_grads:
                self.gamma.grad[...] = go_xhat
                self.beta.grad[...] = go_sum
            else:
                self.gamma.grad += go_xhat
                self.beta.grad += go_sum
            if not self.training:
                return grad_output * self.gamma.data * inv_std
            grad = self._workspace("grad", grad_output.shape, self.dtype)
            np.multiply(x_hat, go_xhat, out=grad)
            grad += go_sum
            grad *= 1.0 / n
            np.subtract(grad_output, grad, out=grad)
            grad *= self.gamma.data * inv_std
            return grad
        self.gamma.grad += np.sum(grad_output * x_hat, axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        if not self.training:
            # eval mode: mean/var are constants, gradient is a plain affine chain
            return grad_output * self.gamma.data * inv_std
        dx_hat = grad_output * self.gamma.data
        # standard batchnorm backward, vectorized over features
        return (
            inv_std
            / n
            * (
                n * dx_hat
                - dx_hat.sum(axis=0)
                - x_hat * np.sum(dx_hat * x_hat, axis=0)
            )
        )
