"""Floating dtype discipline for the numpy NN stack.

The framework historically computed everything in float64 (every layer
began with ``np.asarray(x, dtype=float)``).  The float32 fast path needs
the opposite guarantee: once a graph is built with ``dtype="float32"``,
no layer, loss, or optimizer may silently upcast an activation or a
gradient back to float64 — a single stray ``np.asarray(..., dtype=float)``
or float64 constant doubles the memory traffic of every downstream op.

Two helpers enforce the discipline:

* :func:`resolve_dtype` canonicalizes a user-facing ``dtype`` argument
  (``None`` keeps the historical float64 default) and rejects anything
  that is not float32/float64.
* :func:`as_float` replaces ``np.asarray(x, dtype=float)`` at every
  graph entry point: it keeps float32/float64 arrays untouched (no copy,
  no upcast) and converts everything else (ints, bools, lists) to the
  requested dtype.
"""

from __future__ import annotations

import numpy as np

#: The historical default of the whole stack.
DEFAULT_DTYPE = np.dtype(np.float64)

#: dtypes the stack is allowed to compute in.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def resolve_dtype(dtype) -> np.dtype:
    """Canonicalize a ``dtype`` argument; ``None`` means float64.

    Accepts anything ``np.dtype`` does (``"float32"``, ``np.float32``,
    a dtype instance) and raises ``ValueError`` for non-float32/float64
    dtypes so integer or float16 graphs fail loudly at construction.
    """
    if dtype is None:
        return DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported dtype {dtype!r}; the nn stack computes in "
            f"float32 or float64"
        )
    return resolved


def as_float(x, dtype=None) -> np.ndarray:
    """Coerce ``x`` to a floating array without silent upcasts.

    With ``dtype=None``: float32/float64 arrays pass through untouched
    (this is what keeps a float32 graph float32 end to end); any other
    dtype (int labels, bool masks, python lists) converts to float64,
    matching the stack's historical behavior.  With an explicit
    ``dtype``, the result is cast to exactly that dtype (no copy when it
    already matches).
    """
    x = np.asarray(x)
    if dtype is None:
        if x.dtype in SUPPORTED_DTYPES:
            return x
        return x.astype(DEFAULT_DTYPE)
    dtype = np.dtype(dtype)
    if x.dtype == dtype:
        return x
    return x.astype(dtype)
