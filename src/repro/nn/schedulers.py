"""Learning-rate schedules driven by epoch index."""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRScheduler):
    """Keep the base learning rate forever (explicit no-op schedule)."""

    def get_lr(self) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineLR(LRScheduler):
    """Cosine annealing from the base LR down to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        if min_lr < 0:
            raise ValueError(f"min_lr must be non-negative, got {min_lr}")
        self.t_max = int(t_max)
        self.min_lr = float(min_lr)

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )
