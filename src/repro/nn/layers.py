"""Dense layers and element-wise activations with explicit backward passes."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn import init as init_schemes
from repro.utils.rng import ensure_rng


class Linear(Module):
    """Affine map ``y = x @ W + b`` with W of shape (in_features, out_features).

    Weights follow the initialization scheme named by ``weight_init``
    (Xavier uniform by default, matching the paper); biases start at zero.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: str = "xavier_uniform",
        rng=None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"features must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        initializer = init_schemes.get_initializer(weight_init)
        self.weight = Parameter(
            initializer((in_features, out_features), rng=ensure_rng(rng)),
            name="weight",
        )
        self.has_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_features), name="bias")
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._input = x
        out = x @ self.weight.data
        if self.has_bias:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._input.T @ grad_output
        if self.has_bias:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data.T


class Identity(Module):
    """Pass-through layer; useful as a no-op placeholder in ablations."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=float)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class Tanh(Module):
    """Hyperbolic tangent activation (the paper's choice)."""

    def __init__(self):
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Sigmoid(Module):
    """Logistic sigmoid; numerically stable split on sign."""

    def __init__(self):
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = stable_sigmoid(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Softmax(Module):
    """Row-wise softmax.

    Prefer :class:`SoftmaxCrossEntropyLoss` (which fuses log-softmax with
    NLL) for training; this layer exists for inference-time probability
    output and for composing custom heads.
    """

    def __init__(self):
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = stable_softmax(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        s = self._output
        dot = np.sum(grad_output * s, axis=1, keepdims=True)
        return s * (grad_output - dot)


class Dropout(Module):
    """Inverted dropout: active only in training mode."""

    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = ensure_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Sigmoid that avoids overflow for large |x|."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def stable_softmax(x: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max subtraction for stability."""
    x = np.asarray(x, dtype=float)
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)
