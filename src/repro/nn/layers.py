"""Dense layers and element-wise activations with explicit backward passes.

Every layer is dtype-disciplined: parameterized layers take a ``dtype``
argument (float32/float64, default float64) and cast their input to it;
parameter-free activations simply follow the dtype of the stream, so a
float32 graph never silently upcasts.  When workspaces are enabled (see
:meth:`repro.nn.Module.use_workspaces`) the hot-path layers serve
forward outputs and backward gradients from reused per-module buffers
instead of allocating fresh arrays each call.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtypes import as_float, resolve_dtype
from repro.nn.module import Module, Parameter
from repro.nn import init as init_schemes
from repro.utils.rng import ensure_rng


class Linear(Module):
    """Affine map ``y = x @ W + b`` with W of shape (in_features, out_features).

    Weights follow the initialization scheme named by ``weight_init``
    (Xavier uniform by default, matching the paper); biases start at
    zero.  ``dtype`` selects the compute precision of the whole layer —
    weights, activations, and gradients; inputs are cast to it on entry
    so a float64 caller cannot silently upcast a float32 graph.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: str = "xavier_uniform",
        rng=None,
        dtype=None,
        input_grad: bool = True,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"features must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        #: False on a network's first layer skips the input-gradient
        #: matmul in backward (nothing consumes d loss/d input there);
        #: backward then returns None.
        self.input_grad = bool(input_grad)
        self.dtype = resolve_dtype(dtype)
        initializer = init_schemes.get_initializer(weight_init)
        self.weight = Parameter(
            initializer(
                (in_features, out_features), rng=ensure_rng(rng), dtype=self.dtype
            ),
            name="weight",
        )
        self.has_bias = bias
        if bias:
            self.bias = Parameter(
                init_schemes.zeros(out_features, dtype=self.dtype), name="bias"
            )
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x, self.dtype)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._input = x
        if self._use_workspaces:
            out = self._workspace("out", (x.shape[0], self.out_features), self.dtype)
            np.matmul(x, self.weight.data, out=out)
            if self.has_bias:
                out += self.bias.data
            return out
        out = x @ self.weight.data
        if self.has_bias:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> "np.ndarray | None":
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_output = as_float(grad_output, self.dtype)
        if self._use_workspaces:
            if self._overwrite_grads:
                # grads are zero before the (single) backward of the
                # training step, so accumulate == overwrite — matmul
                # straight into the gradient arrays
                np.matmul(self._input.T, grad_output, out=self.weight.grad)
                if self.has_bias:
                    np.sum(grad_output, axis=0, out=self.bias.grad)
            else:
                grad_w = self._workspace("grad_w", self.weight.data.shape, self.dtype)
                np.matmul(self._input.T, grad_output, out=grad_w)
                self.weight.grad += grad_w
                if self.has_bias:
                    grad_b = self._workspace(
                        "grad_b", self.bias.data.shape, self.dtype
                    )
                    np.sum(grad_output, axis=0, out=grad_b)
                    self.bias.grad += grad_b
            if not self.input_grad:
                return None
            grad_x = self._workspace("grad_x", self._input.shape, self.dtype)
            np.matmul(grad_output, self.weight.data.T, out=grad_x)
            return grad_x
        self.weight.grad += self._input.T @ grad_output
        if self.has_bias:
            self.bias.grad += grad_output.sum(axis=0)
        if not self.input_grad:
            return None
        return grad_output @ self.weight.data.T


class Identity(Module):
    """Pass-through layer; useful as a no-op placeholder in ablations."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return as_float(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class Tanh(Module):
    """Hyperbolic tangent activation (the paper's choice)."""

    def __init__(self):
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if self._use_workspaces:
            out = self._workspace("out", x.shape, x.dtype)
            np.tanh(x, out=out)
            self._output = out
            return out
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        if self._use_workspaces:
            grad = self._workspace("grad", self._output.shape, self._output.dtype)
            np.multiply(self._output, self._output, out=grad)
            np.subtract(1.0, grad, out=grad)
            grad *= grad_output
            return grad
        return grad_output * (1.0 - self._output**2)


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        self._mask = x > 0
        if self._use_workspaces:
            out = self._workspace("out", x.shape, x.dtype)
            np.multiply(x, self._mask, out=out)
            return out
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        if self._use_workspaces:
            grad = self._workspace("grad", grad_output.shape, grad_output.dtype)
            np.multiply(grad_output, self._mask, out=grad)
            return grad
        return grad_output * self._mask


class Sigmoid(Module):
    """Logistic sigmoid; numerically stable split on sign."""

    def __init__(self):
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = stable_sigmoid(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Softmax(Module):
    """Row-wise softmax.

    Prefer :class:`SoftmaxCrossEntropyLoss` (which fuses log-softmax with
    NLL) for training; this layer exists for inference-time probability
    output and for composing custom heads.
    """

    def __init__(self):
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = stable_softmax(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        s = self._output
        dot = np.sum(grad_output * s, axis=1, keepdims=True)
        return s * (grad_output - dot)


class Dropout(Module):
    """Inverted dropout: active only in training mode."""

    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = ensure_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        # build the mask in the stream dtype so float32 graphs stay float32
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype)
        mask /= keep
        self._mask = mask
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


try:  # scipy ships in the reference environment; keep a pure-numpy fallback
    from scipy.special import expit as _expit
except ImportError:  # pragma: no cover - exercised only without scipy
    _expit = None


def stable_sigmoid(x: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
    """Sigmoid that avoids overflow for large |x|, preserving float32.

    Delegates to ``scipy.special.expit`` when available (a single
    branch-stable C pass, ~2.5x faster than composing numpy ufuncs);
    otherwise uses the single-exp identity ``z = exp(-|x|)``: the result
    is ``1/(1+z)`` for non-negative x and ``z/(1+z)`` otherwise — still
    far cheaper than the historical two boolean-masked partial exps
    (mask gather/scatter dominated that formulation's cost).
    """
    x = as_float(x)
    if _expit is not None:
        if out is None:
            out = np.empty_like(x)
        _expit(x, out=out)
        return out
    z = np.exp(-np.abs(x))
    t = z / (1.0 + z)  # sigmoid(-|x|)
    if out is None:
        out = np.empty_like(x)
    np.subtract(1.0, t, out=out)  # sigmoid(|x|)
    np.copyto(out, t, where=x < 0)
    return out


def seed_sigmoid(x: np.ndarray) -> np.ndarray:
    """The seed's sigmoid: numerically stable split on sign.

    Kept verbatim (boolean-masked partial exps and all) as the
    ``compat=True`` loss formulation, so the ``train-bench`` float64
    reference leg measures the seed's actual training loop.
    """
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def stable_softmax(x: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max subtraction for stability."""
    x = as_float(x)
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)
