"""A from-scratch neural-network framework on numpy.

The paper trains small feed-forward networks in PyTorch; this subpackage
provides the equivalent substrate without external DL dependencies:

* :class:`Module` / :class:`Parameter` / :class:`Sequential` containers,
* dense layers, activations, dropout, batch normalization,
* losses (MSE, binary cross-entropy with logits, softmax cross-entropy),
* optimizers (SGD with momentum, Adam) and LR schedulers,
* Xavier/Glorot and He initialization,
* a :class:`DataLoader` and a :class:`Trainer` with early stopping,
* a finite-difference gradient checker used by the test-suite.

All layers implement explicit ``forward``/``backward`` passes; gradients
are accumulated on ``Parameter.grad`` exactly as in torch's eager mode.
"""

from repro.nn.dtypes import DEFAULT_DTYPE, as_float, resolve_dtype
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import Linear, Tanh, ReLU, Sigmoid, Softmax, Dropout, Identity
from repro.nn.batchnorm import BatchNorm1d
from repro.nn.losses import (
    Loss,
    MSELoss,
    BCEWithLogitsLoss,
    SoftmaxCrossEntropyLoss,
    MultiHeadLoss,
)
from repro.nn.optim import Optimizer, SGD, Adam, RMSProp
from repro.nn.schedulers import ConstantLR, StepLR, CosineLR
from repro.nn.data import Dataset, TensorDataset, DataLoader
from repro.nn.trainer import Trainer, TrainingHistory
from repro.nn.metrics import accuracy, top_k_accuracy
from repro.nn.serialization import save_state, load_state
from repro.nn import init

__all__ = [
    "DEFAULT_DTYPE",
    "as_float",
    "resolve_dtype",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Tanh",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Dropout",
    "Identity",
    "BatchNorm1d",
    "Loss",
    "MSELoss",
    "BCEWithLogitsLoss",
    "SoftmaxCrossEntropyLoss",
    "MultiHeadLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "Dataset",
    "TensorDataset",
    "DataLoader",
    "Trainer",
    "TrainingHistory",
    "accuracy",
    "top_k_accuracy",
    "save_state",
    "load_state",
    "init",
]
