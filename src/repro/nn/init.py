"""Weight initialization schemes.

The paper uses Xavier (Glorot) initialization [20]; He initialization is
provided for the ReLU variants used in ablations.

All schemes accept a ``dtype`` argument.  Draws always happen in
float64 from the shared RNG and are then cast, so a float32 graph is
initialized with (down-cast) *exactly* the same weights as its float64
twin under the same seed — the property the float32/float64 parity
suite relies on.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtypes import resolve_dtype
from repro.utils.rng import ensure_rng


def xavier_uniform(
    shape: tuple[int, int], rng=None, gain: float = 1.0, dtype=None
) -> np.ndarray:
    """Glorot & Bengio (2010) uniform init: U(-a, a), a = gain * sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    draw = ensure_rng(rng).uniform(-bound, bound, size=shape)
    return draw.astype(resolve_dtype(dtype), copy=False)


def xavier_normal(
    shape: tuple[int, int], rng=None, gain: float = 1.0, dtype=None
) -> np.ndarray:
    """Glorot normal init: N(0, gain^2 * 2/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    draw = ensure_rng(rng).normal(0.0, std, size=shape)
    return draw.astype(resolve_dtype(dtype), copy=False)


def he_uniform(shape: tuple[int, int], rng=None, dtype=None) -> np.ndarray:
    """He et al. uniform init for ReLU fan-in scaling."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    draw = ensure_rng(rng).uniform(-bound, bound, size=shape)
    return draw.astype(resolve_dtype(dtype), copy=False)


def he_normal(shape: tuple[int, int], rng=None, dtype=None) -> np.ndarray:
    """He et al. normal init: N(0, 2/fan_in)."""
    fan_in, _ = _fans(shape)
    draw = ensure_rng(rng).normal(0.0, np.sqrt(2.0 / fan_in), size=shape)
    return draw.astype(resolve_dtype(dtype), copy=False)


def zeros(shape, dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=resolve_dtype(dtype))


def constant(shape, value: float, dtype=None) -> np.ndarray:
    return np.full(shape, float(value), dtype=resolve_dtype(dtype))


_SCHEMES = {
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
}


def get_initializer(name: str):
    """Look up an initializer by name; raises ``KeyError`` with choices."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; choices: {sorted(_SCHEMES)}"
        ) from None


def _fans(shape: tuple[int, int]) -> tuple[int, int]:
    if len(shape) != 2:
        raise ValueError(f"initializers expect 2-D weight shapes, got {shape}")
    fan_in, fan_out = int(shape[0]), int(shape[1])
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"weight dims must be positive, got {shape}")
    return fan_in, fan_out
