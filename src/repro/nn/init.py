"""Weight initialization schemes.

The paper uses Xavier (Glorot) initialization [20]; He initialization is
provided for the ReLU variants used in ablations.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def xavier_uniform(shape: tuple[int, int], rng=None, gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) uniform init: U(-a, a), a = gain * sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return ensure_rng(rng).uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, int], rng=None, gain: float = 1.0) -> np.ndarray:
    """Glorot normal init: N(0, gain^2 * 2/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return ensure_rng(rng).normal(0.0, std, size=shape)


def he_uniform(shape: tuple[int, int], rng=None) -> np.ndarray:
    """He et al. uniform init for ReLU fan-in scaling."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return ensure_rng(rng).uniform(-bound, bound, size=shape)


def he_normal(shape: tuple[int, int], rng=None) -> np.ndarray:
    """He et al. normal init: N(0, 2/fan_in)."""
    fan_in, _ = _fans(shape)
    return ensure_rng(rng).normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=float)


def constant(shape, value: float) -> np.ndarray:
    return np.full(shape, float(value))


_SCHEMES = {
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
}


def get_initializer(name: str):
    """Look up an initializer by name; raises ``KeyError`` with choices."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; choices: {sorted(_SCHEMES)}"
        ) from None


def _fans(shape: tuple[int, int]) -> tuple[int, int]:
    if len(shape) != 2:
        raise ValueError(f"initializers expect 2-D weight shapes, got {shape}")
    fan_in, fan_out = int(shape[0]), int(shape[1])
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"weight dims must be positive, got {shape}")
    return fan_in, fan_out
