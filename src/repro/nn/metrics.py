"""Classification metrics shared by the training and evaluation code."""

from __future__ import annotations

import numpy as np


def accuracy(scores: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the target.

    ``scores`` is (N, K) logits or probabilities; ``targets`` is either an
    integer vector of class ids or a one-/multi-hot matrix (argmax taken).
    """
    scores = np.asarray(scores)
    predicted = scores.argmax(axis=1)
    targets = np.asarray(targets)
    if targets.ndim == 2:
        targets = targets.argmax(axis=1)
    if len(predicted) != len(targets):
        raise ValueError(
            f"length mismatch: {len(predicted)} predictions vs {len(targets)} targets"
        )
    if len(targets) == 0:
        return float("nan")
    return float(np.mean(predicted == targets))


def top_k_accuracy(scores: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of rows whose target is among the k highest scores."""
    scores = np.asarray(scores)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, scores.shape[1])
    targets = np.asarray(targets)
    if targets.ndim == 2:
        targets = targets.argmax(axis=1)
    top_k = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    hits = (top_k == targets[:, None]).any(axis=1)
    if len(hits) == 0:
        return float("nan")
    return float(np.mean(hits))


def confusion_counts(
    predicted: np.ndarray, targets: np.ndarray, num_classes: int
) -> np.ndarray:
    """(num_classes, num_classes) matrix with rows = true, cols = predicted."""
    predicted = np.asarray(predicted, dtype=int)
    targets = np.asarray(targets, dtype=int)
    if predicted.shape != targets.shape:
        raise ValueError("predicted and targets must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    np.add.at(matrix, (targets, predicted), 1)
    return matrix
