"""Loss functions with fused gradients.

Each loss exposes ``forward(predictions, targets) -> float`` and
``backward() -> ndarray`` (gradient w.r.t. predictions, already averaged
over the batch so optimizers see per-batch means).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import stable_sigmoid, stable_softmax


class Loss:
    """Base loss interface."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class MSELoss(Loss):
    """Mean squared error over all elements; the Deep Regression loss."""

    def __init__(self):
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size


class BCEWithLogitsLoss(Loss):
    """Binary cross-entropy on logits — NObLe's multi-label objective.

    Matches the paper's J(h, ĥ) with ĥ = sigmoid(w·z): works on multi-hot
    targets of shape (N, K).  The log-sum-exp form ``max(x,0) - x*t +
    log(1+exp(-|x|))`` is numerically stable for large logits.
    """

    def __init__(self, pos_weight: "np.ndarray | float | None" = None):
        self.pos_weight = None if pos_weight is None else np.asarray(pos_weight, float)
        self._cache: tuple | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if logits.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: logits {logits.shape} vs targets {targets.shape}"
            )
        probs = stable_sigmoid(logits)
        self._cache = (probs, targets)
        per_element = (
            np.maximum(logits, 0.0)
            - logits * targets
            + np.log1p(np.exp(-np.abs(logits)))
        )
        if self.pos_weight is not None:
            weight = targets * self.pos_weight + (1.0 - targets)
            per_element = per_element * weight
        return float(np.mean(per_element))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, targets = self._cache
        grad = probs - targets
        if self.pos_weight is not None:
            weight = targets * self.pos_weight + (1.0 - targets)
            # d/dx [w*(softplus terms)] — for weighted BCE the gradient is
            # w_pos*t*(p-1) + (1-t)*p with the same stable probs
            grad = targets * self.pos_weight * (probs - 1.0) + (1.0 - targets) * probs
        return grad / probs.size


class SoftmaxCrossEntropyLoss(Loss):
    """Categorical cross-entropy on logits with integer or one-hot targets."""

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self._cache: tuple | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=float)
        n, k = logits.shape
        one_hot = self._as_one_hot(targets, n, k)
        if self.label_smoothing > 0.0:
            one_hot = (
                one_hot * (1.0 - self.label_smoothing) + self.label_smoothing / k
            )
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        self._cache = (stable_softmax(logits), one_hot)
        return float(-np.sum(one_hot * log_probs) / n)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, one_hot = self._cache
        return (probs - one_hot) / probs.shape[0]

    @staticmethod
    def _as_one_hot(targets: np.ndarray, n: int, k: int) -> np.ndarray:
        targets = np.asarray(targets)
        if targets.ndim == 1:
            if targets.shape[0] != n:
                raise ValueError(
                    f"targets length {targets.shape[0]} does not match batch {n}"
                )
            if targets.min() < 0 or targets.max() >= k:
                raise ValueError("integer targets out of range for logits width")
            one_hot = np.zeros((n, k), dtype=float)
            one_hot[np.arange(n), targets.astype(int)] = 1.0
            return one_hot
        if targets.shape != (n, k):
            raise ValueError(
                f"one-hot targets must have shape ({n}, {k}), got {targets.shape}"
            )
        return np.asarray(targets, dtype=float)


class MultiHeadLoss(Loss):
    """Weighted sum of per-head losses over a concatenated logit vector.

    NObLe predicts several label groups at once — building, floor, fine
    cell, coarse cell — from one output layer.  ``heads`` maps a head name
    to ``(slice, loss, weight)``; forward slices the logits/targets per
    head and sums ``weight * loss``.  backward re-assembles the full
    gradient in logit order.
    """

    def __init__(self, heads: "dict[str, tuple[slice, Loss, float]]"):
        if not heads:
            raise ValueError("MultiHeadLoss needs at least one head")
        self.heads = dict(heads)
        self._cache: tuple | None = None
        self.last_per_head: dict[str, float] = {}

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=float)
        targets = np.asarray(targets, dtype=float)
        total = 0.0
        self.last_per_head = {}
        for name, (sl, loss, weight) in self.heads.items():
            value = loss.forward(logits[:, sl], targets[:, sl])
            self.last_per_head[name] = value
            total += weight * value
        self._cache = (logits.shape,)
        return float(total)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        (shape,) = self._cache
        grad = np.zeros(shape, dtype=float)
        for _name, (sl, loss, weight) in self.heads.items():
            grad[:, sl] += weight * loss.backward()
        return grad
