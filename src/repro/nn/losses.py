"""Loss functions with fused gradients.

Each loss exposes ``forward(predictions, targets) -> float`` and
``backward() -> ndarray`` (gradient w.r.t. predictions, already averaged
over the batch so optimizers see per-batch means).

Losses are dtype-disciplined: the prediction/logit dtype governs — a
float32 graph gets float32 gradients back (targets and ``pos_weight``
are cast to match).  Scalar loss values use fused reductions (BLAS dot,
float64-accumulated means) so reported loss curves stay cheap and
precise.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtypes import as_float
from repro.nn.layers import seed_sigmoid, stable_sigmoid, stable_softmax


class Loss:
    """Base loss interface."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def use_buffers(self, enabled: bool = True) -> "Loss":
        """Toggle scratch-buffer reuse (no-op for losses without one).

        Enabled by the :class:`repro.nn.Trainer` for the duration of
        ``fit``; with buffers on, returned gradients are overwritten by
        the next forward/backward, so callers must consume them
        immediately (the training loop does).
        """
        return self

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class MSELoss(Loss):
    """Mean squared error over all elements; the Deep Regression loss.

    ``compat=True`` keeps the seed's ``mean(diff**2)`` formulation (and
    its temporary) for the ``train-bench`` reference leg.
    """

    def __init__(self, compat: bool = False):
        self.compat = bool(compat)
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if self.compat:
            predictions = np.asarray(predictions, dtype=float)
            targets = np.asarray(targets, dtype=float)
        else:
            predictions = as_float(predictions)
            targets = as_float(targets, predictions.dtype)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        self._diff = predictions - targets
        if self.compat:
            return float(np.mean(self._diff**2))
        # single fused pass: dot(d, d) avoids the d**2 temporary; for
        # float32 graphs einsum forces float64 accumulation so the
        # reported loss (which drives early stopping) keeps precision
        flat = self._diff.ravel()
        if flat.dtype == np.float64:
            return float(np.dot(flat, flat) / flat.size)
        return float(np.einsum("i,i->", flat, flat, dtype=np.float64) / flat.size)

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        if self.compat:
            return 2.0 * self._diff / self._diff.size
        return (2.0 / self._diff.size) * self._diff


class BCEWithLogitsLoss(Loss):
    """Binary cross-entropy on logits — NObLe's multi-label objective.

    Matches the paper's J(h, ĥ) with ĥ = sigmoid(w·z): works on multi-hot
    targets of shape (N, K).  The log-sum-exp form ``max(x,0) - x*t +
    log(1+exp(-|x|))`` is numerically stable for large logits.  The fast
    formulation computes probabilities with :func:`stable_sigmoid`
    (expit) and the softplus term in a handful of full-array passes;
    ``compat=True`` keeps the seed's boolean-masked formulation verbatim
    for the ``train-bench`` reference leg and numerical archaeology.
    """

    def __init__(
        self, pos_weight: "np.ndarray | float | None" = None, compat: bool = False
    ):
        self.pos_weight = None if pos_weight is None else np.asarray(pos_weight, float)
        self.compat = bool(compat)
        self._cache: tuple | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if self.compat:
            return self._forward_compat(logits, targets)
        logits = as_float(logits)
        targets = as_float(targets, logits.dtype)
        if logits.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: logits {logits.shape} vs targets {targets.shape}"
            )
        probs = stable_sigmoid(logits)
        self._cache = (probs, targets)
        z = np.abs(logits)
        np.negative(z, out=z)
        np.exp(z, out=z)
        per_element = np.log1p(z, out=z)  # softplus(-|x|)
        per_element += np.maximum(logits, 0.0)
        per_element -= logits * targets
        if self.pos_weight is not None:
            pos_weight = as_float(self.pos_weight, logits.dtype)
            per_element *= targets * pos_weight + (1.0 - targets)
        return float(np.mean(per_element, dtype=np.float64))

    def _forward_compat(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """The seed's forward, allocation for allocation."""
        logits = np.asarray(logits, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if logits.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: logits {logits.shape} vs targets {targets.shape}"
            )
        probs = seed_sigmoid(logits)
        self._cache = (probs, targets)
        per_element = (
            np.maximum(logits, 0.0)
            - logits * targets
            + np.log1p(np.exp(-np.abs(logits)))
        )
        if self.pos_weight is not None:
            weight = targets * self.pos_weight + (1.0 - targets)
            per_element = per_element * weight
        return float(np.mean(per_element))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, targets = self._cache
        if self.compat:
            grad = probs - targets
            if self.pos_weight is not None:
                grad = targets * self.pos_weight * (probs - 1.0) + (
                    1.0 - targets
                ) * probs
            return grad / probs.size
        grad = probs - targets
        if self.pos_weight is not None:
            pos_weight = as_float(self.pos_weight, probs.dtype)
            # d/dx [w*(softplus terms)] — for weighted BCE the gradient is
            # w_pos*t*(p-1) + (1-t)*p with the same stable probs
            grad = targets * pos_weight * (probs - 1.0) + (1.0 - targets) * probs
        grad *= 1.0 / probs.size
        return grad


class SoftmaxCrossEntropyLoss(Loss):
    """Categorical cross-entropy on logits with integer or one-hot targets."""

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self._cache: tuple | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = as_float(logits)
        n, k = logits.shape
        one_hot = self._as_one_hot(targets, n, k, logits.dtype)
        if self.label_smoothing > 0.0:
            one_hot = (
                one_hot * (1.0 - self.label_smoothing) + self.label_smoothing / k
            )
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        self._cache = (stable_softmax(logits), one_hot)
        return float(-np.sum(one_hot * log_probs, dtype=np.float64) / n)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, one_hot = self._cache
        return (probs - one_hot) / probs.shape[0]

    @staticmethod
    def _as_one_hot(targets: np.ndarray, n: int, k: int, dtype) -> np.ndarray:
        targets = np.asarray(targets)
        if targets.ndim == 1:
            if targets.shape[0] != n:
                raise ValueError(
                    f"targets length {targets.shape[0]} does not match batch {n}"
                )
            if targets.min() < 0 or targets.max() >= k:
                raise ValueError("integer targets out of range for logits width")
            one_hot = np.zeros((n, k), dtype=dtype)
            one_hot[np.arange(n), targets.astype(int)] = 1.0
            return one_hot
        if targets.shape != (n, k):
            raise ValueError(
                f"one-hot targets must have shape ({n}, {k}), got {targets.shape}"
            )
        return as_float(targets, dtype)


class MultiHeadLoss(Loss):
    """Weighted sum of per-head losses over a concatenated logit vector.

    NObLe predicts several label groups at once — building, floor, fine
    cell, coarse cell — from one output layer.  ``heads`` maps a head name
    to ``(slice, loss, weight)``; forward slices the logits/targets per
    head and sums ``weight * loss``.  backward re-assembles the full
    gradient in logit order.
    """

    def __init__(self, heads: "dict[str, tuple[slice, Loss, float]]"):
        if not heads:
            raise ValueError("MultiHeadLoss needs at least one head")
        self.heads = dict(heads)
        self._cache: tuple | None = None
        self.last_per_head: dict[str, float] = {}
        # NObLe's configuration — every head a plain BCE — admits a fused
        # path: one sigmoid/log1p sweep over the whole logit block, with
        # per-head means and gradient scales applied on slices.  The
        # per-element values are computed by the same formulas, so the
        # result is identical to the per-head path.
        self._all_bce = all(
            type(loss) is BCEWithLogitsLoss
            and loss.pos_weight is None
            and not loss.compat
            for _sl, loss, _w in self.heads.values()
        )
        self._tiling_ok: dict[int, bool] = {}
        self._reuse_buffers = False
        self._buffers: dict[str, np.ndarray] = {}
        self._scale_rows: dict[tuple, np.ndarray] = {}

    def use_buffers(self, enabled: bool = True) -> "MultiHeadLoss":
        self._reuse_buffers = bool(enabled)
        if not enabled:
            self._buffers.clear()
        return self

    def _buffer(self, key: str, shape: tuple, dtype) -> np.ndarray:
        """Uninitialized scratch, persistent across steps when enabled."""
        if not self._reuse_buffers:
            return np.empty(shape, dtype=dtype)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape != tuple(shape) or buffer.dtype != dtype:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def _scale_row(self, n: int, width: int, dtype) -> np.ndarray:
        """Per-column gradient scale: head weight / head size, cached."""
        key = (n, width, np.dtype(dtype).str)
        row = self._scale_rows.get(key)
        if row is None:
            row = np.empty(width, dtype=dtype)
            for _name, (sl, _loss, weight) in self.heads.items():
                head_width = len(range(*sl.indices(width)))
                row[sl] = weight / (n * head_width)
            self._scale_rows[key] = row
        return row

    def _slices_tile(self, width: int) -> bool:
        """True when the head slices exactly partition [0, width).

        The fused gradient scales slice regions in place, which is only
        equivalent to the per-head sum when no column is shared or
        skipped; unusual head layouts fall back to the per-head path.
        """
        cached = self._tiling_ok.get(width)
        if cached is None:
            spans = []
            stepped = False
            for sl, _loss, _w in self.heads.values():
                start, stop, step = sl.indices(width)
                if step != 1:
                    # a stepped slice skips columns inside its span; the
                    # fused path would leave them uninitialized
                    stepped = True
                    break
                spans.append((start, stop))
            cursor = 0
            if not stepped:
                for start, stop in sorted(spans):
                    if start != cursor or stop < start:
                        break
                    cursor = stop
            cached = not stepped and cursor == width
            self._tiling_ok[width] = cached
        return cached

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = as_float(logits)
        targets = as_float(targets, logits.dtype)
        total = 0.0
        self.last_per_head = {}
        if self._all_bce and self._slices_tile(logits.shape[1]):
            if logits.shape != targets.shape:
                raise ValueError(
                    f"shape mismatch: logits {logits.shape} vs targets {targets.shape}"
                )
            n, width = logits.shape
            probs = self._buffer("probs", logits.shape, logits.dtype)
            stable_sigmoid(logits, out=probs)
            z = self._buffer("z", logits.shape, logits.dtype)
            np.abs(logits, out=z)
            np.negative(z, out=z)
            np.exp(z, out=z)  # z = exp(-|x|)
            per_element = np.log1p(z, out=z)  # softplus(-|x|)
            scratch = self._buffer("grad", logits.shape, logits.dtype)
            np.maximum(logits, 0.0, out=scratch)
            per_element += scratch
            np.multiply(logits, targets, out=scratch)
            per_element -= scratch
            # one float64 column-sum pass; per-head means are slice sums
            column_sums = np.add.reduce(per_element, axis=0, dtype=np.float64)
            for name, (sl, _loss, weight) in self.heads.items():
                head_width = len(range(*sl.indices(width)))
                value = float(column_sums[sl].sum() / (n * head_width))
                self.last_per_head[name] = value
                total += weight * value
            self._cache = (logits.shape, logits.dtype, probs, targets)
            return float(total)
        for name, (sl, loss, weight) in self.heads.items():
            value = loss.forward(logits[:, sl], targets[:, sl])
            self.last_per_head[name] = value
            total += weight * value
        self._cache = (logits.shape, logits.dtype, None, None)
        return float(total)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        shape, dtype, probs, targets = self._cache
        if probs is not None:
            # fused path: grad = (probs - targets) scaled per head by
            # weight / head_size — exactly each BCE's averaged gradient
            grad = self._buffer("grad", shape, dtype)
            np.subtract(probs, targets, out=grad)
            grad *= self._scale_row(shape[0], shape[1], dtype)
            return grad
        grad = np.zeros(shape, dtype=dtype)
        for _name, (sl, loss, weight) in self.heads.items():
            grad[:, sl] += weight * loss.backward()
        return grad
