"""Greedy stacked-autoencoder pretraining (WiDeep/DeepFi/CNNLoc style).

§II: "ML is also used for denoising in order to extract core features
for wireless signals" — WiDeep uses one AE per WAP, CNNLoc a stacked AE
front-end.  This module provides the standard greedy procedure: train
one tanh autoencoder layer to reconstruct its input, freeze the encoder
half, encode the data, repeat for the next layer.
"""

from __future__ import annotations

import numpy as np

from repro.nn.data import DataLoader, TensorDataset
from repro.nn.dtypes import resolve_dtype
from repro.nn.layers import Linear, Tanh
from repro.nn.losses import MSELoss
from repro.nn.module import Sequential
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_2d


def pretrain_stacked_autoencoder(
    data: np.ndarray,
    layer_sizes: list[int],
    epochs: int = 30,
    batch_size: int = 64,
    lr: float = 1e-3,
    noise_std: float = 0.0,
    rng=None,
    dtype=None,
    fused: bool = True,
) -> list[Linear]:
    """Greedy layer-wise AE pretraining.

    Parameters
    ----------
    data:
        (N, D) training inputs.
    layer_sizes:
        Encoder widths, e.g. ``[256, 128, 64]``.
    noise_std:
        Gaussian input corruption for denoising AEs (0 = plain AE).
    dtype:
        Compute precision of the autoencoder layers (``"float32"`` for
        the fast path; ``None`` keeps the float64 default).
    fused:
        Use the allocation-free trainer/optimizer fast path; False
        reproduces the historical allocating loops.

    Returns
    -------
    The trained encoder :class:`Linear` layers, in order; stack them
    (with tanh activations) as the front of a downstream model.
    """
    data = check_2d(data, "data")
    if not layer_sizes:
        raise ValueError("layer_sizes must not be empty")
    if noise_std < 0:
        raise ValueError(f"noise_std must be >= 0, got {noise_std}")
    rng = ensure_rng(rng)
    dtype = resolve_dtype(dtype)
    encoders: list[Linear] = []
    current = np.asarray(data).astype(dtype, copy=False)
    for index, size in enumerate(layer_sizes):
        if size <= 0:
            raise ValueError(f"layer sizes must be positive, got {size}")
        # every encoder fronts its own autoencoder during greedy
        # pretraining, so its input gradient is never consumed here —
        # skip that matmul; re-enabled below for encoders that will sit
        # mid-stack in the composed downstream model
        encoder = Linear(
            current.shape[1], size, rng=rng, dtype=dtype, input_grad=False
        )
        decoder = Linear(size, current.shape[1], rng=rng, dtype=dtype)
        auto = Sequential(encoder, Tanh(), decoder)
        inputs = current
        if noise_std > 0:
            noise = rng.normal(0.0, noise_std, size=current.shape)
            inputs = current + noise.astype(dtype, copy=False)
        loader = DataLoader(
            TensorDataset(inputs, current),
            batch_size=batch_size,
            rng=rng,
            fast_collate=fused,
        )
        Trainer(auto, MSELoss(compat=not fused),
                Adam(auto.parameters(), lr=lr, fused=fused),
                fused=fused).fit(loader, epochs=epochs)
        # per the return contract encoders[0] stays the front of the
        # composed model (input gradient still unused); later encoders
        # sit mid-stack there and must propagate gradients again
        encoder.input_grad = index != 0
        encoders.append(encoder)
        current = np.tanh(current @ encoder.weight.data + encoder.bias.data)
    return encoders


def reconstruction_error(
    encoders: list[Linear], data: np.ndarray, rng=None
) -> float:
    """Mean squared error of encoding-then-decoding with tied weights.

    A cheap goodness measure: decode each layer with the transpose of
    its encoder (tied-weight approximation) and compare to the input.
    """
    data = check_2d(data, "data")
    encoded = data
    for encoder in encoders:
        encoded = np.tanh(encoded @ encoder.weight.data + encoder.bias.data)
    decoded = encoded
    for encoder in reversed(encoders):
        decoded = (decoded - 0.0) @ encoder.weight.data.T
    return float(np.mean((decoded - data) ** 2))
