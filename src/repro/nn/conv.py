"""1-D convolution layers for the CNNLoc comparator.

Tensors are (N, C, L).  :class:`Unflatten` lifts the framework's 2-D
(N, D) activations into (N, channels, D/channels); :class:`Flatten`
drops back to 2-D, so convolutional stacks compose with Linear layers
inside a :class:`repro.nn.Sequential`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn import init as init_schemes
from repro.utils.rng import ensure_rng


class Conv1d(Module):
    """Valid (no padding) 1-D convolution with stride 1.

    Implemented with an im2col lowering so forward/backward are single
    matmuls.  Output length is ``L - kernel_size + 1``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError(
                "in_channels, out_channels and kernel_size must be positive"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        fan_in = in_channels * kernel_size
        flat = init_schemes.xavier_uniform(
            (fan_in, out_channels), rng=ensure_rng(rng)
        )
        self.weight = Parameter(
            flat.T.reshape(out_channels, in_channels, kernel_size), name="weight"
        )
        self.has_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_channels), name="bias")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv1d expected (N, {self.in_channels}, L), got {x.shape}"
            )
        n, _c, length = x.shape
        l_out = length - self.kernel_size + 1
        if l_out <= 0:
            raise ValueError(
                f"input length {length} shorter than kernel {self.kernel_size}"
            )
        columns = self._im2col(x, l_out)  # (N, L_out, C_in*K)
        w = self.weight.data.reshape(self.out_channels, -1)  # (C_out, C_in*K)
        out = columns @ w.T  # (N, L_out, C_out)
        if self.has_bias:
            out = out + self.bias.data
        self._cache = (x.shape, columns)
        return np.transpose(out, (0, 2, 1))  # (N, C_out, L_out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, columns = self._cache
        grad_out = np.transpose(grad_output, (0, 2, 1))  # (N, L_out, C_out)
        n, l_out, _ = grad_out.shape
        # weight gradient: sum over batch and positions
        grad_w = np.einsum("nlk,nlo->ok", columns, grad_out)
        self.weight.grad += grad_w.reshape(self.weight.data.shape)
        if self.has_bias:
            self.bias.grad += grad_out.sum(axis=(0, 1))
        # input gradient: scatter the column gradients back
        w = self.weight.data.reshape(self.out_channels, -1)
        grad_columns = grad_out @ w  # (N, L_out, C_in*K)
        grad_x = np.zeros(x_shape)
        k = self.kernel_size
        grad_columns = grad_columns.reshape(n, l_out, self.in_channels, k)
        for offset in range(k):
            grad_x[:, :, offset : offset + l_out] += np.transpose(
                grad_columns[:, :, :, offset], (0, 2, 1)
            )
        return grad_x

    def output_length(self, input_length: int) -> int:
        return input_length - self.kernel_size + 1

    def _im2col(self, x: np.ndarray, l_out: int) -> np.ndarray:
        n, c, _length = x.shape
        k = self.kernel_size
        columns = np.empty((n, l_out, c, k))
        for offset in range(k):
            columns[:, :, :, offset] = np.transpose(
                x[:, :, offset : offset + l_out], (0, 2, 1)
            )
        return columns.reshape(n, l_out, c * k)


class MaxPool1d(Module):
    """Non-overlapping max pooling; trailing remainder is dropped."""

    def __init__(self, kernel_size: int):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = int(kernel_size)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 3:
            raise ValueError(f"MaxPool1d expected (N, C, L), got {x.shape}")
        n, c, length = x.shape
        k = self.kernel_size
        l_out = length // k
        if l_out == 0:
            raise ValueError(f"input length {length} shorter than pool {k}")
        trimmed = x[:, :, : l_out * k].reshape(n, c, l_out, k)
        argmax = trimmed.argmax(axis=3)
        out = np.take_along_axis(trimmed, argmax[..., None], axis=3)[..., 0]
        self._cache = (x.shape, argmax)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, argmax = self._cache
        n, c, length = x_shape
        k = self.kernel_size
        l_out = argmax.shape[2]
        grad_x = np.zeros(x_shape)
        window = grad_x[:, :, : l_out * k].reshape(n, c, l_out, k)
        np.put_along_axis(window, argmax[..., None], grad_output[..., None], axis=3)
        return grad_x

    def output_length(self, input_length: int) -> int:
        return input_length // self.kernel_size


class Flatten(Module):
    """(N, C, L) → (N, C·L)."""

    def __init__(self):
        super().__init__()
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 3:
            raise ValueError(f"Flatten expected (N, C, L), got {x.shape}")
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._shape)


class Unflatten(Module):
    """(N, C·L) → (N, C, L) with a fixed channel count."""

    def __init__(self, channels: int = 1):
        super().__init__()
        if channels <= 0:
            raise ValueError(f"channels must be positive, got {channels}")
        self.channels = int(channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] % self.channels != 0:
            raise ValueError(
                f"Unflatten({self.channels}) cannot reshape input {x.shape}"
            )
        return x.reshape(x.shape[0], self.channels, -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(grad_output.shape[0], -1)
