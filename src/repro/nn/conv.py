"""1-D convolution layers for the CNNLoc comparator.

Tensors are (N, C, L).  :class:`Unflatten` lifts the framework's 2-D
(N, D) activations into (N, channels, D/channels); :class:`Flatten`
drops back to 2-D, so convolutional stacks compose with Linear layers
inside a :class:`repro.nn.Sequential`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtypes import as_float, resolve_dtype
from repro.nn.module import Module, Parameter
from repro.nn import init as init_schemes
from repro.utils.rng import ensure_rng


def _im2col(x: np.ndarray, kernel_size: int, l_out: int) -> np.ndarray:
    """Lower (N, C, L) into (N, L_out, C*K) patch columns, loop-free.

    A zero-copy ``as_strided`` view exposes every length-K window of the
    last axis; the single ``ascontiguousarray`` gather replaces the
    historical per-offset Python loop (K slice-copies plus transposes).
    """
    n, c, _length = x.shape
    sn, sc, sl = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, l_out, c, kernel_size),
        strides=(sn, sl, sc, sl),
        writeable=False,
    )
    return np.ascontiguousarray(windows).reshape(n, l_out, c * kernel_size)


class Conv1d(Module):
    """Valid (no padding) 1-D convolution with stride 1.

    Implemented with a stride-tricks im2col lowering so forward and both
    backward gradients are single BLAS matmuls — no per-offset Python
    loops.  Output length is ``L - kernel_size + 1``.  ``dtype`` selects
    the compute precision (float64 default).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        bias: bool = True,
        rng=None,
        dtype=None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError(
                "in_channels, out_channels and kernel_size must be positive"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.dtype = resolve_dtype(dtype)
        fan_in = in_channels * kernel_size
        flat = init_schemes.xavier_uniform(
            (fan_in, out_channels), rng=ensure_rng(rng), dtype=self.dtype
        )
        self.weight = Parameter(
            flat.T.reshape(out_channels, in_channels, kernel_size), name="weight"
        )
        self.has_bias = bias
        if bias:
            self.bias = Parameter(
                init_schemes.zeros(out_channels, dtype=self.dtype), name="bias"
            )
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x, self.dtype)
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv1d expected (N, {self.in_channels}, L), got {x.shape}"
            )
        n, _c, length = x.shape
        l_out = length - self.kernel_size + 1
        if l_out <= 0:
            raise ValueError(
                f"input length {length} shorter than kernel {self.kernel_size}"
            )
        columns = _im2col(x, self.kernel_size, l_out)  # (N, L_out, C_in*K)
        w = self.weight.data.reshape(self.out_channels, -1)  # (C_out, C_in*K)
        out = columns @ w.T  # (N, L_out, C_out)
        if self.has_bias:
            out = out + self.bias.data
        self._cache = (x.shape, columns)
        return np.transpose(out, (0, 2, 1))  # (N, C_out, L_out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, columns = self._cache
        grad_output = as_float(grad_output, self.dtype)
        grad_out = np.ascontiguousarray(
            np.transpose(grad_output, (0, 2, 1))
        )  # (N, L_out, C_out)
        n, l_out, _ = grad_out.shape
        k = self.kernel_size
        ck = self.in_channels * k
        # weight gradient: one (C_in*K, N*L_out) @ (N*L_out, C_out) matmul
        grad_w = columns.reshape(-1, ck).T @ grad_out.reshape(-1, self.out_channels)
        self.weight.grad += grad_w.T.reshape(self.weight.data.shape)
        if self.has_bias:
            self.bias.grad += grad_out.sum(axis=(0, 1))
        # input gradient: a valid correlation of the zero-padded output
        # gradient with the flipped kernels — the same im2col + matmul
        # shape as forward, instead of a per-offset scatter loop.
        length = x_shape[2]
        padded = np.zeros(
            (n, self.out_channels, l_out + 2 * (k - 1)), dtype=self.dtype
        )
        padded[:, :, k - 1 : k - 1 + l_out] = grad_output
        grad_cols = _im2col(padded, k, length)  # (N, L, C_out*K)
        # W2[c_in, c_out*K] = weight[c_out, c_in, ::-1]
        w_flipped = self.weight.data[:, :, ::-1].transpose(1, 0, 2).reshape(
            self.in_channels, -1
        )
        grad_x = grad_cols @ w_flipped.T  # (N, L, C_in)
        return np.ascontiguousarray(np.transpose(grad_x, (0, 2, 1)))

    def output_length(self, input_length: int) -> int:
        return input_length - self.kernel_size + 1


class MaxPool1d(Module):
    """Non-overlapping max pooling; trailing remainder is dropped."""

    def __init__(self, kernel_size: int):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = int(kernel_size)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if x.ndim != 3:
            raise ValueError(f"MaxPool1d expected (N, C, L), got {x.shape}")
        n, c, length = x.shape
        k = self.kernel_size
        l_out = length // k
        if l_out == 0:
            raise ValueError(f"input length {length} shorter than pool {k}")
        trimmed = x[:, :, : l_out * k].reshape(n, c, l_out, k)
        argmax = trimmed.argmax(axis=3)
        out = np.take_along_axis(trimmed, argmax[..., None], axis=3)[..., 0]
        self._cache = (x.shape, x.dtype, argmax)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, x_dtype, argmax = self._cache
        n, c, length = x_shape
        k = self.kernel_size
        l_out = argmax.shape[2]
        grad_x = np.zeros(x_shape, dtype=x_dtype)
        window = grad_x[:, :, : l_out * k].reshape(n, c, l_out, k)
        np.put_along_axis(window, argmax[..., None], grad_output[..., None], axis=3)
        return grad_x

    def output_length(self, input_length: int) -> int:
        return input_length // self.kernel_size


class Flatten(Module):
    """(N, C, L) → (N, C·L)."""

    def __init__(self):
        super().__init__()
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if x.ndim != 3:
            raise ValueError(f"Flatten expected (N, C, L), got {x.shape}")
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._shape)


class Unflatten(Module):
    """(N, C·L) → (N, C, L) with a fixed channel count."""

    def __init__(self, channels: int = 1):
        super().__init__()
        if channels <= 0:
            raise ValueError(f"channels must be positive, got {channels}")
        self.channels = int(channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if x.ndim != 2 or x.shape[1] % self.channels != 0:
            raise ValueError(
                f"Unflatten({self.channels}) cannot reshape input {x.shape}"
            )
        return x.reshape(x.shape[0], self.channels, -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(grad_output.shape[0], -1)
