"""Finite-difference gradient checking for layers and losses.

Used heavily by the test-suite: every layer's analytic backward pass is
verified against a central-difference approximation of the loss
gradient.  Exposed as library code so downstream users can check custom
layers the same way.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import Loss
from repro.nn.module import Module


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = array[index]
        array[index] = original + eps
        plus = func()
        array[index] = original - eps
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_layer_gradients(
    layer: Module,
    x: np.ndarray,
    loss: "Loss | None" = None,
    targets: "np.ndarray | None" = None,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> dict:
    """Compare analytic and numerical gradients of ``layer`` at input ``x``.

    When ``loss`` is None the scalar objective is ``sum(layer(x) * R)``
    for a fixed random-ish projection R (deterministic from shapes), so
    the output gradient is exactly R.  Returns a dict with max absolute
    errors for the input and each parameter; raises ``AssertionError`` on
    mismatch beyond tolerances.
    """
    x = np.asarray(x, dtype=float).copy()

    def objective() -> float:
        out = layer.forward(x)
        if loss is None:
            projection = _projection_like(out)
            return float(np.sum(out * projection))
        return loss.forward(out, targets)

    # analytic pass
    layer.zero_grad()
    out = layer.forward(x)
    if loss is None:
        grad_out = _projection_like(out)
    else:
        loss.forward(out, targets)
        grad_out = loss.backward()
    grad_in = layer.backward(grad_out)

    errors = {}
    num_grad_in = numerical_gradient(objective, x, eps=eps)
    errors["input"] = float(np.max(np.abs(grad_in - num_grad_in)))
    _assert_close(grad_in, num_grad_in, "input", atol, rtol)

    for name, param in layer.named_parameters():
        num_grad = numerical_gradient(objective, param.data, eps=eps)
        errors[name] = float(np.max(np.abs(param.grad - num_grad)))
        _assert_close(param.grad, num_grad, name, atol, rtol)
    return errors


def check_loss_gradient(
    loss: Loss,
    predictions: np.ndarray,
    targets: np.ndarray,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> float:
    """Verify ``loss.backward()`` against finite differences; returns max error."""
    predictions = np.asarray(predictions, dtype=float).copy()
    loss.forward(predictions, targets)
    analytic = loss.backward()
    numerical = numerical_gradient(
        lambda: loss.forward(predictions, targets), predictions, eps=eps
    )
    _assert_close(analytic, numerical, "loss input", atol, rtol)
    return float(np.max(np.abs(analytic - numerical)))


def _projection_like(out: np.ndarray) -> np.ndarray:
    """A fixed, non-degenerate projection tensor shaped like ``out``."""
    flat = np.arange(1, out.size + 1, dtype=float)
    return (np.sin(flat) + 0.5).reshape(out.shape)


def _assert_close(a: np.ndarray, b: np.ndarray, what: str, atol: float, rtol: float):
    if not np.allclose(a, b, atol=atol, rtol=rtol):
        worst = float(np.max(np.abs(a - b)))
        raise AssertionError(
            f"gradient mismatch for {what}: max abs error {worst:.3e} "
            f"(atol={atol}, rtol={rtol})"
        )
