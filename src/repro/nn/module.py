"""Module and Parameter containers for the numpy NN framework."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn.dtypes import as_float, resolve_dtype


class Parameter:
    """A trainable tensor: a value array plus an accumulated gradient.

    Layers register their parameters as attributes; optimizers update
    ``data`` in place using ``grad``, which is zeroed between steps by
    :meth:`Optimizer.zero_grad`.  Float32/float64 input arrays keep
    their dtype; anything else is converted to float64.
    """

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = as_float(data)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def shape(self) -> tuple:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses implement ``forward(x)`` and ``backward(grad_output)``.
    ``backward`` must accumulate parameter gradients (``p.grad += ...``)
    and return the gradient with respect to the layer input so containers
    can chain layers.  Train/eval mode is toggled with :meth:`train` /
    :meth:`eval`; only layers with distinct behaviours (dropout,
    batchnorm) consult ``self.training``.
    """

    def __init__(self):
        self.training = True
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        #: When True, layers may serve forward/backward results from
        #: per-module scratch buffers that are overwritten on the next
        #: call (see :meth:`use_workspaces`).
        self._use_workspaces = False
        #: When True (set together with workspaces by the Trainer),
        #: layers may write parameter gradients with ``out=`` instead of
        #: accumulating ``+=`` — valid only under the training-loop
        #: contract of one backward per zero_grad with each layer
        #: appearing once in the graph.
        self._overwrite_grads = False
        self._workspaces: "dict[str, np.ndarray]" = {}

    # -- attribute registration -------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        # hot path: layers re-assign cached activations (ndarrays/tuples)
        # every forward — skip the registration isinstance checks for them
        if not isinstance(value, (np.ndarray, tuple)):
            if isinstance(value, Parameter):
                self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
            elif isinstance(value, Module):
                self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- interface to implement -------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- traversal ---------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children."""
        yield from self._parameters.values()
        for child in self._modules.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.data.size for p in self.parameters())

    # -- dtype and workspace control ----------------------------------------------
    def astype(self, dtype) -> "Module":
        """Cast all parameters, gradients, and buffers to ``dtype`` in place.

        Cast *before* constructing an optimizer — optimizer state is
        allocated from the parameter arrays it is given.
        """
        dtype = resolve_dtype(dtype)
        for param in self.parameters():
            param.data = param.data.astype(dtype, copy=False)
            param.grad = param.grad.astype(dtype, copy=False)
        for _name, (holder, attr) in self.named_buffers_refs():
            setattr(holder, attr, getattr(holder, attr).astype(dtype, copy=False))
        for module in self.modules():
            # layers cast their inputs to self.dtype — update it too, or
            # the recast graph would keep computing in the old precision
            if isinstance(getattr(module, "dtype", None), np.dtype):
                module.dtype = dtype
            module._workspaces.clear()
        return self

    def use_workspaces(
        self, enabled: bool = True, overwrite_grads: "bool | None" = None
    ) -> "Module":
        """Toggle scratch-buffer reuse on this module and its children.

        With workspaces enabled, layers write forward outputs and
        backward input-gradients into per-module buffers that are
        **overwritten by the next call**, eliminating per-step
        allocations in the training hot loop.  Callers must therefore
        not retain references to layer outputs across calls — the
        :class:`repro.nn.Trainer` enables this only for the duration of
        ``fit`` so inference keeps the allocate-fresh semantics.

        ``overwrite_grads`` (defaults to ``enabled``) additionally lets
        layers write parameter gradients with ``out=`` instead of
        ``+=``; only valid when every backward is preceded by a
        ``zero_grad`` and no layer appears twice in the graph — both
        guaranteed inside :meth:`Trainer.fit`, which is the only caller.
        """
        if overwrite_grads is None:
            overwrite_grads = enabled
        for module in self.modules():
            module._use_workspaces = enabled
            module._overwrite_grads = enabled and overwrite_grads
            if not enabled:
                module._workspaces.clear()
        return self

    def _workspace(self, key: str, shape: tuple, dtype) -> np.ndarray:
        """A reusable uninitialized scratch array for this module.

        The buffer persists across calls while shape and dtype match;
        contents are garbage on return — callers must fully overwrite it.
        """
        buffer = self._workspaces.get(key)
        if buffer is None or buffer.shape != tuple(shape) or buffer.dtype != dtype:
            buffer = np.empty(shape, dtype=dtype)
            self._workspaces[key] = buffer
        return buffer

    # -- state dict ---------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Flat name → array mapping of parameter values and buffers."""
        state = OrderedDict(
            (name, param.data.copy()) for name, param in self.named_parameters()
        )
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: "dict[str, np.ndarray]") -> None:
        """Copy values from ``state`` into matching parameters/buffers."""
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers_refs())
        for name, value in state.items():
            value = as_float(value)
            if name in params:
                if params[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{params[name].data.shape} vs {value.shape}"
                    )
                params[name].data[...] = value
            elif name in buffers:
                holder, attr = buffers[name]
                getattr(holder, attr)[...] = value
            else:
                raise KeyError(f"unexpected key in state dict: {name!r}")

    # -- buffers (non-trainable running state, e.g. batchnorm stats) ---------------
    _buffer_names: tuple = ()

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for attr in self._buffer_names:
            yield (f"{prefix}{attr}", getattr(self, attr))
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def named_buffers_refs(self, prefix: str = "") -> Iterator[tuple[str, tuple]]:
        for attr in self._buffer_names:
            yield (f"{prefix}{attr}", (self, attr))
        for child_name, child in self._modules.items():
            yield from child.named_buffers_refs(prefix=f"{prefix}{child_name}.")


class Sequential(Module):
    """Chain layers so that each forward feeds the next.

    ``backward`` replays the chain in reverse.  Layers are exposed as
    ``seq[i]`` and iterated in order.
    """

    def __init__(self, *layers: Module):
        super().__init__()
        self._layers = list(layers)
        for index, layer in enumerate(self._layers):
            setattr(self, f"layer{index}", layer)

    def append(self, layer: Module) -> "Sequential":
        index = len(self._layers)
        self._layers.append(layer)
        setattr(self, f"layer{index}", layer)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self._layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self._layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self):
        return iter(self._layers)
