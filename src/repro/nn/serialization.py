"""Persist model parameters to .npz archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def state_arrays(model: Module, prefix: str = "") -> "dict[str, np.ndarray]":
    """The model's state dict as ``{prefix}{name}`` → array copies.

    The composable half of :func:`save_state`: callers embedding network
    weights inside a larger archive (e.g. the versioned estimator
    artifacts in :mod:`repro.core.persistence`) prefix the keys so
    several models can share one .npz namespace.
    """
    return {
        f"{prefix}{name}": value for name, value in model.state_dict().items()
    }


def load_state_arrays(
    model: Module, arrays: "dict[str, np.ndarray]", prefix: str = ""
) -> Module:
    """Load ``{prefix}``-keyed entries of ``arrays`` into ``model``.

    Inverse of :func:`state_arrays`; entries outside the prefix are
    ignored (they belong to other components of the archive).
    """
    model.load_state_dict(
        {
            name[len(prefix):]: value
            for name, value in arrays.items()
            if name.startswith(prefix)
        }
    )
    return model


def save_state(model: Module, path: "str | os.PathLike") -> None:
    """Write the model's state dict to ``path`` as a compressed .npz.

    Parameter names containing dots are preserved as archive keys.
    """
    state = model.state_dict()
    np.savez_compressed(path, **{name: value for name, value in state.items()})


def load_state(model: Module, path: "str | os.PathLike") -> Module:
    """Load a state dict saved by :func:`save_state` into ``model``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
