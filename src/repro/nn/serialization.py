"""Persist model parameters to .npz archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_state(model: Module, path: "str | os.PathLike") -> None:
    """Write the model's state dict to ``path`` as a compressed .npz.

    Parameter names containing dots are preserved as archive keys.
    """
    state = model.state_dict()
    np.savez_compressed(path, **{name: value for name, value in state.items()})


def load_state(model: Module, path: "str | os.PathLike") -> Module:
    """Load a state dict saved by :func:`save_state` into ``model``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
