"""A training loop with history tracking and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.data import DataLoader
from repro.nn.losses import Loss
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.schedulers import LRScheduler


@dataclass
class TrainingHistory:
    """Per-epoch records produced by :class:`Trainer.fit`."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    lr: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_loss(self) -> float:
        return min(self.val_loss) if self.val_loss else float("nan")


class Trainer:
    """Drive epochs of forward/backward/step over a :class:`DataLoader`.

    The model must be a Module whose ``backward`` chains back to its
    input (e.g. :class:`Sequential` or a custom composite).  Early
    stopping restores the best-validation-loss parameters when
    ``restore_best`` is set.
    """

    def __init__(
        self,
        model: Module,
        loss: Loss,
        optimizer: Optimizer,
        scheduler: "LRScheduler | None" = None,
        grad_clip: "float | None" = None,
        fused: bool = True,
    ):
        if grad_clip is not None and grad_clip <= 0:
            raise ValueError(f"grad_clip must be positive, got {grad_clip}")
        self.model = model
        self.loss = loss
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.grad_clip = grad_clip
        #: Enable the allocation-free fast path for the duration of
        #: ``fit``: layer workspaces are turned on (outputs/gradients are
        #: served from reused buffers) and turned back off afterwards so
        #: inference keeps allocate-fresh semantics.  ``fused=False``
        #: reproduces the historical allocating behavior exactly — the
        #: reference mode the train-bench baseline leg measures.
        self.fused = bool(fused)

    def fit(
        self,
        train_loader: DataLoader,
        epochs: int,
        val_loader: "DataLoader | None" = None,
        patience: "int | None" = None,
        restore_best: bool = True,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs; stop early after ``patience``
        epochs without validation improvement (requires ``val_loader``)."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if patience is not None and val_loader is None:
            raise ValueError("early stopping (patience) requires a val_loader")
        if self.fused:
            self.model.use_workspaces(True)
            self.loss.use_buffers(True)
        try:
            return self._fit(
                train_loader, epochs, val_loader, patience, restore_best, verbose
            )
        finally:
            if self.fused:
                self.model.use_workspaces(False)
                self.loss.use_buffers(False)

    def _fit(
        self,
        train_loader: DataLoader,
        epochs: int,
        val_loader: "DataLoader | None",
        patience: "int | None",
        restore_best: bool,
        verbose: bool,
    ) -> TrainingHistory:
        history = TrainingHistory()
        best_val = float("inf")
        best_state = None
        stale = 0
        for epoch in range(epochs):
            train_loss = self.train_epoch(train_loader)
            history.train_loss.append(train_loss)
            history.lr.append(self.optimizer.lr)
            if val_loader is not None:
                val_loss = self.evaluate(val_loader)
                history.val_loss.append(val_loss)
                if val_loss < best_val - 1e-12:
                    best_val = val_loss
                    stale = 0
                    if restore_best:
                        best_state = self.model.state_dict()
                else:
                    stale += 1
                if verbose:  # pragma: no cover - console output
                    print(
                        f"epoch {epoch + 1}/{epochs} "
                        f"train={train_loss:.5f} val={val_loss:.5f}"
                    )
                if patience is not None and stale > patience:
                    break
            elif verbose:  # pragma: no cover
                print(f"epoch {epoch + 1}/{epochs} train={train_loss:.5f}")
            if self.scheduler is not None:
                self.scheduler.step()
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return history

    def train_epoch(self, loader: DataLoader) -> float:
        """One pass over ``loader`` in training mode; returns mean loss."""
        self.model.train()
        total, count = 0.0, 0
        for batch in loader:
            inputs, targets = batch[0], batch[1]
            self.optimizer.zero_grad()
            outputs = self.model(inputs)
            loss_value = self.loss.forward(outputs, targets)
            grad = self.loss.backward()
            self.model.backward(grad)
            if self.grad_clip is not None:
                self._clip_gradients()
            self.optimizer.step()
            total += loss_value * len(inputs)
            count += len(inputs)
        return total / max(count, 1)

    def evaluate(self, loader: DataLoader) -> float:
        """Mean loss over ``loader`` in eval mode (no parameter updates)."""
        self.model.eval()
        total, count = 0.0, 0
        for batch in loader:
            inputs, targets = batch[0], batch[1]
            outputs = self.model(inputs)
            total += self.loss.forward(outputs, targets) * len(inputs)
            count += len(inputs)
        return total / max(count, 1)

    def _clip_gradients(self) -> None:
        """Clip the global gradient norm in one fused pass per parameter.

        The squared norm accumulates via BLAS ``dot`` on the raveled
        gradient (no ``grad**2`` temporary); when the norm is already
        under the threshold — the common case — the method returns
        without touching any gradient, so clipping costs a single read
        pass instead of the historical read + unconditional-check pair
        of full passes.
        """
        flat_grad = getattr(self.optimizer, "_flat_grad", None)
        if flat_grad is not None:
            # fused optimizers pack all gradients contiguously: the
            # global norm is one BLAS dot and the rescale one multiply
            norm = np.sqrt(float(np.dot(flat_grad, flat_grad)))
            if norm <= self.grad_clip:
                return
            np.multiply(
                flat_grad, self.grad_clip / (norm + 1e-12), out=flat_grad
            )
            return
        norm_sq = 0.0
        for param in self.optimizer.parameters:
            flat = param.grad.ravel()
            norm_sq += float(np.dot(flat, flat))
        norm = np.sqrt(norm_sq)
        if norm <= self.grad_clip:
            return
        scale = self.grad_clip / (norm + 1e-12)
        for param in self.optimizer.parameters:
            np.multiply(param.grad, scale, out=param.grad)
