"""Hyperparameter search over localization models.

"We applied the best effort hyperparameter tuning for all methods."
(§IV-B) — this module provides the corresponding harness: exhaustive
grid search with a held-out validation split, scored by mean position
error.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.data.ujiindoor import FingerprintDataset
from repro.metrics.errors import mean_error
from repro.utils.rng import ensure_rng


@dataclass
class SearchResult:
    """Outcome of a grid search."""

    best_params: dict
    best_score: float
    trials: "list[tuple[dict, float]]" = field(repr=False, default_factory=list)

    def top(self, n: int = 5) -> "list[tuple[dict, float]]":
        """The n best (params, score) pairs, ascending score."""
        return sorted(self.trials, key=lambda item: item[1])[:n]


def grid_search(
    model_factory,
    param_grid: "dict[str, list]",
    dataset: FingerprintDataset,
    val_fraction: float = 0.2,
    rng=None,
    verbose: bool = False,
) -> SearchResult:
    """Exhaustively evaluate a parameter grid.

    Parameters
    ----------
    model_factory:
        Callable ``**params → model``; the model must expose
        ``fit(dataset)`` and ``predict_coordinates(dataset)``.
    param_grid:
        Mapping of parameter name → list of candidate values.
    dataset:
        Training data; a ``val_fraction`` split is held out and scored
        by mean position error.
    """
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    rng = ensure_rng(rng)
    train, val = dataset.split((1.0 - val_fraction, val_fraction), rng=rng)
    if len(val) == 0:
        raise ValueError("validation split is empty; raise val_fraction")

    names = list(param_grid)
    trials: list[tuple[dict, float]] = []
    best_score = np.inf
    best_params: dict = {}
    for combo in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, combo))
        model = model_factory(**params)
        model.fit(train)
        score = mean_error(model.predict_coordinates(val), val.coordinates)
        trials.append((params, score))
        if verbose:  # pragma: no cover - console output
            print(f"{params} -> {score:.3f} m")
        if score < best_score:
            best_score = score
            best_params = params
    return SearchResult(
        best_params=best_params, best_score=float(best_score), trials=trials
    )
