"""Versioned persistence for fitted models and the serving model store.

The paper's deployment story is "train offline, ship the fitted model,
restore without the training data" (the energy section's premise).  This
module is that story for the whole serving tier:

* :func:`save_noble_wifi` / :func:`load_noble_wifi` — the historical
  NObLe-model-level round trip (network weights via
  :mod:`repro.nn.serialization`, quantizer state, head layout).
* :func:`save_estimator` / :func:`load_estimator` — **versioned artifact
  format** (schema :data:`ARTIFACT_SCHEMA`) covering every backend in
  :mod:`repro.serving.registry` through a per-backend serializer
  registry that mirrors it: ``knn``, ``knn-regressor``, ``forest``,
  ``noble``, ``cnnloc``, and the composite ``ensemble`` — including
  ``shards=`` configurations, whose
  :class:`~repro.sharding.ShardedKNNIndex` persists its finished shard
  assignment so a restore skips the partition fit.
* :class:`ModelStore` — a directory of artifacts keyed by the same
  (backend, dataset fingerprint, hyperparameters) triple as
  :class:`repro.serving.cache.ModelCache`, which uses it as a spill
  tier: fitted models are written through on insert and misses are
  resolved from disk before re-fitting, so a process restart warm-starts
  instead of re-paying every cold fit.

Every artifact is a single compressed ``.npz`` whose ``artifact_json``
entry carries the envelope (schema tag, backend name, canonicalized
hyperparameters, serializer metadata).  A reader that does not recognize
the schema tag refuses with :class:`ArtifactError` rather than guessing
— renamed, truncated, or foreign files surface the same way.
"""

from __future__ import annotations

import json
import os
import re

import numpy as np

from repro.localization.noble import ALL_HEADS, NObLeWifi
from repro.quantization.grid import GridQuantizer
from repro.quantization.multires import MultiResolutionQuantizer

#: Identifier (and version) of the estimator artifact envelope.  Bump on
#: any incompatible layout change; readers reject unknown tags.
ARTIFACT_SCHEMA = "repro-estimator/1"


class ArtifactError(ValueError):
    """A model artifact is unreadable, foreign, or from another version."""


# --------------------------------------------------------------------- NObLe
def save_noble_wifi(model: NObLeWifi, path: "str | os.PathLike") -> None:
    """Persist a fitted :class:`NObLeWifi` to ``path`` (.npz)."""
    np.savez_compressed(path, **_noble_arrays(model))


def load_noble_wifi(path: "str | os.PathLike") -> NObLeWifi:
    """Restore a :class:`NObLeWifi` saved by :func:`save_noble_wifi`."""
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    return _noble_from_arrays(arrays)


def _noble_arrays(model: NObLeWifi) -> "dict[str, np.ndarray]":
    """A fitted NObLe model as a flat array dict (shared with artifacts)."""
    if model.model_ is None:
        raise ValueError("model is not fitted")
    arrays: dict[str, np.ndarray] = {}
    for name, value in model.model_.state_dict().items():
        arrays[f"net.{name}"] = value
    quantizer = model.quantizer_
    fine = quantizer.fine if isinstance(quantizer, MultiResolutionQuantizer) else quantizer
    arrays["fine.classes"] = fine.classes_
    arrays["fine.centroids"] = fine.centroids_
    arrays["fine.counts"] = fine.counts_
    arrays["fine.origin"] = fine.origin_
    if isinstance(quantizer, MultiResolutionQuantizer):
        arrays["coarse.classes"] = quantizer.coarse.classes_
        arrays["coarse.centroids"] = quantizer.coarse.centroids_
        arrays["coarse.counts"] = quantizer.coarse.counts_
        arrays["coarse.origin"] = quantizer.coarse.origin_
    if model.fine_class_building_ is not None:
        arrays["fine_class_building"] = model.fine_class_building_
    if model.binner_ is not None:
        for name, value in model.binner_.state_arrays().items():
            arrays[name] = value

    transform_name = None
    if model.signal_transform is not None:
        from repro.localization import representations

        for name in ("identity", "powed", "exponential", "binary"):
            if model.signal_transform is representations.get_representation(name):
                transform_name = name
                break
        else:
            raise ValueError(
                "only named signal transforms (repro.localization."
                "representations) can be persisted; got a custom callable"
            )

    meta = {
        "signal_transform": transform_name,
        "tau": model.tau,
        "coarse": model.coarse,
        "hidden": model.hidden,
        "heads": list(model.heads),
        "adjacency_weight": model.adjacency_weight,
        # restore must rebuild the network in the precision it was
        # trained in, or float32 weights would silently upcast and
        # predictions would drift from the shipped model
        "dtype": None if model.dtype is None else str(model._dtype),
        "n_inputs": model.model_[0].in_features,
        "n_outputs": model.model_[-1].out_features,
        "n_buildings": model.n_buildings_,
        "n_floors": model.n_floors_,
        "head_slices": {
            head: [s.start, s.stop] for head, s in model.head_slices_.items()
        },
        "multires": isinstance(quantizer, MultiResolutionQuantizer),
        "representative": fine.representative,
        "quantize_bins": model.quantize_bins,
    }
    arrays["meta_json"] = _json_blob(meta)
    return arrays


def _noble_from_arrays(arrays: "dict[str, np.ndarray]") -> NObLeWifi:
    """Rebuild a fitted NObLe model from :func:`_noble_arrays` output."""
    arrays = dict(arrays)
    meta = json.loads(bytes(arrays.pop("meta_json")).decode("utf-8"))

    model = NObLeWifi(
        tau=meta["tau"],
        coarse=meta["coarse"],
        hidden=meta["hidden"],
        heads=tuple(h for h in ALL_HEADS if h in meta["heads"]),
        adjacency_weight=meta["adjacency_weight"],
        signal_transform=meta.get("signal_transform"),
        dtype=meta.get("dtype"),
        quantize_bins=meta.get("quantize_bins"),
    )
    if model.quantize_bins is not None:
        from repro.quantization import FeatureBinner

        model.binner_ = FeatureBinner.from_state_arrays(arrays)
    model.n_buildings_ = meta["n_buildings"]
    model.n_floors_ = meta["n_floors"]
    model.head_slices_ = {
        head: slice(bounds[0], bounds[1])
        for head, bounds in meta["head_slices"].items()
    }
    model.quantizer_ = _restore_quantizer(meta, arrays)
    model.fine_class_building_ = arrays.get("fine_class_building")
    network = model._build_model(meta["n_inputs"], meta["n_outputs"], rng=0)
    network.load_state_dict(
        {
            name[len("net."):]: value
            for name, value in arrays.items()
            if name.startswith("net.")
        }
    )
    network.eval()
    model.model_ = network
    return model


def _restore_quantizer(meta: dict, arrays: dict):
    fine = _restore_grid(
        meta["tau"], meta["representative"], arrays, prefix="fine"
    )
    if not meta["multires"]:
        return fine
    quantizer = MultiResolutionQuantizer(
        meta["tau"], meta["coarse"], representative=meta["representative"]
    )
    quantizer.fine = fine
    quantizer.coarse = _restore_grid(
        meta["coarse"], meta["representative"], arrays, prefix="coarse"
    )
    return quantizer


def _restore_grid(tau: float, representative: str, arrays: dict, prefix: str):
    grid = GridQuantizer(tau, representative=representative)
    grid.origin_ = arrays[f"{prefix}.origin"]
    grid.classes_ = arrays[f"{prefix}.classes"].astype(int)
    grid.centroids_ = arrays[f"{prefix}.centroids"]
    grid.counts_ = arrays[f"{prefix}.counts"].astype(int)
    grid._rebuild_lookup()
    return grid


# ------------------------------------------------------ serializer registry
#: backend name -> serializer class; populated by :func:`register_serializer`.
_SERIALIZERS: "dict[str, type]" = {}


def register_serializer(name: str):
    """Class decorator adding a backend serializer to the registry.

    A serializer mirrors one :func:`repro.serving.registry.register`
    entry and provides two static methods:

    ``dump(estimator) -> (arrays, meta)``
        The fitted state as a flat ``str -> ndarray`` dict plus a
        JSON-serializable metadata dict.
    ``load(estimator, arrays, meta) -> None``
        Attach that state to a freshly constructed (unfitted) estimator
        of the same backend and hyperparameters.
    """

    def decorator(cls):
        if name in _SERIALIZERS:
            raise ValueError(f"serializer for {name!r} already registered")
        _SERIALIZERS[name] = cls
        return cls

    return decorator


def available_serializers() -> "tuple[str, ...]":
    """Backend names with a registered serializer, sorted."""
    return tuple(sorted(_SERIALIZERS))


def serializer_for(name: str) -> type:
    """The serializer registered for backend ``name``."""
    try:
        return _SERIALIZERS[name]
    except KeyError:
        raise ArtifactError(
            f"no serializer registered for backend {name!r}; "
            f"available: {', '.join(available_serializers())}"
        ) from None


# ------------------------------------------------------------ artifact format
def save_estimator(
    estimator,
    path: "str | os.PathLike",
    store_key: "tuple[str, str, str] | None" = None,
) -> None:
    """Persist a fitted registry estimator as a versioned ``.npz`` artifact.

    ``estimator`` must be an instance of a registered
    :class:`repro.serving.Estimator` backend (its ``registry_name`` and
    canonicalized ``params`` go into the envelope so
    :func:`load_estimator` can reconstruct an identically configured
    instance).  ``store_key`` is the (backend, dataset fingerprint,
    params key) identity triple recorded by :class:`ModelStore` so a
    renamed or foreign artifact can never serve under the wrong key;
    direct callers normally leave it ``None``.

    Raises :class:`ArtifactError` for estimators outside the registry
    and ``ValueError`` for unfitted ones.
    """
    name = getattr(estimator, "registry_name", None)
    if not isinstance(name, str):
        raise ArtifactError(
            "save_estimator takes a registered serving estimator "
            f"(got {type(estimator).__name__}); register the backend and "
            "a serializer to persist it"
        )
    serializer = serializer_for(name)
    arrays, meta = serializer.dump(estimator)
    envelope = {
        "schema": ARTIFACT_SCHEMA,
        "backend": name,
        "params": estimator.params,
        "meta": meta,
        "store_key": None if store_key is None else list(store_key),
    }
    arrays = dict(arrays)
    try:
        arrays["artifact_json"] = _json_blob(envelope)
    except TypeError as error:
        raise ArtifactError(
            f"backend {name!r} produced non-JSON-serializable artifact "
            f"metadata: {error}"
        ) from error
    np.savez_compressed(path, **arrays)


def load_estimator(
    path: "str | os.PathLike",
    expected_store_key: "tuple[str, str, str] | None" = None,
):
    """Restore a fitted estimator saved by :func:`save_estimator`.

    The returned instance is ready to ``predict_batch`` and produces
    bit-identical predictions to the estimator that was saved.  Raises
    :class:`ArtifactError` when the file is not a repro estimator
    artifact, was written under a different schema version, names an
    unknown backend, or (with ``expected_store_key``) was recorded under
    a different identity triple — the renamed-artifact guard
    :class:`ModelStore` relies on.  A missing file raises the usual
    ``FileNotFoundError``.
    """
    arrays, envelope = _read_artifact(path)
    if expected_store_key is not None:
        recorded = envelope.get("store_key")
        if recorded != list(expected_store_key):
            raise ArtifactError(
                f"artifact {path} was saved under store key {recorded!r}, "
                f"not {list(expected_store_key)!r} — renamed or foreign "
                "files cannot serve from the model store"
            )
    backend = envelope.get("backend")
    serializer = serializer_for(backend)
    from repro.serving.registry import create

    params = envelope.get("params") or {}
    try:
        estimator = create(backend, **params)
    except (TypeError, ValueError) as error:
        raise ArtifactError(
            f"cannot reconstruct backend {backend!r} from artifact "
            f"{path}: {error}"
        ) from error
    # the constructor must canonicalize the recorded params back to
    # themselves; a drifted default or renamed hyperparameter means this
    # reader no longer speaks the artifact's configuration language
    if json.dumps(estimator.params, sort_keys=True) != json.dumps(
        params, sort_keys=True
    ):
        raise ArtifactError(
            f"artifact {path} params do not round-trip through the "
            f"{backend!r} constructor: saved {params!r}, "
            f"reconstructed {estimator.params!r}"
        )
    try:
        serializer.load(estimator, arrays, envelope.get("meta") or {})
    except ArtifactError:
        raise
    except (KeyError, IndexError, ValueError, TypeError) as error:
        raise ArtifactError(
            f"artifact {path} is incomplete or inconsistent for backend "
            f"{backend!r}: {error}"
        ) from error
    return estimator


def _read_artifact(path) -> "tuple[dict, dict]":
    """Load an artifact's arrays and validated envelope."""
    try:
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise
    except OSError:
        # I/O failures (EIO, stale NFS handle) are transient, not
        # corruption: propagate as-is so callers can retry instead of
        # quarantining a healthy file
        raise
    except Exception as error:
        raise ArtifactError(
            f"cannot read estimator artifact {path}: {error}"
        ) from error
    blob = arrays.pop("artifact_json", None)
    if blob is None:
        raise ArtifactError(
            f"{path} is not a repro estimator artifact (no envelope); "
            "was it written by save_estimator?"
        )
    try:
        envelope = json.loads(bytes(blob).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ArtifactError(
            f"estimator artifact {path} has a corrupt envelope: {error}"
        ) from error
    schema = envelope.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ArtifactError(
            f"estimator artifact {path} has schema {schema!r}; this build "
            f"reads {ARTIFACT_SCHEMA!r} — re-export the model with a "
            "matching version"
        )
    return arrays, envelope


def _json_blob(payload: dict) -> np.ndarray:
    """A JSON payload as a uint8 array (npz archives hold arrays only)."""
    return np.frombuffer(json.dumps(payload).encode("utf-8"), dtype=np.uint8)


def _require_fitted(estimator, attr: str = "model_"):
    model = getattr(estimator, attr, None)
    if model is None:
        raise ValueError(
            f"cannot save an unfitted {estimator.registry_name!r} estimator"
        )
    return model


def _strip_prefix(arrays: dict, prefix: str) -> dict:
    return {
        name[len(prefix):]: value
        for name, value in arrays.items()
        if name.startswith(prefix)
    }


# ----------------------------------------------------------- index (de)hydration
def _index_state(index, prefix: str) -> "tuple[dict, dict]":
    """(arrays, meta) for a KNNIndex or ShardedKNNIndex.

    A binned (quantized) index persists its uint8 codes plus the fitted
    binner state instead of float points — the artifact gets the same 8x
    size cut the resident index enjoys, and restore rebuilds straight
    from the codes with no re-quantization.  Sharded binned indexes
    still persist the float map (shard state references it), plus the
    binner so per-shard indexes rebuild binned.
    """
    from repro.sharding.index import ShardedKNNIndex

    if isinstance(index, ShardedKNNIndex):
        arrays = {
            f"{prefix}{name}": value
            for name, value in index.shard_state().items()
        }
        arrays[f"{prefix}points"] = index.points
        meta = {
            "sharded": True,
            "method": index.shards_[0].method,
            "partitioner": index.partitioner.describe(),
            "prune": bool(index.prune),
        }
        if index.binner is not None:
            for name, value in index.binner.state_arrays().items():
                arrays[f"{prefix}{name}"] = value
            meta["binned"] = True
        return arrays, meta
    if index.binner is not None:
        arrays = {f"{prefix}codes": index.codes}
        for name, value in index.binner.state_arrays().items():
            arrays[f"{prefix}{name}"] = value
        return arrays, {"sharded": False, "method": "brute", "binned": True}
    return (
        {f"{prefix}points": index.points},
        {"sharded": False, "method": index.method},
    )


def _restore_index(arrays: dict, meta: dict, prefix: str):
    """Inverse of :func:`_index_state`; skips any partition fit."""
    from repro.manifold.neighbors import KNNIndex
    from repro.sharding.index import ShardedKNNIndex

    binner = None
    if meta.get("binned"):
        from repro.quantization import FeatureBinner

        binner = FeatureBinner.from_state_arrays(
            _strip_prefix(arrays, prefix)
        )
    if not meta["sharded"]:
        if binner is not None:
            return KNNIndex.from_codes(arrays[f"{prefix}codes"], binner)
        return KNNIndex(arrays[f"{prefix}points"], method=meta["method"])
    state = {
        name: arrays[f"{prefix}{name}"]
        for name in ("shard_concat", "shard_sizes", "centroids", "radii")
    }
    return ShardedKNNIndex.from_shard_state(
        arrays[f"{prefix}points"],
        state,
        partitioner_description=meta["partitioner"],
        method=meta["method"],
        prune=meta["prune"],
        binner=binner,
    )


# ------------------------------------------------------- backend serializers
def _restorable_partitioner(spec, shards: int):
    """A partitioner the restored model can carry.

    Spec *strings* (``"auto"``/``"labels"``/``"kmeans"``/``"chunk"``)
    survive the round trip verbatim, so a restored estimator can even
    be re-fit on new data.  A custom :class:`Partitioner` *instance*
    cannot be reconstructed from its recorded ``describe()`` string —
    the restored estimator serves normally, but re-fitting it gets a
    :class:`RestoredPartitioner` whose ``assign`` raises with an
    actionable message instead of ``make_partitioner`` choking on the
    describe string.
    """
    from repro.sharding.partitioner import _SPECS, RestoredPartitioner

    if spec is None or (isinstance(spec, str) and (spec == "auto" or spec in _SPECS)):
        return spec
    return RestoredPartitioner(str(spec), n_shards=max(int(shards), 1))


@register_serializer("knn")
class _KNNFingerprintingSerializer:
    @staticmethod
    def dump(estimator):
        model = _require_fitted(estimator)
        arrays, index_meta = _index_state(model.index_, prefix="index.")
        arrays["coordinates"] = model.coordinates_
        arrays["building"] = model.building_
        arrays["floor"] = model.floor_
        return arrays, {"index": index_meta}

    @staticmethod
    def load(estimator, arrays, meta):
        from repro.localization.knn import KNNFingerprinting

        kwargs = dict(estimator.params)
        if "partitioner" in kwargs:
            # also fix the estimator shell, whose own fit() re-injects
            # _partitioner — a refit must get the restorable form too
            estimator._partitioner = _restorable_partitioner(
                estimator._partitioner, kwargs.get("shards", 1)
            )
            kwargs["partitioner"] = estimator._partitioner
        model = KNNFingerprinting(**kwargs)
        model.index_ = _restore_index(arrays, meta["index"], prefix="index.")
        model.coordinates_ = arrays["coordinates"]
        model.building_ = arrays["building"].astype(int, copy=False)
        model.floor_ = arrays["floor"].astype(int, copy=False)
        estimator.model_ = model


@register_serializer("embed-knn")
class _EmbeddedKNNSerializer:
    """kNN-in-embedding-space artifacts: embedder + embedded index.

    The learned embedder rides along with the index it produced
    (:func:`repro.embedding.embedder_state`), so a warm restore serves
    bit-identical predictions without re-training either stage — the
    guarantee the ``embed-knn`` round-trip test pins.
    """

    @staticmethod
    def dump(estimator):
        from repro.embedding import embedder_state

        model = _require_fitted(estimator)
        arrays, index_meta = _index_state(model.index_, prefix="index.")
        embed_arrays, embed_meta = embedder_state(
            model.embedder, prefix="embedder."
        )
        arrays.update(embed_arrays)
        arrays["coordinates"] = model.coordinates_
        arrays["building"] = model.building_
        arrays["floor"] = model.floor_
        return arrays, {"index": index_meta, "embedder": embed_meta}

    @staticmethod
    def load(estimator, arrays, meta):
        from repro.embedding import restore_embedder
        from repro.localization.knn import KNNFingerprinting

        kwargs = {
            key: value
            for key, value in estimator.params.items()
            if key not in ("embedder", "embed_params")
        }
        if "partitioner" in kwargs:
            estimator._partitioner = _restorable_partitioner(
                estimator._partitioner, kwargs.get("shards", 1)
            )
            kwargs["partitioner"] = estimator._partitioner
        model = KNNFingerprinting(
            embedder=restore_embedder(
                arrays, meta["embedder"], prefix="embedder."
            ),
            **kwargs,
        )
        model.index_ = _restore_index(arrays, meta["index"], prefix="index.")
        model.coordinates_ = arrays["coordinates"]
        model.building_ = arrays["building"].astype(int, copy=False)
        model.floor_ = arrays["floor"].astype(int, copy=False)
        estimator.model_ = model


@register_serializer("knn-regressor")
class _KNNRegressorSerializer:
    @staticmethod
    def dump(estimator):
        model = _require_fitted(estimator)
        arrays, index_meta = _index_state(model.index_, prefix="index.")
        arrays["targets"] = model.targets_
        return arrays, {"index": index_meta, "squeeze": bool(model._squeeze)}

    @staticmethod
    def load(estimator, arrays, meta):
        if "partitioner" in estimator.params:
            estimator._partitioner = _restorable_partitioner(
                estimator._partitioner, estimator.params.get("shards", 1)
            )
        model = estimator._build()
        model.index_ = _restore_index(arrays, meta["index"], prefix="index.")
        model.targets_ = arrays["targets"]
        model._squeeze = bool(meta["squeeze"])
        estimator.model_ = model


@register_serializer("forest")
class _RandomForestSerializer:
    @staticmethod
    def dump(estimator):
        model = _require_fitted(estimator, "model_")
        if model.trees_ is None:
            raise ValueError("cannot save an unfitted 'forest' estimator")
        arrays: dict = {}
        for i, tree in enumerate(model.trees_):
            for name, value in tree.to_arrays().items():
                arrays[f"tree{i:04d}.{name}"] = value
        meta = {
            "n_trees": len(model.trees_),
            "squeeze": bool(model._squeeze),
            "oob_error": model.oob_error_,
        }
        return arrays, meta

    @staticmethod
    def load(estimator, arrays, meta):
        from repro.ml.tree import DecisionTreeRegressor

        model = estimator._build()
        model.trees_ = [
            DecisionTreeRegressor.from_arrays(
                _strip_prefix(arrays, f"tree{i:04d}.")
            )
            for i in range(int(meta["n_trees"]))
        ]
        model._squeeze = bool(meta["squeeze"])
        model.oob_error_ = meta.get("oob_error")
        estimator.model_ = model


@register_serializer("noble")
class _NObLeSerializer:
    @staticmethod
    def dump(estimator):
        return _noble_arrays(_require_fitted(estimator)), {}

    @staticmethod
    def load(estimator, arrays, meta):
        estimator.model_ = _noble_from_arrays(arrays)
        estimator._replicas_ = []


@register_serializer("cnnloc")
class _CNNLocSerializer:
    @staticmethod
    def dump(estimator):
        from repro.nn.serialization import state_arrays

        model = _require_fitted(estimator)
        if model.model_ is None:
            raise ValueError("cannot save an unfitted 'cnnloc' estimator")
        arrays = state_arrays(model.model_, prefix="net.")
        arrays["coord_mean"] = model.coord_mean_
        arrays["coord_std"] = model.coord_std_
        if model.binner_ is not None:
            for name, value in model.binner_.state_arrays().items():
                arrays[name] = value
        slices = model.head_slices_
        meta = {
            "encoder_sizes": list(model.encoder_sizes),
            "conv_channels": list(model.conv_channels),
            "kernel_size": model.kernel_size,
            "pool": model.pool,
            "dtype": None if model.dtype is None else str(model._dtype),
            "quantize_bins": model.quantize_bins,
            "n_inputs": model.model_[0].in_features,
            "n_buildings": slices["building"].stop,
            "n_floors": slices["floor"].stop - slices["floor"].start,
        }
        return arrays, meta

    @staticmethod
    def load(estimator, arrays, meta):
        from repro.localization.cnnloc import CNNLocWifi
        from repro.nn.serialization import load_state_arrays

        model = CNNLocWifi(
            encoder_sizes=tuple(meta["encoder_sizes"]),
            conv_channels=tuple(meta["conv_channels"]),
            kernel_size=meta["kernel_size"],
            pool=meta["pool"],
            dtype=meta["dtype"],
            # absent in pre-quantization artifacts: those serve raw
            quantize_bins=meta.get("quantize_bins"),
        )
        if model.quantize_bins is not None:
            from repro.quantization import FeatureBinner

            model.binner_ = FeatureBinner.from_state_arrays(arrays)
        network, head_slices = model._build_network(
            int(meta["n_inputs"]),
            int(meta["n_buildings"]),
            int(meta["n_floors"]),
            rng=0,
        )
        load_state_arrays(network, arrays, prefix="net.")
        network.eval()
        model.model_ = network
        model.head_slices_ = head_slices
        model.coord_mean_ = arrays["coord_mean"]
        model.coord_std_ = arrays["coord_std"]
        estimator.model_ = model


@register_serializer("ensemble")
class _EnsembleSerializer:
    @staticmethod
    def dump(estimator):
        if estimator.ood_threshold_ is None:
            raise ValueError("cannot save an unfitted 'ensemble' estimator")
        arrays, ood_meta = _index_state(estimator._ood_index, prefix="ood.")
        meta: dict = {
            "ood_threshold": float(estimator.ood_threshold_),
            "ood_index": ood_meta,
            "heads_ok": bool(estimator._heads_ok),
            "children": {},
        }
        for side in ("primary", "fallback"):
            child = getattr(estimator, f"_{side}")
            child_arrays, child_meta = serializer_for(
                child.registry_name
            ).dump(child)
            for name, value in child_arrays.items():
                arrays[f"{side}.{name}"] = value
            meta["children"][side] = {
                "backend": child.registry_name,
                "meta": child_meta,
            }
        return arrays, meta

    @staticmethod
    def load(estimator, arrays, meta):
        from repro.manifold.neighbors import KNNIndex

        for side in ("primary", "fallback"):
            child = getattr(estimator, f"_{side}")
            info = meta["children"][side]
            if info["backend"] != child.registry_name:
                raise ArtifactError(
                    f"ensemble artifact stores a {info['backend']!r} "
                    f"{side}, but the params built {child.registry_name!r}"
                )
            serializer_for(child.registry_name).load(
                child, _strip_prefix(arrays, f"{side}."), info["meta"]
            )
        if "ood_index" in meta:
            estimator._ood_index = _restore_index(
                arrays, meta["ood_index"], prefix="ood."
            )
        else:
            # pre-quantization artifacts stored the gate as raw points
            estimator._ood_index = KNNIndex(
                arrays["ood.points"], method=meta["ood_method"]
            )
        estimator.ood_threshold_ = float(meta["ood_threshold"])
        estimator._heads_ok = bool(meta["heads_ok"])
        estimator.routes_ = {"primary": 0, "fallback": 0}


# ----------------------------------------------------------------- ModelStore
class ModelStore:
    """A directory of estimator artifacts keyed like the ``ModelCache``.

    Artifacts are addressed by the (backend, dataset fingerprint,
    hyperparameter key) triple — the same key the in-memory
    :class:`repro.serving.cache.ModelCache` uses — hashed into a stable
    filename.  The triple is also recorded *inside* the artifact, so a
    renamed or hand-copied file can never be served under the wrong key,
    and a changed radio map (different fingerprint) simply misses: stale
    artifacts cannot shadow fresh data.

    ``get`` degrades unreadable artifacts (corrupt, foreign, other
    schema version) to a miss: the bad file is **quarantined** — renamed
    aside to ``<name>.corrupt`` so later misses on the same key go
    straight to a silent re-fit instead of re-reading and re-warning
    forever — and the one warning is issued at quarantine time.  The
    write-through on the subsequent insert replaces the artifact under
    the original name.  Transient I/O errors (``OSError`` that is not
    file-not-found) are retried ``read_retries`` times before degrading
    to a miss *without* quarantine — a healthy file must survive an NFS
    hiccup.  Use :func:`load_estimator` directly when a hard failure is
    wanted.

    Writes are atomic (O_EXCL temp file via ``tempfile.mkstemp`` +
    ``os.replace``), so a crashed writer never leaves a half-written
    artifact under a live key.  Safe across threads *and processes*:
    concurrent puts of the same key write disjoint temp files and
    last-write-win with an intact artifact either way — the contract
    the multi-process serving tier's warm-start path relies on.
    """

    def __init__(
        self,
        directory: "str | os.PathLike",
        read_retries: int = 2,
        retry_delay_s: float = 0.05,
    ):
        if read_retries < 0:
            raise ValueError(f"read_retries must be >= 0, got {read_retries}")
        if retry_delay_s < 0:
            raise ValueError(
                f"retry_delay_s must be >= 0, got {retry_delay_s}"
            )
        self.directory = os.fspath(directory)
        self.read_retries = int(read_retries)
        self.retry_delay_s = float(retry_delay_s)
        os.makedirs(self.directory, exist_ok=True)

    def path_for(self, name: str, fingerprint: str, params_key: str) -> str:
        """The artifact path owned by one (backend, dataset, params) triple."""
        import hashlib

        digest = hashlib.blake2b(
            repr((name, fingerprint, params_key)).encode("utf-8"),
            digest_size=12,
        ).hexdigest()
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name)
        return os.path.join(self.directory, f"{safe}-{digest}.npz")

    def put(
        self, name: str, fingerprint: str, params_key: str, estimator
    ) -> str:
        """Write ``estimator`` under the key triple; returns the path."""
        import tempfile

        path = self.path_for(name, fingerprint, params_key)
        base = os.path.basename(path)[: -len(".npz")]
        # O_EXCL temp file in the store directory: every writer —
        # thread *or process* — gets a name nobody else can open, so
        # concurrent puts of one key can never clobber each other's
        # half-written temp (a deterministic temp name can, across
        # processes).  Same filesystem as ``path``, so the final
        # ``os.replace`` stays atomic.  The ``.tmp-`` infix keeps
        # :meth:`paths` from listing in-flight writes; the ``.npz``
        # suffix stops np.savez from silently appending one and
        # dodging the rename.
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=f"{base}.tmp-", suffix=".npz"
        )
        os.close(fd)
        try:
            save_estimator(
                estimator, tmp, store_key=(name, fingerprint, params_key)
            )
            os.replace(tmp, path)
        except BaseException:  # failed save: never leave debris
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def get(self, name: str, fingerprint: str, params_key: str):
        """The estimator stored under the triple, or None (soft miss).

        A corrupt artifact is quarantined (renamed to ``*.corrupt``)
        with a single warning; a transient I/O error is retried
        ``read_retries`` times, then degraded to a miss with a warning
        but the file is left in place.
        """
        import time as _time
        import warnings

        path = self.path_for(name, fingerprint, params_key)
        error: "Exception | None" = None
        for attempt in range(self.read_retries + 1):
            try:
                return load_estimator(
                    path, expected_store_key=(name, fingerprint, params_key)
                )
            except FileNotFoundError:
                return None
            except ArtifactError as artifact_error:
                # quarantine: one warning now, silence (a plain miss)
                # on every later get of this key — the write-through on
                # the next insert recreates the artifact
                try:
                    os.replace(path, path + ".corrupt")
                except OSError:
                    pass
                warnings.warn(
                    f"quarantining unreadable model artifact {path}: "
                    f"{artifact_error}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return None
            except OSError as os_error:
                error = os_error
                if attempt < self.read_retries and self.retry_delay_s:
                    _time.sleep(self.retry_delay_s)
        warnings.warn(
            f"ignoring unreadable model artifact {path} after "
            f"{self.read_retries + 1} attempts: {error}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None

    def paths(self) -> "list[str]":
        """Paths of every artifact currently in the store, sorted.

        In-flight (or crash-orphaned) atomic-write temp files are not
        artifacts and are excluded.
        """
        return sorted(
            os.path.join(self.directory, name)
            for name in os.listdir(self.directory)
            if name.endswith(".npz") and ".tmp-" not in name
        )

    def __len__(self) -> int:
        return len(self.paths())

    def clear(self) -> None:
        """Delete every artifact in the store directory."""
        for path in self.paths():
            os.unlink(path)
