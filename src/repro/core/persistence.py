"""Save and load fitted NObLe Wi-Fi models.

The network weights go into an .npz (via :mod:`repro.nn.serialization`)
together with the quantizer state and head layout, so a model trained
offline can be shipped to a device and restored without the training
data — the deployment story behind the paper's energy section.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.localization.noble import ALL_HEADS, NObLeWifi
from repro.quantization.grid import GridQuantizer
from repro.quantization.multires import MultiResolutionQuantizer


def save_noble_wifi(model: NObLeWifi, path: "str | os.PathLike") -> None:
    """Persist a fitted :class:`NObLeWifi` to ``path`` (.npz)."""
    if model.model_ is None:
        raise ValueError("model is not fitted")
    arrays: dict[str, np.ndarray] = {}
    for name, value in model.model_.state_dict().items():
        arrays[f"net.{name}"] = value
    quantizer = model.quantizer_
    fine = quantizer.fine if isinstance(quantizer, MultiResolutionQuantizer) else quantizer
    arrays["fine.classes"] = fine.classes_
    arrays["fine.centroids"] = fine.centroids_
    arrays["fine.counts"] = fine.counts_
    arrays["fine.origin"] = fine.origin_
    if isinstance(quantizer, MultiResolutionQuantizer):
        arrays["coarse.classes"] = quantizer.coarse.classes_
        arrays["coarse.centroids"] = quantizer.coarse.centroids_
        arrays["coarse.counts"] = quantizer.coarse.counts_
        arrays["coarse.origin"] = quantizer.coarse.origin_
    if model.fine_class_building_ is not None:
        arrays["fine_class_building"] = model.fine_class_building_

    transform_name = None
    if model.signal_transform is not None:
        from repro.localization import representations

        for name in ("identity", "powed", "exponential", "binary"):
            if model.signal_transform is representations.get_representation(name):
                transform_name = name
                break
        else:
            raise ValueError(
                "only named signal transforms (repro.localization."
                "representations) can be persisted; got a custom callable"
            )

    meta = {
        "signal_transform": transform_name,
        "tau": model.tau,
        "coarse": model.coarse,
        "hidden": model.hidden,
        "heads": list(model.heads),
        "adjacency_weight": model.adjacency_weight,
        "n_inputs": model.model_[0].in_features,
        "n_outputs": model.model_[-1].out_features,
        "n_buildings": model.n_buildings_,
        "n_floors": model.n_floors_,
        "head_slices": {
            head: [s.start, s.stop] for head, s in model.head_slices_.items()
        },
        "multires": isinstance(quantizer, MultiResolutionQuantizer),
        "representative": fine.representative,
    }
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_noble_wifi(path: "str | os.PathLike") -> NObLeWifi:
    """Restore a :class:`NObLeWifi` saved by :func:`save_noble_wifi`."""
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    meta = json.loads(bytes(arrays.pop("meta_json")).decode("utf-8"))

    model = NObLeWifi(
        tau=meta["tau"],
        coarse=meta["coarse"],
        hidden=meta["hidden"],
        heads=tuple(h for h in ALL_HEADS if h in meta["heads"]),
        adjacency_weight=meta["adjacency_weight"],
        signal_transform=meta.get("signal_transform"),
    )
    model.n_buildings_ = meta["n_buildings"]
    model.n_floors_ = meta["n_floors"]
    model.head_slices_ = {
        head: slice(bounds[0], bounds[1])
        for head, bounds in meta["head_slices"].items()
    }
    model.quantizer_ = _restore_quantizer(meta, arrays)
    model.fine_class_building_ = arrays.get("fine_class_building")
    network = model._build_model(meta["n_inputs"], meta["n_outputs"], rng=0)
    network.load_state_dict(
        {
            name[len("net."):]: value
            for name, value in arrays.items()
            if name.startswith("net.")
        }
    )
    network.eval()
    model.model_ = network
    return model


def _restore_quantizer(meta: dict, arrays: dict):
    fine = _restore_grid(
        meta["tau"], meta["representative"], arrays, prefix="fine"
    )
    if not meta["multires"]:
        return fine
    quantizer = MultiResolutionQuantizer(
        meta["tau"], meta["coarse"], representative=meta["representative"]
    )
    quantizer.fine = fine
    quantizer.coarse = _restore_grid(
        meta["coarse"], meta["representative"], arrays, prefix="coarse"
    )
    return quantizer


def _restore_grid(tau: float, representative: str, arrays: dict, prefix: str):
    grid = GridQuantizer(tau, representative=representative)
    grid.origin_ = arrays[f"{prefix}.origin"]
    grid.classes_ = arrays[f"{prefix}.classes"].astype(int)
    grid.centroids_ = arrays[f"{prefix}.centroids"]
    grid.counts_ = arrays[f"{prefix}.counts"].astype(int)
    grid._cell_to_class = {
        (int(cx), int(cy)): class_id
        for class_id, (cx, cy) in enumerate(grid.classes_)
    }
    return grid
