"""The one-import entry point: :class:`NObLeEstimator`.

Wraps the Wi-Fi localization pipeline (the paper's primary application)
behind a fit/predict interface on raw arrays, so downstream users do
not need to know about datasets, quantizers, or heads:

    >>> from repro import NObLeEstimator
    >>> model = NObLeEstimator(tau=0.5)
    >>> model.fit(signals, coordinates)            # doctest: +SKIP
    >>> positions = model.predict(new_signals)     # doctest: +SKIP

:func:`create_estimator` is the registry-backed sibling: it builds any
serving backend (``"knn"``, ``"noble"``, ``"cnnloc"``, ...) behind the
uniform ``fit(dataset)`` / ``predict_batch(signals)`` protocol of
:mod:`repro.serving`.
"""

from __future__ import annotations

import numpy as np

from repro.data.ujiindoor import FingerprintDataset
from repro.localization.noble import NObLeWifi
from repro.utils.validation import check_2d, check_fitted, check_lengths_match


def create_estimator(name: str, **hyperparams):
    """Instantiate a registered serving estimator by name.

    Thin alias of :func:`repro.serving.create`, re-exported here so the
    core API is the only import downstream users need:

        >>> from repro import create_estimator
        >>> model = create_estimator("knn", k=3)   # doctest: +SKIP
    """
    from repro.serving import create

    return create(name, **hyperparams)


class NObLeEstimator:
    """Structure-aware localization from signal vectors to coordinates.

    Parameters mirror :class:`repro.localization.NObLeWifi`; building and
    floor labels are optional — when omitted the corresponding heads are
    dropped automatically.
    """

    def __init__(
        self,
        tau: float = 0.2,
        coarse: "float | None" = None,
        hidden: int = 128,
        adjacency_weight: float = 0.3,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed=0,
    ):
        self.tau = float(tau)
        self.coarse = coarse
        self.hidden = int(hidden)
        self.adjacency_weight = float(adjacency_weight)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.seed = seed
        self.model_: "NObLeWifi | None" = None

    def fit(
        self,
        signals: np.ndarray,
        coordinates: np.ndarray,
        building: "np.ndarray | None" = None,
        floor: "np.ndarray | None" = None,
    ) -> "NObLeEstimator":
        """Train on raw RSSI-like signal vectors and 2-D coordinates.

        ``signals`` may use the UJIIndoorLoc +100 "not detected"
        convention or plain dBm; both normalize identically.
        """
        signals = check_2d(signals, "signals")
        coordinates = check_2d(coordinates, "coordinates")
        check_lengths_match(signals, coordinates, "signals", "coordinates")
        n = len(signals)
        heads = ["fine"]
        if building is not None:
            heads.append("building")
        if floor is not None:
            heads.append("floor")
        coarse = self.coarse
        if coarse is None:
            # default coarse grid: ~10 fine cells per coarse cell side
            coarse = self.tau * 10
        heads.append("coarse")
        dataset = FingerprintDataset(
            rssi=signals,
            coordinates=coordinates,
            floor=np.zeros(n, dtype=int) if floor is None else np.asarray(floor, int),
            building=(
                np.zeros(n, dtype=int) if building is None else np.asarray(building, int)
            ),
        )
        self.model_ = NObLeWifi(
            tau=self.tau,
            coarse=coarse,
            hidden=self.hidden,
            heads=tuple(heads),
            adjacency_weight=self.adjacency_weight,
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            seed=self.seed,
        )
        self.model_.fit(dataset)
        return self

    def predict(self, signals: np.ndarray) -> np.ndarray:
        """(N, 2) predicted coordinates for raw signal vectors."""
        check_fitted(self, "model_")
        signals = check_2d(signals, "signals")
        dataset = self._wrap(signals)
        return self.model_.predict_coordinates(dataset)

    def predict_detail(self, signals: np.ndarray):
        """Full :class:`repro.localization.WifiPrediction` output."""
        check_fitted(self, "model_")
        return self.model_.predict(self._wrap(check_2d(signals, "signals")))

    def predict_batch(self, signals: np.ndarray):
        """Serving-protocol output (:class:`repro.serving.Prediction`).

        Makes a fitted :class:`NObLeEstimator` a drop-in backend for the
        :class:`repro.serving.MicroBatcher`.
        """
        from repro.serving import Prediction

        detail = self.predict_detail(signals)
        return Prediction(
            coordinates=detail.coordinates,
            building=detail.building,
            floor=detail.floor,
        )

    @property
    def n_classes(self) -> int:
        """Number of populated fine grid classes after fitting."""
        check_fitted(self, "model_")
        quantizer = self.model_.quantizer_
        fine = getattr(quantizer, "fine", quantizer)
        return fine.n_classes

    @staticmethod
    def _wrap(signals: np.ndarray) -> FingerprintDataset:
        from repro.serving import Estimator

        return Estimator._as_dataset(signals)
