"""Experiment configurations for both applications.

Two presets per experiment: ``fast()`` (CI-sized, seconds to minutes)
and ``paper()`` (closer to the paper's scale; minutes on a laptop).
The benchmark harness uses these so every table/figure run is a named,
reproducible configuration.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WifiExperimentConfig:
    """Dataset + model sizing for the Wi-Fi experiments (Tables I/II)."""

    n_spots_per_building: int = 64
    measurements_per_spot: int = 12
    n_aps_per_floor: int = 10
    tau: float = 0.2
    coarse: float = 4.0
    hidden: int = 128
    adjacency_weight: float = 0.3
    epochs: int = 60
    batch_size: int = 64
    lr: float = 1e-3
    test_fraction: float = 0.2
    manifold_components: int = 48
    manifold_neighbors: int = 10
    manifold_max_fit_points: int = 1000
    seed: int = 7

    @classmethod
    def fast(cls) -> "WifiExperimentConfig":
        """CI-sized: ~1 min end to end for the full Table II."""
        return cls(
            n_spots_per_building=24,
            measurements_per_spot=8,
            n_aps_per_floor=6,
            epochs=200,
            batch_size=32,
            manifold_components=24,
            manifold_max_fit_points=400,
        )

    @classmethod
    def paper(cls) -> "WifiExperimentConfig":
        """Closer to UJIIndoorLoc's scale (still CPU-tractable)."""
        return cls(
            n_spots_per_building=110,
            measurements_per_spot=18,
            n_aps_per_floor=14,
            epochs=150,
            manifold_components=64,
            manifold_max_fit_points=1500,
        )


@dataclass(frozen=True)
class IMUExperimentConfig:
    """Dataset + model sizing for the IMU experiments (Table III)."""

    n_walks: int = 2
    references_per_walk: int = 89   # 177 references total, like the paper
    samples_per_segment: int = 768
    n_paths: int = 2000
    max_path_length: int = 50
    downsample: int = 16
    tau: float = 0.4
    projection_dim: int = 16
    hidden: int = 128
    epochs: int = 40
    batch_size: int = 64
    lr: float = 1e-3
    seed: int = 11

    @classmethod
    def fast(cls) -> "IMUExperimentConfig":
        """CI-sized: short walks, few paths, truncated path length."""
        return cls(
            references_per_walk=30,
            samples_per_segment=256,
            n_paths=400,
            max_path_length=12,
            downsample=32,
            epochs=15,
        )

    @classmethod
    def paper(cls) -> "IMUExperimentConfig":
        """The paper's protocol: 177 references, 768 samples/segment,
        6857 paths split ≈ 4389/1096/1372."""
        return cls(n_paths=6857, epochs=50)
