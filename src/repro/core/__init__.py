"""High-level public API: one-call estimators and experiment configs."""

from repro.core.api import NObLeEstimator
from repro.core.config import WifiExperimentConfig, IMUExperimentConfig

__all__ = ["NObLeEstimator", "WifiExperimentConfig", "IMUExperimentConfig"]
