"""Sharded k-nearest-neighbor index with parallel fan-out and exact merge.

:class:`ShardedKNNIndex` partitions a radio map into per-shard
:class:`~repro.manifold.neighbors.KNNIndex` instances (policy pluggable
via :mod:`repro.sharding.partitioner`), queries shards concurrently
through a ``ThreadPoolExecutor`` (numpy's distance kernels release the
GIL), and merges per-shard candidates into the exact global top-k with
``np.argpartition``.

Two properties make it a drop-in for the monolithic index:

**Exactness.**  Every shard returns its local top-``min(k, |shard|)``;
the union of shards is the whole point set, so the merged global top-k
is identical (as a sorted distance vector) to a brute-force scan —
including when ``k`` exceeds the smallest shard.

**Pruning.**  Each shard carries its centroid and covering radius.  By
the triangle inequality no point of shard ``s`` can be closer to query
``q`` than ``lb(q, s) = max(0, ||q - c_s|| - r_s)``, so after scanning
the nearest shard any shard with ``lb >= tau`` (``tau`` = current k-th
best distance) is skipped without changing the result's distances (only
tie membership at exactly ``tau`` can differ, which a full scan leaves
unspecified too).  On clustered maps most queries touch one or two
shards, which is where the throughput win over the monolithic scan
comes from; ``prune=False`` forces the plain all-shard fan-out.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.manifold.neighbors import (
    KNNIndex,
    _drop_self_matches,
    _resolve_query_k,
)
from repro.sharding.partitioner import (
    Partitioner,
    RestoredPartitioner,
    make_partitioner,
)
from repro.utils.validation import check_2d

#: Relative slack applied to pruning bounds so float round-off in the
#: distance expansion can never skip a shard holding a strictly closer
#: point than the current k-th candidate.
_PRUNE_SLACK = 1e-7


class ShardedKNNIndex:
    """Partitioned kNN index over a fixed point set, exact under merge.

    Parameters
    ----------
    points:
        (N, D) array indexed once at construction.  Global indices
        returned by :meth:`query` refer to rows of this array.
    n_shards:
        Target shard count; the actual count can be lower when the
        partitioner produces fewer non-empty cells.  Defaults to 4 for
        spec strings; when ``partitioner`` is an instance it defaults
        to the instance's own ``n_shards``, and a conflicting explicit
        value raises rather than being silently overridden.
    partitioner:
        A :class:`~repro.sharding.partitioner.Partitioner` instance or
        spec string (``"auto"``, ``"labels"``, ``"kmeans"``,
        ``"chunk"``); ``"auto"`` partitions by ``labels`` when given,
        else by k-means cells.
    labels:
        Optional (N,) integer labels (e.g. building/floor) consumed by
        label-based partitioners.
    method:
        Backend for every per-shard :class:`KNNIndex` (``"auto"`` /
        ``"kdtree"`` / ``"brute"``).
    max_workers:
        Thread-pool width for the per-shard fan-out.  Defaults to
        ``min(n_shards, cpu_count)``; ``1`` scans serially (and lets
        pruning tighten its bound shard by shard).
    prune:
        Enable centroid-radius shard pruning (exact; see module docs).
    binner:
        Optional fitted :class:`repro.quantization.FeatureBinner`; every
        per-shard index then stores uint8 codes instead of float points
        (see :class:`KNNIndex`).  Pruning metadata is still computed from
        the float map at construction, and the top-level ``points`` is
        retained for persistence — the 8x memory cut applies to the
        per-shard scan state that worker processes hold resident.
    refine:
        Shortlist factor for the quantized two-stage query.  When a
        binner is set, :meth:`query` scans shards for the top
        ``refine * k`` candidates with the uint8 ADC distance, then
        reranks that shortlist with exact float distances against the
        retained ``points`` — the standard quantized-search refine step
        that recovers near-perfect top-k recall at negligible cost (the
        shortlist is tiny next to the scan).  ``None`` defaults to 4
        when a binner is set and to 0 (disabled) otherwise; pass 0
        explicitly to serve the raw quantized distances.
    """

    #: Default shortlist factor for binned indexes (``refine=None``).
    _DEFAULT_REFINE = 4

    def __init__(
        self,
        points: np.ndarray,
        n_shards: "int | None" = None,
        partitioner="auto",
        labels: "np.ndarray | None" = None,
        method: str = "auto",
        max_workers: "int | None" = None,
        prune: bool = True,
        binner=None,
        refine: "int | None" = None,
    ):
        self.points = check_2d(points, "points")
        if len(self.points) == 0:
            raise ValueError("cannot index an empty point set")
        if isinstance(partitioner, Partitioner):
            if n_shards is not None and int(n_shards) != partitioner.n_shards:
                raise ValueError(
                    f"n_shards={n_shards} conflicts with the partitioner's "
                    f"n_shards={partitioner.n_shards}; pass matching values "
                    f"or omit n_shards"
                )
        elif n_shards is None:
            n_shards = 4
        self.partitioner: Partitioner = make_partitioner(
            partitioner, n_shards, labels_available=labels is not None
        )
        assignment = np.asarray(
            self.partitioner.assign(self.points, labels)
        ).ravel()
        if len(assignment) != len(self.points):
            raise ValueError(
                f"partitioner returned {len(assignment)} assignments for "
                f"{len(self.points)} points"
            )
        # compact shard ids so empty cells vanish and ids are dense
        _uniq, compact = np.unique(assignment, return_inverse=True)
        self.shard_indices_ = [
            np.flatnonzero(compact == s) for s in range(int(compact.max()) + 1)
        ]
        self.binner = binner
        self.refine = _resolve_refine(refine, binner)
        self.shards_ = [
            KNNIndex(self.points[idx], method=method, binner=binner)
            for idx in self.shard_indices_
        ]
        if binner is None:
            # reuse the per-shard copies the KNNIndexes already hold instead
            # of fancy-indexing the full map a second time
            shard_points = [shard.points for shard in self.shards_]
        else:
            # binned shards hold no float points; prune metadata comes from
            # the full-precision map so bounds stay exact
            shard_points = [self.points[idx] for idx in self.shard_indices_]
        self.centroids_ = np.stack([p.mean(axis=0) for p in shard_points])
        self.radii_ = np.array(
            [
                np.sqrt(np.max(np.sum((p - c) ** 2, axis=1)))
                for p, c in zip(shard_points, self.centroids_)
            ]
        )
        if max_workers is None:
            max_workers = min(self.n_shards, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self.prune = bool(prune)
        self._stats_lock = threading.Lock()
        self.points_scanned_ = 0  # cumulative (queries x shard-size) work

    #: Element budget for one query block's temporaries (see query());
    #: class-level so tests can shrink it to exercise multi-block runs.
    _block_elements = int(2e7)

    # ------------------------------------------------------------ persistence
    def shard_state(self) -> "dict[str, np.ndarray]":
        """The fitted partition as flat arrays (for persistence).

        Returns the concatenated per-shard global indices plus shard
        sizes and the centroid/radius pruning metadata — everything
        :meth:`from_shard_state` needs to rebuild the index without
        re-running the partitioner (whose k-means fit dominates
        construction on large maps).  The point set itself is *not*
        included; callers persist it alongside.
        """
        return {
            "shard_concat": np.concatenate(
                [idx.astype(np.int64) for idx in self.shard_indices_]
            ),
            "shard_sizes": np.array(self.shard_sizes, dtype=np.int64),
            "centroids": self.centroids_,
            "radii": self.radii_,
        }

    @classmethod
    def from_shard_state(
        cls,
        points: np.ndarray,
        state: "dict[str, np.ndarray]",
        partitioner_description: str = "restored",
        method: str = "brute",
        max_workers: "int | None" = None,
        prune: bool = True,
        binner=None,
        refine: "int | None" = None,
    ) -> "ShardedKNNIndex":
        """Rebuild an index from :meth:`shard_state`, skipping the partition fit.

        ``points`` must be the original indexed point set (global indices
        in ``state`` refer to its rows); the shard assignment, centroids,
        and covering radii are taken verbatim from ``state`` instead of
        re-running the partitioner, so restoring a 10^6-point k-means
        index costs per-shard index construction only.  The partition is
        validated to cover every point exactly once.  ``max_workers``
        defaults to ``min(n_shards, cpu_count)`` — deliberately not
        persisted, since it is a property of the serving machine.
        """
        self = cls.__new__(cls)
        self.points = check_2d(points, "points")
        if len(self.points) == 0:
            raise ValueError("cannot index an empty point set")
        sizes = np.asarray(state["shard_sizes"], dtype=int).ravel()
        concat = np.asarray(state["shard_concat"], dtype=int).ravel()
        if sizes.sum() != len(self.points) or len(concat) != len(self.points):
            raise ValueError(
                f"shard state covers {len(concat)} assignments in "
                f"{sizes.sum()} shard slots for {len(self.points)} points"
            )
        if (sizes < 1).any():
            raise ValueError("shard state contains an empty shard")
        if len(concat) and (
            concat.min() < 0 or concat.max() >= len(self.points)
        ):
            raise ValueError(
                "shard state references out-of-range point indices"
            )
        bounds = np.cumsum(sizes)
        self.shard_indices_ = [
            concat[start:stop]
            for start, stop in zip(np.concatenate([[0], bounds[:-1]]), bounds)
        ]
        covered = np.zeros(len(self.points), dtype=bool)
        covered[concat] = True
        if not covered.all() or len(np.unique(concat)) != len(concat):
            raise ValueError(
                "shard state is not a partition of the point set "
                "(every point must appear in exactly one shard)"
            )
        self.partitioner = RestoredPartitioner(
            partitioner_description, n_shards=len(self.shard_indices_)
        )
        self.binner = binner
        self.refine = _resolve_refine(refine, binner)
        self.shards_ = [
            KNNIndex(self.points[idx], method=method, binner=binner)
            for idx in self.shard_indices_
        ]
        self.centroids_ = np.asarray(state["centroids"], dtype=float)
        self.radii_ = np.asarray(state["radii"], dtype=float).ravel()
        if len(self.centroids_) != len(self.shards_) or len(self.radii_) != len(
            self.shards_
        ):
            raise ValueError(
                f"shard state carries {len(self.centroids_)} centroids / "
                f"{len(self.radii_)} radii for {len(self.shards_)} shards"
            )
        if max_workers is None:
            max_workers = min(len(self.shards_), os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self.prune = bool(prune)
        self._stats_lock = threading.Lock()
        self.points_scanned_ = 0
        return self

    # ------------------------------------------------------------- properties
    @property
    def n_shards(self) -> int:
        """Number of non-empty shards actually built."""
        return len(self.shards_)

    @property
    def shard_sizes(self) -> "list[int]":
        return [len(idx) for idx in self.shard_indices_]

    def __len__(self) -> int:
        return len(self.points)

    # ------------------------------------------------------------------ query
    def query(
        self,
        queries: np.ndarray,
        k: int,
        exclude_self: bool = False,
        on_excess: str = "raise",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact global (distances, indices), each (M, k), sorted by distance.

        Same contract as :meth:`KNNIndex.query`, including the
        ``on_excess`` clamp-or-raise policy against the **global** point
        count (per-shard clamping is internal and lossless).
        ``exclude_self`` assumes row ``i`` of ``queries`` is point ``i``
        of the indexed set and removes that exact entry by identity, so
        it stays correct even when duplicate points straddle shards.
        """
        queries, eff_k = _resolve_query_k(
            queries,
            index_dim=self.points.shape[1],
            index_size=len(self.points),
            k=k,
            exclude_self=exclude_self,
            on_excess=on_excess,
        )
        out_k = eff_k - 1 if exclude_self else eff_k
        if len(queries) == 0:
            return np.empty((0, out_k)), np.empty((0, out_k), dtype=int)
        # quantized two-stage plan: scan shards for a refine*k shortlist
        # with the uint8 ADC distance, then rerank it exactly below
        refining = self.refine > 0 and self.binner is not None
        scan_k = (
            min(eff_k * self.refine, len(self.points)) if refining else eff_k
        )
        # bound the per-block temporaries — qc/lb are (block, S) and the
        # candidate concat is (block, <= k*S) — so a campus-scale self-kNN
        # (10^6 queries in one call) never materializes gigabytes at once
        block = max(1, self._block_elements // max(self.n_shards * scan_k, 1))
        parts = []
        for start in range(0, len(queries), block):
            chunk = queries[start : start + block]
            if self.prune and self.n_shards > 1:
                scanned = self._query_pruned(chunk, scan_k)
            else:
                scanned = self._query_all(chunk, scan_k)
            if refining:
                scanned = self._exact_rerank(chunk, scanned[1], eff_k)
            parts.append(scanned)
        if len(parts) == 1:
            distances, indices = parts[0]
        else:
            distances = np.concatenate([d for d, _ in parts])
            indices = np.concatenate([i for _, i in parts])
        if exclude_self:
            # identity-based drop (shared with the monolithic index), so a
            # zero-distance duplicate in another shard survives and the
            # query's own row never leaks into its neighbor list
            distances, indices = _drop_self_matches(
                distances, indices, eff_k - 1
            )
        return distances, indices

    def scan_shards(
        self, shard_ids, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Local top-k over a subset of shards, mapped to global indices.

        The per-worker entrypoint of the multi-process serving tier
        (:mod:`repro.serving.workers`): each worker process restores a
        copy of the index and scans only the shards it owns; the parent
        merges the per-worker candidates with the same exact
        ``argpartition`` top-k the in-process fan-out uses, so the union
        over a partition of the shard ids equals :meth:`query` with
        pruning disabled.  Returns ``(distances, indices)`` of shape
        ``(M, min(k, points in the listed shards))``, rows sorted
        ascending by distance; ``indices`` are global (rows of
        ``self.points``).  Scans the listed shards serially — worker
        *processes* are the parallelism axis here.

        When a binner is set, the returned distances are the raw uint8
        ADC scan distances — the :attr:`refine` rerank deliberately does
        not run here, since the multi-process parent merges candidates
        across workers and owns any final refinement.
        """
        queries = check_2d(np.asarray(queries, dtype=float), "queries")
        if queries.shape[1] != self.points.shape[1]:
            raise ValueError(
                f"queries have {queries.shape[1]} features, the index has "
                f"{self.points.shape[1]}"
            )
        if int(k) < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        shard_ids = [int(s) for s in shard_ids]
        if not shard_ids:
            raise ValueError("scan_shards requires at least one shard id")
        bad = [s for s in shard_ids if not 0 <= s < self.n_shards]
        if bad or len(set(shard_ids)) != len(shard_ids):
            raise ValueError(
                f"shard ids must be unique and in [0, {self.n_shards}), "
                f"got {shard_ids}"
            )
        eff_k = min(int(k), sum(len(self.shards_[s]) for s in shard_ids))
        results = [self._scan_shard(s, queries, eff_k) for s in shard_ids]
        cand_d = np.concatenate([d for d, _ in results], axis=1)
        cand_i = np.concatenate([i for _, i in results], axis=1)
        return _global_top_k(cand_d, cand_i, eff_k)

    # ------------------------------------------------------------ query plans
    def _query_all(self, queries: np.ndarray, eff_k: int):
        """Fan out every query to every shard, then merge exactly."""
        results = self._map_shards(
            lambda s: self._scan_shard(s, queries, eff_k), range(self.n_shards)
        )
        cand_d = np.concatenate([d for d, _ in results], axis=1)
        cand_i = np.concatenate([i for _, i in results], axis=1)
        return _global_top_k(cand_d, cand_i, eff_k)

    def _query_pruned(self, queries: np.ndarray, eff_k: int):
        """Two-phase scan: nearest shard first, then only unpruned shards."""
        m = len(queries)
        qc = self._centroid_distances(queries)  # (M, S) exact distances
        nearest = np.argmin(qc, axis=1)
        cand_d = np.full((m, eff_k), np.inf)
        cand_i = np.full((m, eff_k), -1, dtype=int)

        groups = [
            (s, np.flatnonzero(nearest == s)) for s in range(self.n_shards)
        ]
        groups = [(s, rows) for s, rows in groups if len(rows)]
        first = self._map_shards(
            lambda job: self._scan_shard(job[0], queries[job[1]], eff_k), groups
        )
        for (s, rows), (d, gi) in zip(groups, first):
            cand_d[rows, : d.shape[1]] = d
            cand_i[rows, : d.shape[1]] = gi
        tau = cand_d[:, eff_k - 1]  # inf while fewer than eff_k candidates

        # triangle-inequality lower bound per (query, shard), with float slack
        lb = np.maximum(qc - self.radii_[None, :], 0.0)
        lb -= _PRUNE_SLACK * (qc + self.radii_[None, :] + 1.0)
        pending = lb < tau[:, None]
        pending[np.arange(m), nearest] = False

        if self.max_workers > 1:
            jobs = [
                (s, np.flatnonzero(pending[:, s])) for s in range(self.n_shards)
            ]
            jobs = [(s, rows) for s, rows in jobs if len(rows)]
            scans = self._map_shards(
                lambda job: self._scan_shard(job[0], queries[job[1]], eff_k),
                jobs,
            )
            for (s, rows), (d, gi) in zip(jobs, scans):
                _merge_rows(cand_d, cand_i, rows, d, gi, eff_k)
        else:
            # serial scan, cheapest-bound shards first, re-tightening tau so
            # later shards prune against the best candidates found so far
            for s in np.argsort(lb.min(axis=0)):
                rows = np.flatnonzero(pending[:, s] & (lb[:, s] < tau))
                if not rows.size:
                    continue
                d, gi = self._scan_shard(s, queries[rows], eff_k)
                _merge_rows(cand_d, cand_i, rows, d, gi, eff_k)
                tau[rows] = cand_d[rows, eff_k - 1]
        return cand_d, cand_i

    # -------------------------------------------------------------- internals
    def _exact_rerank(self, queries: np.ndarray, cand_i: np.ndarray, eff_k: int):
        """Rerank a quantized shortlist with exact float distances.

        ``cand_i`` is the (M, scan_k) shortlist from the uint8 ADC scan;
        rows may carry ``-1`` padding when the scan could not fill
        ``scan_k`` slots (kept at infinite distance so real candidates
        always win).  Processes row blocks so the (rows, scan_k, D)
        gather stays within the temporary budget.
        """
        m, scan_k = cand_i.shape
        keep = min(eff_k, scan_k)
        dim = self.points.shape[1]
        out_d = np.empty((m, keep))
        out_i = np.empty((m, keep), dtype=cand_i.dtype)
        rows = max(1, self._block_elements // max(scan_k * dim, 1))
        for start in range(0, m, rows):
            ci = cand_i[start : start + rows]
            missing = ci < 0
            gathered = self.points[np.where(missing, 0, ci)]
            diff = gathered - queries[start : start + rows, None, :]
            d = np.sqrt(np.einsum("mkd,mkd->mk", diff, diff))
            if missing.any():
                d[missing] = np.inf
            d_top, i_top = _global_top_k(d, ci, keep)
            out_d[start : start + rows] = d_top
            out_i[start : start + rows] = i_top
        return out_d, out_i

    def _scan_shard(self, s: int, queries: np.ndarray, eff_k: int):
        """One shard's local top-k mapped to global indices."""
        distances, local = self.shards_[s].query(
            queries, k=eff_k, on_excess="clamp"
        )
        with self._stats_lock:
            self.points_scanned_ += len(queries) * len(self.shards_[s])
        return distances, self.shard_indices_[s][local]

    def reset_stats(self) -> None:
        """Zero the cumulative scan-work counter (used by shard-bench)."""
        with self._stats_lock:
            self.points_scanned_ = 0

    def _map_shards(self, fn, jobs) -> list:
        """Run ``fn`` over jobs, threaded when the pool allows it."""
        jobs = list(jobs)
        workers = min(self.max_workers, len(jobs))
        if workers <= 1:
            return [fn(job) for job in jobs]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, jobs))

    def _centroid_distances(self, queries: np.ndarray) -> np.ndarray:
        d2 = (
            np.sum(queries**2, axis=1)[:, None]
            - 2.0 * queries @ self.centroids_.T
            + np.sum(self.centroids_**2, axis=1)
        )
        return np.sqrt(np.maximum(d2, 0.0))


def _resolve_refine(refine: "int | None", binner) -> int:
    """Effective shortlist factor: default 4 for binned indexes, else 0."""
    if refine is None:
        return ShardedKNNIndex._DEFAULT_REFINE if binner is not None else 0
    refine = int(refine)
    if refine < 0:
        raise ValueError(f"refine must be >= 0, got {refine}")
    return refine


def _global_top_k(cand_d: np.ndarray, cand_i: np.ndarray, k: int):
    """Exact top-k over concatenated per-shard candidates, sorted rows."""
    if cand_d.shape[1] > k:
        part = np.argpartition(cand_d, kth=k - 1, axis=1)[:, :k]
        cand_d = np.take_along_axis(cand_d, part, axis=1)
        cand_i = np.take_along_axis(cand_i, part, axis=1)
    order = np.argsort(cand_d, axis=1, kind="stable")
    return (
        np.take_along_axis(cand_d, order, axis=1),
        np.take_along_axis(cand_i, order, axis=1),
    )


def _merge_rows(cand_d, cand_i, rows, d, gi, eff_k):
    """Fold one shard's candidates into the running top-k of ``rows``."""
    merged_d = np.concatenate([cand_d[rows], d], axis=1)
    merged_i = np.concatenate([cand_i[rows], gi], axis=1)
    merged_d, merged_i = _global_top_k(merged_d, merged_i, eff_k)
    cand_d[rows] = merged_d
    cand_i[rows] = merged_i
