"""repro.sharding — partitioned radio-map indexing for campus-scale maps.

The monolithic :class:`~repro.manifold.neighbors.KNNIndex` scans every
fingerprint per query, which caps serving far below the >10^6-point maps
the roadmap targets.  This package splits the map once and bounds the
per-query work:

``partitioner``
    :class:`Partitioner` protocol with label (building/floor), k-means,
    and contiguous-chunk policies; :func:`make_partitioner` resolves
    spec strings.
``index``
    :class:`ShardedKNNIndex` — per-shard ``KNNIndex`` fan-out via a
    ``ThreadPoolExecutor``, exact global top-k merge with
    ``np.argpartition``, and triangle-inequality shard pruning.
``fanout``
    :func:`fanout_map` — query-side batch fan-out for backends without
    an index to shard (exact for row-wise models).
``bench``
    The ``shard-bench`` engine behind ``python -m repro.cli shard-bench``.

Entry points elsewhere: ``manifold.neighbors.kneighbors(..., shards=N)``,
``KNNFingerprinting(shards=N)``, and the ``shards=``/``partitioner=``
hyperparameters on the ``knn``/``noble``/``knn-regressor``/``forest``
serving backends.
"""

from repro.sharding.fanout import fanout_map, fanout_over_slices, fanout_slices
from repro.sharding.index import ShardedKNNIndex
from repro.sharding.partitioner import (
    ChunkPartitioner,
    KMeansPartitioner,
    LabelPartitioner,
    Partitioner,
    RestoredPartitioner,
    make_partitioner,
)

__all__ = [
    "ShardedKNNIndex",
    "Partitioner",
    "ChunkPartitioner",
    "KMeansPartitioner",
    "LabelPartitioner",
    "RestoredPartitioner",
    "make_partitioner",
    "fanout_map",
    "fanout_over_slices",
    "fanout_slices",
]
