"""The shard-bench engine: sharded vs monolithic query throughput.

Synthesizes a scaled UJIIndoorLoc-shaped workload — reference-spot
blobs in normalized RSSI space, each spot hearing a sparse subset of
WAPs — then serves an identical batched query stream through the
monolithic :class:`~repro.manifold.neighbors.KNNIndex` and a
:class:`~repro.sharding.ShardedKNNIndex`, asserting distance parity on
every batch.  ``python -m repro.cli shard-bench`` (or
``make shard-bench``) prints the report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.manifold.neighbors import KNNIndex
from repro.sharding.index import ShardedKNNIndex


def synthetic_radio_map(
    n_points: int,
    n_aps: int = 32,
    n_spots: int = 96,
    heard_fraction: float = 0.25,
    noise: float = 0.03,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """(points, spot_labels) of a UJIIndoorLoc-like normalized radio map.

    Mirrors the structure the real dataset shows after normalization:
    measurements cluster around reference spots, each spot hears only a
    sparse subset of WAPs (the rest sit at the "not detected" zero), and
    repeated measurements jitter by shadowing noise.
    """
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    rng = np.random.default_rng(seed)
    heard = rng.random((n_spots, n_aps)) < heard_fraction
    # every spot hears at least one WAP, like any surveyable location
    silent = ~heard.any(axis=1)
    heard[silent, rng.integers(0, n_aps, size=silent.sum())] = True
    centers = heard * rng.uniform(0.2, 1.0, size=(n_spots, n_aps))
    labels = rng.integers(0, n_spots, size=n_points)
    points = centers[labels] + noise * rng.standard_normal((n_points, n_aps))
    return np.clip(points, 0.0, 1.0), labels


@dataclass
class ShardBenchResult:
    """Timings and workload shape reported by :func:`run_shard_bench`."""

    n_points: int
    n_aps: int
    n_queries: int
    n_shards: int
    k: int
    batch_size: int
    partitioner: str
    build_mono_s: float
    build_sharded_s: float
    query_mono_s: float
    query_sharded_s: float
    scanned_fraction: float  # sharded scan work / full-scan work

    @property
    def speedup(self) -> float:
        return self.query_mono_s / max(self.query_sharded_s, 1e-12)

    @property
    def mono_qps(self) -> float:
        return self.n_queries / max(self.query_mono_s, 1e-12)

    @property
    def sharded_qps(self) -> float:
        return self.n_queries / max(self.query_sharded_s, 1e-12)

    def report(self) -> str:
        lines = [
            f"radio map        : {self.n_points} fingerprints x "
            f"{self.n_aps} WAPs, {self.n_queries} queries "
            f"(batch={self.batch_size}, k={self.k})",
            f"shards           : {self.n_shards} via {self.partitioner}",
            f"build monolithic : {self.build_mono_s * 1000:9.1f} ms",
            f"build sharded    : {self.build_sharded_s * 1000:9.1f} ms",
            f"query monolithic : {self.query_mono_s:9.4f} s "
            f"({self.mono_qps:10.0f} req/s)",
            f"query sharded    : {self.query_sharded_s:9.4f} s "
            f"({self.sharded_qps:10.0f} req/s)",
            f"sharding speedup : {self.speedup:9.1f}x "
            f"(scanned {self.scanned_fraction * 100:.1f}% of the map "
            f"per query on average)",
        ]
        return "\n".join(lines)


def run_shard_bench(
    n_points: int = 200_000,
    n_aps: int = 32,
    n_queries: int = 512,
    n_shards: int = 96,
    n_spots: int = 96,
    k: int = 5,
    batch_size: int = 128,
    partitioner: str = "kmeans",
    method: str = "brute",
    max_workers: "int | None" = None,
    seed: int = 0,
) -> ShardBenchResult:
    """Benchmark sharded vs monolithic top-k on one synthetic workload.

    Every batch's sharded distances are checked against the monolithic
    result; a mismatch raises ``AssertionError`` (the benchmark must
    never trade exactness for throughput silently).
    """
    if n_points < k:
        raise ValueError(
            f"n_points={n_points} must be >= k={k} to benchmark a top-k query"
        )
    points, labels = synthetic_radio_map(
        n_points, n_aps=n_aps, n_spots=n_spots, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    # queries follow the map's spot structure, like live scans would
    query_pool, _ = synthetic_radio_map(
        max(n_queries, 1), n_aps=n_aps, n_spots=n_spots, seed=seed + 2
    )
    queries = query_pool[rng.permutation(len(query_pool))[:n_queries]]

    tic = time.perf_counter()
    mono = KNNIndex(points, method=method)
    build_mono = time.perf_counter() - tic

    tic = time.perf_counter()
    sharded = ShardedKNNIndex(
        points,
        n_shards=n_shards,
        partitioner=partitioner,
        labels=labels if partitioner == "labels" else None,
        method=method,
        max_workers=max_workers,
    )
    build_sharded = time.perf_counter() - tic

    batches = [
        queries[start : start + batch_size]
        for start in range(0, len(queries), batch_size)
    ]
    # warm both paths once so first-touch costs don't skew either side
    mono.query(queries[:2], k=k)
    sharded.query(queries[:2], k=k)
    sharded.reset_stats()

    tic = time.perf_counter()
    mono_out = [mono.query(batch, k=k) for batch in batches]
    query_mono = time.perf_counter() - tic

    tic = time.perf_counter()
    sharded_out = [sharded.query(batch, k=k) for batch in batches]
    query_sharded = time.perf_counter() - tic

    for (d_mono, _), (d_sharded, _) in zip(mono_out, sharded_out):
        np.testing.assert_allclose(
            d_sharded, d_mono, rtol=1e-9, atol=1e-9,
            err_msg="sharded distances diverge from the monolithic scan",
        )

    return ShardBenchResult(
        n_points=n_points,
        n_aps=n_aps,
        n_queries=len(queries),
        n_shards=sharded.n_shards,
        k=k,
        batch_size=batch_size,
        partitioner=sharded.partitioner.describe(),
        build_mono_s=build_mono,
        build_sharded_s=build_sharded,
        query_mono_s=query_mono,
        query_sharded_s=query_sharded,
        scanned_fraction=(
            sharded.points_scanned_ / (len(queries) * len(points))
        ),
    )
