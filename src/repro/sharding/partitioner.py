"""Radio-map partitioners: decide which shard owns each fingerprint.

A :class:`Partitioner` maps an (N, D) point set (and optionally per-point
integer labels such as building/floor ids) to shard assignments.  The
:class:`~repro.sharding.index.ShardedKNNIndex` is agnostic to the policy;
anything implementing ``assign`` plugs in:

``LabelPartitioner``
    Groups points that share a label (building/floor in UJIIndoorLoc
    maps) into the same shard — the natural split for surveyed campuses,
    where a scan's strongest WAPs confine it to one building anyway.
``KMeansPartitioner``
    Lloyd's k-means over (a subsample of) the points, for unlabeled
    maps.  Clustered shards make the index's centroid-radius pruning
    effective: most queries only ever touch one or two shards.
``ChunkPartitioner``
    Balanced contiguous chunks.  No geometry — the worst case for
    pruning, but perfectly balanced; useful as a baseline and in tests.

Every partitioner exposes :meth:`~Partitioner.describe`, a canonical
string that the serving layer folds into :class:`repro.serving.ModelCache`
keys so differing partitioning policies never share a cache entry.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d


class Partitioner:
    """Base partitioner protocol.

    Subclasses implement :meth:`assign`, returning one integer shard id
    per point.  Ids need not be dense — the sharded index compacts them
    and drops empty shards.
    """

    name = "base"

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)

    def assign(
        self, points: np.ndarray, labels: "np.ndarray | None" = None
    ) -> np.ndarray:
        """(N,) integer shard id per point."""
        raise NotImplementedError

    def describe(self) -> str:
        """Canonical ``name(key=value, ...)`` string for cache keying."""
        return f"{self.name}(n_shards={self.n_shards})"

    def __repr__(self) -> str:
        return self.describe()


class ChunkPartitioner(Partitioner):
    """Balanced contiguous chunks in input order (no geometry)."""

    name = "chunk"

    def assign(self, points, labels=None):
        points = check_2d(points, "points")
        n = len(points)
        shards = min(self.n_shards, max(n, 1))
        # same balanced sizes as np.array_split: first n % shards chunks
        # get one extra point
        return (np.arange(n) * shards) // max(n, 1)


class LabelPartitioner(Partitioner):
    """Group points sharing an integer label (e.g. building/floor id).

    Unique labels are assigned to shards round-robin in sorted order, so
    a map with more distinct labels than shards still yields at most
    ``n_shards`` shards while never splitting one label across two.
    """

    name = "labels"

    def assign(self, points, labels=None):
        points = check_2d(points, "points")
        if labels is None:
            raise ValueError(
                "LabelPartitioner requires per-point labels; use "
                "KMeansPartitioner for unlabeled maps"
            )
        labels = np.asarray(labels).ravel()
        if len(labels) != len(points):
            raise ValueError(
                f"labels length {len(labels)} != points length {len(points)}"
            )
        _uniq, inverse = np.unique(labels, return_inverse=True)
        return inverse % self.n_shards


class KMeansPartitioner(Partitioner):
    """Lloyd's k-means cells for unlabeled radio maps.

    Centroids are fitted on a bounded random subsample (``sample_size``)
    so partitioning a 10^6-point map stays cheap; every point is then
    assigned to its nearest centroid.  Deterministic given ``seed``.
    """

    name = "kmeans"

    def __init__(
        self,
        n_shards: int,
        n_iter: int = 25,
        sample_size: int = 16384,
        seed: int = 0,
    ):
        super().__init__(n_shards)
        if n_iter < 1:
            raise ValueError(f"n_iter must be >= 1, got {n_iter}")
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        self.n_iter = int(n_iter)
        self.sample_size = int(sample_size)
        self.seed = int(seed)

    def describe(self) -> str:
        return (
            f"{self.name}(n_shards={self.n_shards}, n_iter={self.n_iter}, "
            f"sample_size={self.sample_size}, seed={self.seed})"
        )

    def assign(self, points, labels=None):
        points = check_2d(points, "points")
        n = len(points)
        k = min(self.n_shards, n)
        if k <= 1:
            return np.zeros(n, dtype=int)
        rng = np.random.default_rng(self.seed)
        if n > self.sample_size:
            sample = points[rng.choice(n, self.sample_size, replace=False)]
        else:
            sample = points
        centroids = _kmeans_pp_init(sample, k, rng)
        for _ in range(self.n_iter):
            nearest = _nearest_centroid(sample, centroids)
            updated = centroids.copy()
            for cell in range(k):
                members = sample[nearest == cell]
                if len(members):
                    updated[cell] = members.mean(axis=0)
            if np.array_equal(updated, centroids):
                break
            centroids = updated
        return _nearest_centroid(points, centroids)


def _kmeans_pp_init(sample: np.ndarray, k: int, rng) -> np.ndarray:
    """k-means++ seeding: spread initial centroids D^2-proportionally.

    Random init routinely drops two seeds into one dense cell, leaving
    another cell unowned and merged into a far shard — which inflates
    shard radii and defeats the index's centroid-radius pruning.
    """
    centroids = np.empty((k, sample.shape[1]))
    centroids[0] = sample[rng.integers(len(sample))]
    d2 = np.sum((sample - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total <= 0.0:  # all remaining points coincide with a centroid
            centroids[i:] = centroids[0]
            break
        centroids[i] = sample[rng.choice(len(sample), p=d2 / total)]
        d2 = np.minimum(d2, np.sum((sample - centroids[i]) ** 2, axis=1))
    return centroids


def _nearest_centroid(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of each point's nearest centroid (squared-distance argmin).

    Computed blockwise so the (block, n_centroids) distance matrix stays
    bounded — assigning a 10^6-point map to 256 cells must not
    materialize gigabytes of temporaries.
    """
    sq_centroids = np.sum(centroids**2, axis=1)
    nearest = np.empty(len(points), dtype=int)
    block = max(1, int(2e7) // max(len(centroids), 1))
    for start in range(0, len(points), block):
        p = points[start : start + block]
        d2 = -2.0 * p @ centroids.T + sq_centroids
        nearest[start : start + len(p)] = np.argmin(d2, axis=1)
    return nearest


class RestoredPartitioner(Partitioner):
    """Placeholder policy carried by a deserialized sharded index.

    A persisted :class:`~repro.sharding.index.ShardedKNNIndex` ships its
    finished shard assignment (the whole point of the artifact is to
    skip the partition fit), so the restored index has no live policy to
    re-run — only the canonical ``describe()`` string recorded at save
    time, which must survive verbatim so cache keys stay stable across
    a save/load round trip.  Calling :meth:`assign` is a contract error.
    """

    name = "restored"

    def __init__(self, description: str, n_shards: int):
        super().__init__(n_shards)
        self._description = str(description)

    def describe(self) -> str:
        return self._description

    def assign(self, points, labels=None):
        raise RuntimeError(
            "a restored sharded index carries a finished shard assignment "
            f"(policy {self._description!r}) and cannot re-partition; "
            "rebuild the index from data to change the partitioning"
        )


#: String specs accepted by :func:`make_partitioner`.
_SPECS = {
    "chunk": ChunkPartitioner,
    "labels": LabelPartitioner,
    "kmeans": KMeansPartitioner,
}


def make_partitioner(
    spec,
    n_shards: int,
    labels_available: bool = False,
    seed: int = 0,
) -> Partitioner:
    """Resolve a partitioner spec into a :class:`Partitioner` instance.

    ``spec`` may be an instance (returned unchanged), one of the strings
    ``"chunk"`` / ``"labels"`` / ``"kmeans"``, or ``"auto"``/``None``,
    which picks ``"labels"`` when per-point labels are available and
    ``"kmeans"`` otherwise.
    """
    if isinstance(spec, Partitioner):
        return spec
    if spec is None or spec == "auto":
        spec = "labels" if labels_available else "kmeans"
    try:
        cls = _SPECS[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown partitioner {spec!r}; expected a Partitioner instance, "
            f"'auto', or one of {', '.join(sorted(_SPECS))}"
        ) from None
    if cls is KMeansPartitioner:
        return cls(n_shards, seed=seed)
    return cls(n_shards)
