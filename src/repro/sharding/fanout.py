"""Query-side fan-out: run a row-wise function over batch chunks in parallel.

Index sharding (:mod:`repro.sharding.index`) partitions the *map*;
this module partitions the *batch*.  It is the exactness-preserving way
to parallelize backends that have no kNN index to shard (the NObLe
network's forward pass, random-forest regression): every model in the
serving registry predicts row-independently, so splitting a batch into
chunks, predicting each on a pool thread (numpy kernels release the
GIL), and concatenating in order is bit-for-bit equal to one call.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor


def fanout_slices(n: int, shards: int) -> "list[slice]":
    """Split ``range(n)`` into at most ``shards`` balanced, ordered slices."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, n) or 1
    bounds = [(n * s) // shards for s in range(shards + 1)]
    return [slice(lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:])]


def fanout_over_slices(
    fn, n: int, shards: int, max_workers: "int | None" = None
) -> list:
    """Call ``fn(sl)`` for each of ``fanout_slices(n, shards)``, in order.

    Slices are processed on a thread pool (``max_workers`` defaults to
    ``min(slice count, cpu count)`` — the work is CPU-bound numpy, so
    more threads than cores is pure context-switch overhead); results
    come back in slice order regardless of completion order.
    """
    slices = fanout_slices(n, shards)
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    workers = min(max_workers, len(slices))
    if workers <= 1:
        return [fn(sl) for sl in slices]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, slices))


def fanout_map(fn, rows, shards: int, max_workers: "int | None" = None) -> list:
    """Apply ``fn`` to ``shards`` row-chunks of ``rows``, results in order.

    ``fn`` receives one contiguous chunk (``rows[sl]``) per call, so
    ``concatenate(fanout_map(f, x, s))`` equals ``f(x)`` for any
    row-wise ``f``.
    """
    return fanout_over_slices(
        lambda sl: fn(rows[sl]), len(rows), shards, max_workers=max_workers
    )
