"""Manifold-learning substrate: kNN search, geodesic graphs, MDS, Isomap, LLE.

These are the *neighbor-aware* methods the paper contrasts NObLe against
(Table II's "Isomap Deep Regression" and "LLE Deep Regression"), plus the
classical-MDS machinery used in the paper's §III-C equivalence argument.
"""

from repro.manifold.neighbors import KNNIndex, kneighbors, epsilon_neighbors
from repro.manifold.graph import neighborhood_graph, geodesic_distances, is_connected
from repro.manifold.mds import classical_mds, stress
from repro.manifold.isomap import Isomap
from repro.manifold.lle import LocallyLinearEmbedding

__all__ = [
    "KNNIndex",
    "kneighbors",
    "epsilon_neighbors",
    "neighborhood_graph",
    "geodesic_distances",
    "is_connected",
    "classical_mds",
    "stress",
    "Isomap",
    "LocallyLinearEmbedding",
]
