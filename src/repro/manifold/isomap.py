"""Isomap (Tenenbaum, de Silva & Langford, 2000).

Template the paper describes: (1) kNN neighborhood graph, (2) geodesic
distances by shortest paths, (3) classical MDS on the geodesic matrix.
Out-of-sample points are embedded with the Landmark-MDS/Nyström formula,
which is what lets the Table II "Isomap Deep Regression" baseline embed
test RSSI vectors.
"""

from __future__ import annotations

import numpy as np

from repro.manifold.graph import (
    geodesic_distances,
    largest_component,
    neighborhood_graph,
)
from repro.manifold.mds import classical_mds
from repro.manifold.neighbors import KNNIndex
from repro.utils.validation import check_2d, check_fitted


class Isomap:
    """Isometric feature mapping with Nyström out-of-sample extension.

    Parameters
    ----------
    n_components:
        Embedding dimension (the paper tunes d = 400 for Table II).
    n_neighbors:
        k for the neighborhood graph.
    on_disconnected:
        ``"largest"`` silently restricts to the largest connected
        component (recording ``kept_indices_``); ``"error"`` raises.
    """

    def __init__(
        self,
        n_components: int = 2,
        n_neighbors: int = 10,
        on_disconnected: str = "largest",
    ):
        if n_components <= 0:
            raise ValueError(f"n_components must be positive, got {n_components}")
        if n_neighbors <= 0:
            raise ValueError(f"n_neighbors must be positive, got {n_neighbors}")
        if on_disconnected not in ("largest", "error"):
            raise ValueError(f"unknown on_disconnected policy {on_disconnected!r}")
        self.n_components = int(n_components)
        self.n_neighbors = int(n_neighbors)
        self.on_disconnected = on_disconnected
        self.embedding_: np.ndarray | None = None
        self.kept_indices_: np.ndarray | None = None
        self._train_points: np.ndarray | None = None
        self._geodesics: np.ndarray | None = None
        self._index: KNNIndex | None = None
        self._mean_sq_geo: np.ndarray | None = None

    def fit(self, points: np.ndarray) -> "Isomap":
        points = check_2d(points, "points")
        if len(points) <= self.n_neighbors:
            raise ValueError(
                f"need more than n_neighbors={self.n_neighbors} points, got {len(points)}"
            )
        graph = neighborhood_graph(points, k=self.n_neighbors)
        geo = geodesic_distances(graph)
        if np.isinf(geo).any():
            if self.on_disconnected == "error":
                raise ValueError(
                    "neighborhood graph is disconnected; raise n_neighbors or use "
                    "on_disconnected='largest'"
                )
            keep = largest_component(graph)
            points = points[keep]
            geo = geo[np.ix_(keep, keep)]
            self.kept_indices_ = keep
        else:
            self.kept_indices_ = np.arange(len(points))
        n_components = min(self.n_components, len(points))
        embedding, eigenvalues = classical_mds(geo, n_components=n_components)
        if n_components < self.n_components:
            pad = np.zeros((len(points), self.n_components - n_components))
            embedding = np.hstack([embedding, pad])
            eigenvalues = np.concatenate(
                [eigenvalues, np.zeros(self.n_components - n_components)]
            )
        self.embedding_ = embedding
        self.eigenvalues_ = eigenvalues
        self._train_points = points
        self._geodesics = geo
        self._index = KNNIndex(points, method="brute")
        self._mean_sq_geo = np.mean(geo**2, axis=1)
        return self

    def fit_transform(self, points: np.ndarray) -> np.ndarray:
        return self.fit(points).embedding_

    def transform(self, queries: np.ndarray) -> np.ndarray:
        """Nyström out-of-sample embedding.

        A query's geodesic distance to every training point is
        approximated through its nearest training neighbor:
        ``d(q, i) ≈ ||q - nn(q)|| + geo(nn(q), i)``; the point is then
        placed with the Landmark-MDS projection formula.
        """
        check_fitted(self, "embedding_")
        queries = check_2d(queries, "queries")
        dist_nn, idx_nn = self._index.query(queries, k=1)
        geo_to_all = dist_nn + self._geodesics[idx_nn[:, 0]]
        # Landmark MDS: z = 1/2 * L^+ (mean_sq_row - d^2), with L^+ rows
        # = eigvec / sqrt(eigval)
        positive = self.eigenvalues_ > 1e-12
        inv_scale = np.zeros_like(self.eigenvalues_)
        inv_scale[positive] = 1.0 / np.sqrt(self.eigenvalues_[positive])
        pseudo = self.embedding_ * inv_scale**2  # (n, d): eigvec/sqrt(eigval) scaled
        centered = self._mean_sq_geo[None, :] - geo_to_all**2
        return 0.5 * centered @ pseudo


def residual_variance(geodesics: np.ndarray, embedding: np.ndarray) -> float:
    """1 - R^2 between geodesic and embedded distances (Isomap's own
    goodness-of-fit measure; ~0 when the embedding is faithful)."""
    from repro.manifold.mds import pairwise_euclidean

    emb_d = pairwise_euclidean(embedding)
    triu = np.triu_indices(len(geodesics), k=1)
    g = geodesics[triu]
    e = emb_d[triu]
    if np.std(g) == 0 or np.std(e) == 0:
        return 1.0
    r = np.corrcoef(g, e)[0, 1]
    return float(1.0 - r**2)
