"""Cache-blocked brute-force neighbor kernels.

The monolithic brute scan materializes the full ``(M, N)`` distance
matrix, which thrashes DRAM on campus-scale maps.  The kernels here
restructure it after sklearn's ``_pairwise_distances_reduction.pyx``:
the ``||q - p||^2 = |q|^2 - 2 q.p^T + |p|^2`` expansion is evaluated in
query-block x point-chunk tiles sized from the L2 cache, and each tile
is immediately reduced — a fused ``argpartition`` top-k merge for
:func:`chunked_argkmin`, an in-radius mask for
:func:`chunked_radius_neighbors` — so no ``(M, N)`` buffer ever exists.

``points`` may be a plain ``(N, D)`` array or any *chunk source*: an
object exposing ``shape``, ``dtype``, and ``chunk(start, stop)``
returning a float array of rows ``[start, stop)``.  That duck-typed seam
is how quantized uint8 radio maps (:class:`repro.quantization.BinnedPoints`)
stream dequantized tiles through the same kernel without ever holding a
float copy of the whole map.
"""

from __future__ import annotations

import os

import numpy as np

from repro.utils.validation import check_2d

#: Fallback L2 size when the OS exposes nothing (1 MiB is the low end of
#: contemporary per-core L2; undershooting only shrinks tiles).
_DEFAULT_L2_BYTES = 1 << 20

_l2_cache: "int | None" = None


def l2_cache_bytes() -> int:
    """Best-effort per-core L2 cache size in bytes (memoized).

    Tries ``sysconf`` then the Linux sysfs cache hierarchy; falls back to
    1 MiB.  Only a tile-sizing heuristic — correctness never depends on it.
    """
    global _l2_cache
    if _l2_cache is None:
        _l2_cache = _detect_l2_cache_bytes()
    return _l2_cache


def _detect_l2_cache_bytes() -> int:
    try:
        size = os.sysconf("SC_LEVEL2_CACHE_SIZE")
        if size and size > 0:
            return int(size)
    except (AttributeError, OSError, ValueError):
        pass
    try:
        with open(
            "/sys/devices/system/cpu/cpu0/cache/index2/size"
        ) as handle:
            text = handle.read().strip().upper()
        if text.endswith("K"):
            return int(text[:-1]) * 1024
        if text.endswith("M"):
            return int(text[:-1]) * 1024 * 1024
        return int(text)
    except (OSError, ValueError):
        return _DEFAULT_L2_BYTES


def resolve_chunk_rows(
    n_features: int, itemsize: int, l2_bytes: "int | None" = None
) -> int:
    """Tile edge so two operand panels plus the product block fit in L2.

    Solves ``c^2 * s + 2 c * D * s <= L2`` for the (square) tile edge
    ``c`` — the ``(c, c)`` distance block dominates, the ``(c, D)``
    query/point panels ride along.  Clamped to ``[32, 8192]``.
    """
    l2 = l2_cache_bytes() if l2_bytes is None else int(l2_bytes)
    s = max(int(itemsize), 1)
    d = max(int(n_features), 1)
    c = int(np.sqrt(d * d + l2 / s) - d)
    return int(np.clip(c, 32, 8192))


def _as_source(points):
    """Normalize ``points`` to ``(chunk_fn, n, dim, dtype)``."""
    if hasattr(points, "chunk"):
        n, dim = points.shape
        return points.chunk, int(n), int(dim), np.dtype(points.dtype)
    points = check_2d(points, "points", dtype=None)
    return (
        lambda start, stop: points[start:stop],
        points.shape[0],
        points.shape[1],
        points.dtype,
    )


def _chunk_itemsize(points, compute_dtype: np.dtype) -> int:
    """Bytes per element of the *resident* stream the scan reads.

    A quantized chunk source streams its stored codes (uint8) from
    memory — the dequantized float tile is transient — so sources may
    advertise ``storage_itemsize`` and get proportionally larger tiles
    out of the same L2 budget, amortizing the per-tile top-k merge.
    """
    return max(int(getattr(points, "storage_itemsize", compute_dtype.itemsize)), 1)


def _source_sq_norms(chunk_fn, n: int, chunk_rows: int) -> np.ndarray:
    """One streaming pass computing ``|p|^2`` per point."""
    out = np.empty(n)
    for start in range(0, n, chunk_rows):
        block = chunk_fn(start, min(start + chunk_rows, n))
        out[start : start + len(block)] = np.einsum(
            "ij,ij->i", block, block
        )
    return out


def chunked_argkmin(
    queries: np.ndarray,
    points,
    k: int,
    *,
    sq_norms: "np.ndarray | None" = None,
    chunk_rows: "int | None" = None,
    query_block: "int | None" = None,
):
    """Exact k smallest Euclidean distances of each query to ``points``.

    Returns ``(distances, indices)`` of shape ``(M, min(k, N))``, rows
    sorted ascending — the same contract as the monolithic scan, without
    ever materializing an ``(M, N)`` buffer.  ``k > N`` is clamped at
    this level; callers wanting a raise policy enforce it above
    (``_resolve_query_k``).

    ``sq_norms`` caches ``|p|^2`` across calls; ``chunk_rows`` /
    ``query_block`` override the L2 tile heuristic (tests shrink them to
    force multi-tile runs).  Float32 queries against a float32 source
    stay in float32 end to end (sgemm is ~2x dgemm on this class of
    hardware — the PR 3 analysis).
    """
    queries = check_2d(queries, "queries", dtype=None)
    chunk_fn, n_points, n_dim, src_dtype = _as_source(points)
    if queries.shape[1] != n_dim:
        raise ValueError(
            f"query dim {queries.shape[1]} != points dim {n_dim}"
        )
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(int(k), n_points)
    m = len(queries)
    compute_dtype = np.promote_types(
        np.promote_types(queries.dtype, src_dtype), np.float32
    )
    if chunk_rows is None:
        chunk_rows = resolve_chunk_rows(n_dim, _chunk_itemsize(points, compute_dtype))
    chunk_rows = max(int(chunk_rows), 1)
    if query_block is None:
        query_block = chunk_rows
    query_block = max(int(query_block), 1)
    if n_points == 0 or m == 0:
        return (
            np.zeros((m, k), dtype=compute_dtype),
            np.zeros((m, k), dtype=int),
        )
    if sq_norms is None:
        sq_norms = _source_sq_norms(chunk_fn, n_points, chunk_rows)
    sq_norms = np.asarray(sq_norms).ravel().astype(compute_dtype, copy=False)

    queries = queries.astype(compute_dtype, copy=False)
    all_dist = np.empty((m, k), dtype=compute_dtype)
    all_idx = np.empty((m, k), dtype=int)
    for qs in range(0, m, query_block):
        q = queries[qs : qs + query_block]
        best_d = np.full((len(q), k), np.inf, dtype=compute_dtype)
        best_i = np.full((len(q), k), -1, dtype=int)
        for ps in range(0, n_points, chunk_rows):
            pe = min(ps + chunk_rows, n_points)
            chunk = chunk_fn(ps, pe).astype(compute_dtype, copy=False)
            # |q|^2 is constant per row, so it never affects the ranking;
            # it is added back once, after the final merge
            d2 = q @ chunk.T
            d2 *= -2.0
            d2 += sq_norms[ps:pe]
            local_k = min(k, pe - ps)
            if local_k < d2.shape[1]:
                part = np.argpartition(d2, kth=local_k - 1, axis=1)[
                    :, :local_k
                ]
            else:
                part = np.broadcast_to(
                    np.arange(local_k), (len(q), local_k)
                )
            cand_d = np.take_along_axis(d2, part, axis=1)
            cand_i = part + ps
            merged_d = np.concatenate([best_d, cand_d], axis=1)
            merged_i = np.concatenate([best_i, cand_i], axis=1)
            if merged_d.shape[1] > k:
                keep = np.argpartition(merged_d, kth=k - 1, axis=1)[:, :k]
                merged_d = np.take_along_axis(merged_d, keep, axis=1)
                merged_i = np.take_along_axis(merged_i, keep, axis=1)
            best_d, best_i = merged_d, merged_i
        order = np.argsort(best_d, axis=1, kind="stable")
        best_d = np.take_along_axis(best_d, order, axis=1)
        best_i = np.take_along_axis(best_i, order, axis=1)
        best_d += np.einsum("ij,ij->i", q, q)[:, None]
        np.maximum(best_d, 0.0, out=best_d)
        all_dist[qs : qs + len(q)] = np.sqrt(best_d)
        all_idx[qs : qs + len(q)] = best_i
    return all_dist, all_idx


def chunked_radius_neighbors(
    queries: np.ndarray,
    points,
    radius: float,
    *,
    sq_norms: "np.ndarray | None" = None,
    chunk_rows: "int | None" = None,
    query_block: "int | None" = None,
    exclude_self: bool = False,
) -> "list[np.ndarray]":
    """Indices of all points within ``radius`` of each query (inclusive).

    Per-query index arrays come back in ascending order — the
    :func:`repro.manifold.epsilon_neighbors` contract.  ``exclude_self``
    drops index ``i`` from query row ``i`` (the self-radius pattern
    where queries *are* the indexed points).  Same tiling as
    :func:`chunked_argkmin`; the per-tile reduction is an in-radius mask
    instead of a top-k.
    """
    queries = check_2d(queries, "queries", dtype=None)
    chunk_fn, n_points, n_dim, src_dtype = _as_source(points)
    if queries.shape[1] != n_dim:
        raise ValueError(
            f"query dim {queries.shape[1]} != points dim {n_dim}"
        )
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    m = len(queries)
    if m == 0:
        return []
    if n_points == 0:
        return [np.empty(0, dtype=int) for _ in range(m)]
    compute_dtype = np.promote_types(
        np.promote_types(queries.dtype, src_dtype), np.float32
    )
    if chunk_rows is None:
        chunk_rows = resolve_chunk_rows(n_dim, _chunk_itemsize(points, compute_dtype))
    chunk_rows = max(int(chunk_rows), 1)
    if query_block is None:
        query_block = chunk_rows
    query_block = max(int(query_block), 1)
    if sq_norms is None:
        sq_norms = _source_sq_norms(chunk_fn, n_points, chunk_rows)
    sq_norms = np.asarray(sq_norms).ravel().astype(compute_dtype, copy=False)

    queries = queries.astype(compute_dtype, copy=False)
    r2 = float(radius) * float(radius)
    rows_out: "list[list[np.ndarray]]" = [[] for _ in range(m)]
    for qs in range(0, m, query_block):
        q = queries[qs : qs + query_block]
        # per-row threshold folds |q|^2 out of the tile arithmetic:
        # d2_base <= r^2 - |q|^2  <=>  ||q - p||^2 <= r^2
        thresh = r2 - np.einsum("ij,ij->i", q, q)
        for ps in range(0, n_points, chunk_rows):
            pe = min(ps + chunk_rows, n_points)
            chunk = chunk_fn(ps, pe).astype(compute_dtype, copy=False)
            d2 = q @ chunk.T
            d2 *= -2.0
            d2 += sq_norms[ps:pe]
            hit_q, hit_p = np.nonzero(d2 <= thresh[:, None])
            if not len(hit_q):
                continue
            hit_p = hit_p + ps
            if exclude_self:
                keep = hit_p != hit_q + qs
                hit_q, hit_p = hit_q[keep], hit_p[keep]
            # np.nonzero walks rows in order, so per-row hits arrive
            # ascending and later chunks only append larger indices
            counts = np.bincount(hit_q, minlength=len(q))
            for row, part in zip(
                np.flatnonzero(counts),
                np.split(hit_p, np.cumsum(counts[counts > 0])[:-1]),
            ):
                rows_out[qs + row].append(part)
    return [
        np.concatenate(parts) if parts else np.empty(0, dtype=int)
        for parts in rows_out
    ]
