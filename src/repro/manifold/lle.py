"""Locally Linear Embedding (Roweis & Saul, 2000).

Steps per the paper's template: (1) kNN search, (2) solve for the
reconstruction weights of each point from its neighbors, (3) find the
embedding minimizing the same reconstruction error — the bottom non-zero
eigenvectors of (I - W)ᵀ(I - W).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import eigh, solve
from scipy.sparse import csr_matrix, identity

from repro.manifold.neighbors import KNNIndex, kneighbors
from repro.utils.validation import check_2d, check_fitted


class LocallyLinearEmbedding:
    """Standard LLE with an out-of-sample extension via weight reuse.

    Parameters
    ----------
    n_components:
        Embedding dimension.
    n_neighbors:
        Number of neighbors for local reconstruction.
    reg:
        Tikhonov regularization added to the local Gram matrices —
        required when n_neighbors > input dim (Gram is then singular).
    """

    def __init__(self, n_components: int = 2, n_neighbors: int = 10, reg: float = 1e-3):
        if n_components <= 0:
            raise ValueError(f"n_components must be positive, got {n_components}")
        if n_neighbors <= 0:
            raise ValueError(f"n_neighbors must be positive, got {n_neighbors}")
        if reg < 0:
            raise ValueError(f"reg must be non-negative, got {reg}")
        self.n_components = int(n_components)
        self.n_neighbors = int(n_neighbors)
        self.reg = float(reg)
        self.embedding_: np.ndarray | None = None
        self._train_points: np.ndarray | None = None
        self._index: KNNIndex | None = None

    def fit(self, points: np.ndarray) -> "LocallyLinearEmbedding":
        points = check_2d(points, "points")
        n = len(points)
        if n <= self.n_neighbors:
            raise ValueError(
                f"need more than n_neighbors={self.n_neighbors} points, got {n}"
            )
        if self.n_components >= n:
            raise ValueError(
                f"n_components={self.n_components} must be < n_points={n}"
            )
        _dist, indices = kneighbors(points, k=self.n_neighbors)
        weights = self._reconstruction_weights(points, indices)
        # M = (I - W)^T (I - W); embedding = bottom eigenvectors 1..d of M
        rows = np.repeat(np.arange(n), self.n_neighbors)
        w_sparse = csr_matrix(
            (weights.ravel(), (rows, indices.ravel())), shape=(n, n)
        )
        i_minus_w = identity(n, format="csr") - w_sparse
        m = (i_minus_w.T @ i_minus_w).toarray()
        m = (m + m.T) / 2.0
        eigenvalues, eigenvectors = eigh(
            m, subset_by_index=(0, min(self.n_components, n - 1))
        )
        # discard the constant eigenvector (eigenvalue ~0)
        self.embedding_ = eigenvectors[:, 1 : self.n_components + 1]
        if self.embedding_.shape[1] < self.n_components:
            pad = np.zeros((n, self.n_components - self.embedding_.shape[1]))
            self.embedding_ = np.hstack([self.embedding_, pad])
        self.eigenvalues_ = eigenvalues[1 : self.n_components + 1]
        self._train_points = points
        self._index = KNNIndex(points, method="brute")
        return self

    def fit_transform(self, points: np.ndarray) -> np.ndarray:
        return self.fit(points).embedding_

    def transform(self, queries: np.ndarray) -> np.ndarray:
        """Embed new points: reconstruct each query from its training
        neighbors with LLE weights, then apply those weights to the
        training embedding (Saul & Roweis' standard extension)."""
        check_fitted(self, "embedding_")
        queries = check_2d(queries, "queries")
        _dist, indices = self._index.query(queries, k=self.n_neighbors)
        weights = self._reconstruction_weights(
            queries, indices, basis=self._train_points
        )
        out = np.empty((len(queries), self.embedding_.shape[1]))
        for i in range(len(queries)):
            out[i] = weights[i] @ self.embedding_[indices[i]]
        return out

    def _reconstruction_weights(
        self,
        points: np.ndarray,
        neighbor_indices: np.ndarray,
        basis: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Solve the constrained least squares for each point's weights.

        Weights w minimize ||x - Σ w_j η_j||² s.t. Σ w_j = 1, solved via
        the local Gram system G w = 1 then normalization.
        """
        basis_points = points if basis is None else basis
        k = neighbor_indices.shape[1]
        weights = np.empty((len(points), k))
        ones = np.ones(k)
        for i, x in enumerate(points):
            neighbors = basis_points[neighbor_indices[i]]
            delta = neighbors - x
            gram = delta @ delta.T
            trace = np.trace(gram)
            ridge = self.reg * (trace if trace > 0 else 1.0)
            gram = gram + np.eye(k) * ridge
            w = solve(gram, ones, assume_a="pos")
            weights[i] = w / w.sum()
        return weights
