"""Nearest-neighbor search: brute force and KD-tree backed.

The KD-tree comes from scipy (cKDTree); the brute-force path exists both
as a correctness oracle for tests and for the high-dimensional RSSI
vectors where KD-trees degrade to linear scans anyway.  The brute scan
runs through the cache-blocked :func:`repro.manifold.chunked.chunked_argkmin`
kernel, and can operate over a quantized uint8 radio map (``binner``)
that streams dequantized tiles instead of holding float points.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.manifold.chunked import chunked_argkmin, chunked_radius_neighbors
from repro.utils.validation import check_2d


class KNNIndex:
    """K-nearest-neighbor index over a fixed point set.

    Parameters
    ----------
    points:
        (N, D) array indexed once at construction.
    method:
        ``"auto"`` picks a KD-tree for D <= 20 and brute force otherwise;
        ``"kdtree"`` / ``"brute"`` force a backend.
    binner:
        Optional fitted :class:`repro.quantization.FeatureBinner`.  When
        given, the index stores only the uint8 bin codes of ``points``
        (8x smaller than float64) and the brute kernel streams
        bin-midpoint dequantized tiles; queries stay raw floats
        (asymmetric distance — no query-side quantization error).
        Binned indexes are brute-force only, and ``self.points`` is
        ``None`` — the float map is deliberately not retained.
    """

    def __init__(
        self, points: np.ndarray, method: str = "auto", binner=None
    ):
        if method not in ("auto", "kdtree", "brute"):
            raise ValueError(f"unknown method {method!r}")
        if binner is not None:
            if method == "kdtree":
                raise ValueError("binned indexes are brute-force only")
            points = check_2d(points, "points")
            self._init_binned(binner, binner.transform(points))
            return
        self.points = check_2d(points, "points")
        if method == "auto":
            method = "kdtree" if self.points.shape[1] <= 20 else "brute"
        self.method = method
        self.binner = None
        self._n, self._dim = self.points.shape
        self._tree = cKDTree(self.points) if method == "kdtree" else None
        # brute-force scans stream straight from the float point set
        self._source = self.points if method == "brute" else None
        # |p|^2 term of the brute-force expansion; computed once so repeated
        # queries against the same index never rescan the point set for it
        self._sq_points = (
            np.sum(self.points**2, axis=1) if method == "brute" else None
        )

    @classmethod
    def from_codes(cls, codes: np.ndarray, binner) -> "KNNIndex":
        """Rebuild a binned index directly from stored uint8 codes.

        The persistence restore path: codes round-trip through artifacts
        verbatim, so no float map and no re-quantization is needed.
        """
        index = cls.__new__(cls)
        index._init_binned(binner, codes)
        return index

    def _init_binned(self, binner, codes: np.ndarray) -> None:
        from repro.quantization.binning import BinnedPoints

        self.method = "brute"
        self.binner = binner
        self.points = None
        self._tree = None
        self._source = BinnedPoints(binner, codes)
        self._n, self._dim = self._source.shape
        self._sq_points = self._source.sq_norms()

    @property
    def n_features(self) -> int:
        """Feature dimension (valid for float and binned indexes alike)."""
        return self._dim

    @property
    def codes(self) -> "np.ndarray | None":
        """The stored uint8 codes of a binned index (``None`` otherwise)."""
        return self._source.codes if self.binner is not None else None

    def __len__(self) -> int:
        return self._n

    def query(
        self,
        queries: np.ndarray,
        k: int,
        exclude_self: bool = False,
        on_excess: str = "raise",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (distances, indices), each (M, k), sorted by distance.

        ``exclude_self`` drops each query's own entry by index identity.
        It requires ``queries`` to be exactly the indexed point set, in
        order (row ``i`` is point ``i``) — the :func:`kneighbors`
        pattern.  A zero-distance *duplicate* of the query is a
        legitimate neighbor and is kept.  For a subset of the points,
        query without ``exclude_self`` and drop the unwanted entry by
        its known index instead.

        ``on_excess`` sets the policy when ``k`` (plus the self match,
        when excluded) exceeds the index size: ``"raise"`` rejects the
        query with ``ValueError``; ``"clamp"`` returns every indexed
        point — i.e. fewer than ``k`` columns — sorted by distance.  The
        policy is identical on the brute and KD-tree backends (scipy
        would otherwise pad the KD-tree result with ``inf`` placeholder
        rows silently).
        """
        queries, effective_k = _resolve_query_k(
            queries,
            index_dim=self._dim,
            index_size=self._n,
            k=k,
            exclude_self=exclude_self,
            on_excess=on_excess,
        )
        if self._tree is not None:
            distances, indices = self._tree.query(queries, k=effective_k)
            if effective_k == 1:
                distances = distances[:, None]
                indices = indices[:, None]
        else:
            distances, indices = self._brute_query(queries, effective_k)
        if exclude_self:
            distances, indices = _drop_self_matches(distances, indices, effective_k - 1)
        return distances, indices

    def _brute_query(self, queries: np.ndarray, k: int):
        # cache-blocked ||q - p||^2 GEMM with fused per-tile top-k; a binned
        # index streams dequantized float32 tiles, and casting the queries
        # down keeps the whole scan on sgemm (~2x dgemm on this hardware)
        if self.binner is not None:
            queries = queries.astype(self._source.dtype, copy=False)
        return chunked_argkmin(
            queries, self._source, k, sq_norms=self._sq_points
        )


def kneighbors(
    points: np.ndarray,
    k: int,
    method: str = "auto",
    shards: int = 1,
    partitioner="auto",
    max_workers: "int | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Self-kNN of a point set, excluding each point itself.

    ``shards > 1`` routes through :class:`repro.sharding.ShardedKNNIndex`
    (partition policy set by ``partitioner``); distances are exactly the
    monolithic ones — sharding only changes how the scan is executed.
    (Neighbor identity can differ only within exact distance ties,
    which a monolithic scan leaves unspecified too.)
    """
    if shards > 1:
        from repro.sharding import ShardedKNNIndex

        index = ShardedKNNIndex(
            points,
            n_shards=shards,
            partitioner=partitioner,
            method=method,
            max_workers=max_workers,
        )
    else:
        index = KNNIndex(points, method=method)
    return index.query(index.points, k=k, exclude_self=True)


def epsilon_neighbors(
    points: np.ndarray,
    radius: float,
    shards: int = 1,
    max_workers: "int | None" = None,
    method: str = "auto",
) -> list[np.ndarray]:
    """Indices of all neighbors within ``radius`` of each point (self excluded).

    Neighbor indices are returned in ascending order per point.
    ``method`` mirrors :class:`KNNIndex`: ``"auto"`` picks a KD-tree for
    D <= 20 and the cache-blocked brute kernel
    (:func:`repro.manifold.chunked.chunked_radius_neighbors`) for the
    high-dimensional RSSI regime where the tree degrades to a linear
    scan anyway.  ``shards > 1`` fans the query side out: the point set
    is split into ``shards`` row-chunks, each scanned against the shared
    index on a thread pool (radius search is query-independent, so this
    is exact).
    """
    points = check_2d(points, "points")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if method not in ("auto", "kdtree", "brute"):
        raise ValueError(f"unknown method {method!r}")
    n = len(points)
    if n == 0:
        return []
    if method == "auto":
        method = "kdtree" if points.shape[1] <= 20 else "brute"
    if method == "brute":
        sq_points = np.sum(points**2, axis=1)
        if shards > 1:
            from repro.sharding import fanout_over_slices

            def scan_brute(sl: slice) -> "list[np.ndarray]":
                rows = chunked_radius_neighbors(
                    points[sl], points, radius, sq_norms=sq_points
                )
                return [
                    row[row != sl.start + i] for i, row in enumerate(rows)
                ]

            chunks = fanout_over_slices(
                scan_brute, n, shards, max_workers=max_workers
            )
            return [row for chunk in chunks for row in chunk]
        return chunked_radius_neighbors(
            points, points, radius, sq_norms=sq_points, exclude_self=True
        )
    tree = cKDTree(points)
    if shards > 1:
        from repro.sharding import fanout_over_slices

        def scan(sl: slice) -> "list[np.ndarray]":
            rows = tree.query_ball_point(
                points[sl], r=radius, return_sorted=True
            )
            out = []
            for i, row in enumerate(rows):
                row = np.asarray(row, dtype=int)
                out.append(row[row != sl.start + i])
            return out

        chunks = fanout_over_slices(scan, n, shards, max_workers=max_workers)
        return [row for chunk in chunks for row in chunk]
    # query_pairs gives each in-radius (i, j) pair once with i < j and never
    # pairs a point with itself; mirroring it yields both directions at once.
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    both = np.concatenate([pairs, pairs[:, ::-1]]).astype(int)
    order = np.lexsort((both[:, 1], both[:, 0]))
    sources, targets = both[order, 0], both[order, 1]
    counts = np.bincount(sources, minlength=n)
    return np.split(targets, np.cumsum(counts)[:-1])


def _resolve_query_k(
    queries: np.ndarray,
    index_dim: int,
    index_size: int,
    k: int,
    exclude_self: bool,
    on_excess: str,
) -> tuple[np.ndarray, int]:
    """Shared query validation + clamp-or-raise policy.

    One implementation serves both :class:`KNNIndex` and
    :class:`repro.sharding.ShardedKNNIndex`, so the documented
    "identical policy across backends and shards" guarantee cannot
    drift.  Returns ``(validated queries, effective k)`` where the
    effective k includes the self column and is clamped to the index
    size under ``on_excess="clamp"``.
    """
    queries = check_2d(queries, "queries")
    if queries.shape[1] != index_dim:
        raise ValueError(
            f"query dim {queries.shape[1]} != index dim {index_dim}"
        )
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if on_excess not in ("raise", "clamp"):
        raise ValueError(
            f"on_excess must be 'raise' or 'clamp', got {on_excess!r}"
        )
    effective_k = k + 1 if exclude_self else k
    if effective_k > index_size:
        if on_excess == "raise":
            raise ValueError(
                f"k={k} (self-excluded: {exclude_self}) exceeds index size "
                f"{index_size}"
            )
        effective_k = index_size
    return queries, effective_k


def _drop_self_matches(distances: np.ndarray, indices: np.ndarray, k: int):
    """Remove each row's own point, keep k columns.

    Queries are the indexed points themselves (row ``i`` is point ``i``),
    so the entry whose index equals its row is dropped *by identity* —
    a zero-distance duplicate of the query is a legitimate neighbor and
    must survive, wherever tie-breaking happened to sort it.  If the
    self entry was crowded out of the candidate set entirely (only
    possible when every kept candidate is a zero-distance duplicate),
    the first column is dropped instead, which is distance-equivalent.
    """
    m = distances.shape[0]
    is_self = indices == np.arange(m)[:, None]
    drop = np.where(is_self.any(axis=1), is_self.argmax(axis=1), 0)
    keep = np.ones(distances.shape, dtype=bool)
    keep[np.arange(m), drop] = False
    return (
        np.ascontiguousarray(distances[keep].reshape(m, -1)[:, :k]),
        np.ascontiguousarray(indices[keep].reshape(m, -1)[:, :k]).astype(
            int, copy=False
        ),
    )
