"""Nearest-neighbor search: brute force and KD-tree backed.

The KD-tree comes from scipy (cKDTree); the brute-force path exists both
as a correctness oracle for tests and for the high-dimensional RSSI
vectors where KD-trees degrade to linear scans anyway.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.utils.validation import check_2d


class KNNIndex:
    """K-nearest-neighbor index over a fixed point set.

    Parameters
    ----------
    points:
        (N, D) array indexed once at construction.
    method:
        ``"auto"`` picks a KD-tree for D <= 20 and brute force otherwise;
        ``"kdtree"`` / ``"brute"`` force a backend.
    """

    def __init__(self, points: np.ndarray, method: str = "auto"):
        self.points = check_2d(points, "points")
        if method not in ("auto", "kdtree", "brute"):
            raise ValueError(f"unknown method {method!r}")
        if method == "auto":
            method = "kdtree" if self.points.shape[1] <= 20 else "brute"
        self.method = method
        self._tree = cKDTree(self.points) if method == "kdtree" else None

    def __len__(self) -> int:
        return len(self.points)

    def query(
        self, queries: np.ndarray, k: int, exclude_self: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (distances, indices), each (M, k), sorted by distance.

        ``exclude_self`` drops a zero-distance exact match of the query
        itself — use when querying the index with its own points.
        """
        queries = check_2d(queries, "queries")
        if queries.shape[1] != self.points.shape[1]:
            raise ValueError(
                f"query dim {queries.shape[1]} != index dim {self.points.shape[1]}"
            )
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        effective_k = k + 1 if exclude_self else k
        if effective_k > len(self.points):
            raise ValueError(
                f"k={k} (self-excluded: {exclude_self}) exceeds index size "
                f"{len(self.points)}"
            )
        if self._tree is not None:
            distances, indices = self._tree.query(queries, k=effective_k)
            if effective_k == 1:
                distances = distances[:, None]
                indices = indices[:, None]
        else:
            distances, indices = self._brute_query(queries, effective_k)
        if exclude_self:
            distances, indices = _drop_self_matches(distances, indices, k)
        return distances, indices

    def _brute_query(self, queries: np.ndarray, k: int):
        # ||q - p||^2 = |q|^2 - 2 q·p + |p|^2, computed blockwise to bound memory
        sq_points = np.sum(self.points**2, axis=1)
        all_dist = np.empty((len(queries), k))
        all_idx = np.empty((len(queries), k), dtype=int)
        block = max(1, int(2e7) // max(len(self.points), 1))
        for start in range(0, len(queries), block):
            q = queries[start : start + block]
            d2 = np.sum(q**2, axis=1)[:, None] - 2.0 * q @ self.points.T + sq_points
            np.maximum(d2, 0.0, out=d2)
            part = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
            part_d = np.take_along_axis(d2, part, axis=1)
            order = np.argsort(part_d, axis=1, kind="stable")
            all_idx[start : start + len(q)] = np.take_along_axis(part, order, axis=1)
            all_dist[start : start + len(q)] = np.sqrt(
                np.take_along_axis(part_d, order, axis=1)
            )
        return all_dist, all_idx


def kneighbors(
    points: np.ndarray, k: int, method: str = "auto"
) -> tuple[np.ndarray, np.ndarray]:
    """Self-kNN of a point set, excluding each point itself."""
    index = KNNIndex(points, method=method)
    return index.query(index.points, k=k, exclude_self=True)


def epsilon_neighbors(points: np.ndarray, radius: float) -> list[np.ndarray]:
    """Indices of all neighbors within ``radius`` of each point (self excluded).

    Neighbor indices are returned in ascending order per point.
    """
    points = check_2d(points, "points")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    n = len(points)
    if n == 0:
        return []
    tree = cKDTree(points)
    # query_pairs gives each in-radius (i, j) pair once with i < j and never
    # pairs a point with itself; mirroring it yields both directions at once.
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    both = np.concatenate([pairs, pairs[:, ::-1]]).astype(int)
    order = np.lexsort((both[:, 1], both[:, 0]))
    sources, targets = both[order, 0], both[order, 1]
    counts = np.bincount(sources, minlength=n)
    return np.split(targets, np.cumsum(counts)[:-1])


def _drop_self_matches(distances: np.ndarray, indices: np.ndarray, k: int):
    """Remove the first zero-distance self column, keep k columns.

    Dropping column 0 is correct because queries are the indexed points
    themselves: the zero-distance self match sorts first in every row.
    """
    return (
        np.ascontiguousarray(distances[:, 1 : k + 1]),
        np.ascontiguousarray(indices[:, 1 : k + 1]).astype(int, copy=False),
    )
