"""Classical multidimensional scaling (Torgerson MDS).

MDS is the algorithm the paper's §III-C equivalence argument is phrased
in: NObLe's cross-entropy objective pulls same-class embeddings together
the way MDS preserves pairwise distances, minus the reliance on noisy
input-space distances.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import eigh


def classical_mds(
    distances: np.ndarray, n_components: int = 2
) -> tuple[np.ndarray, np.ndarray]:
    """Embed a squared-distance-compatible matrix into ``n_components`` dims.

    Parameters
    ----------
    distances:
        (N, N) symmetric matrix of (non-squared) dissimilarities.
    n_components:
        Target embedding dimension.

    Returns
    -------
    embedding:
        (N, n_components); columns ordered by decreasing eigenvalue.
        Components with non-positive eigenvalues come back as zeros (the
        matrix was not Euclidean-realizable in that direction).
    eigenvalues:
        The top ``n_components`` eigenvalues of the doubly centered Gram
        matrix, useful for diagnosing intrinsic dimension.
    """
    d = np.asarray(distances, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"distances must be square, got {d.shape}")
    if not np.allclose(d, d.T, atol=1e-8):
        raise ValueError("distances must be symmetric")
    if np.any(~np.isfinite(d)):
        raise ValueError(
            "distances contain non-finite entries; restrict to a connected "
            "component before running MDS"
        )
    n = d.shape[0]
    if not 1 <= n_components <= n:
        raise ValueError(f"n_components must be in [1, {n}], got {n_components}")
    # double centering: B = -1/2 J D^2 J
    squared = d**2
    centering = np.eye(n) - np.ones((n, n)) / n
    gram = -0.5 * centering @ squared @ centering
    gram = (gram + gram.T) / 2.0  # clean numerical asymmetry
    eigenvalues, eigenvectors = eigh(gram, subset_by_index=(n - n_components, n - 1))
    # eigh returns ascending order; flip to descending
    eigenvalues = eigenvalues[::-1]
    eigenvectors = eigenvectors[:, ::-1]
    scale = np.sqrt(np.maximum(eigenvalues, 0.0))
    return eigenvectors * scale, eigenvalues


def stress(distances: np.ndarray, embedding: np.ndarray) -> float:
    """Kruskal raw stress: sum of squared residuals between the target
    dissimilarities and the embedding's pairwise Euclidean distances,
    normalized by the sum of squared targets (0 = perfect)."""
    d = np.asarray(distances, dtype=float)
    emb = np.asarray(embedding, dtype=float)
    if len(d) != len(emb):
        raise ValueError("distances and embedding disagree on point count")
    diff = emb[:, None, :] - emb[None, :, :]
    emb_dist = np.sqrt(np.sum(diff**2, axis=-1))
    denom = float(np.sum(d**2))
    if denom == 0.0:
        return 0.0
    return float(np.sum((d - emb_dist) ** 2) / denom)


def pairwise_euclidean(points: np.ndarray) -> np.ndarray:
    """Dense (N, N) Euclidean distance matrix."""
    points = np.asarray(points, dtype=float)
    sq = np.sum(points**2, axis=1)
    d2 = sq[:, None] - 2.0 * points @ points.T + sq[None, :]
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)
