"""Neighborhood graphs and geodesic (shortest-path) distances."""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components, shortest_path

from repro.manifold.neighbors import kneighbors


def neighborhood_graph(
    points: np.ndarray, k: int, symmetrize: bool = True
) -> csr_matrix:
    """Sparse weighted kNN graph; edge weights are Euclidean distances.

    With ``symmetrize`` the graph contains an edge when either endpoint
    lists the other among its k neighbors (the standard Isomap choice,
    which keeps the graph connected more often than mutual-kNN).
    """
    distances, indices = kneighbors(points, k=k)
    n = len(points)
    rows = np.repeat(np.arange(n), k)
    cols = indices.ravel()
    vals = distances.ravel()
    graph = csr_matrix((vals, (rows, cols)), shape=(n, n))
    if symmetrize:
        graph = graph.maximum(graph.T)
    return graph


def geodesic_distances(graph: csr_matrix, method: str = "auto") -> np.ndarray:
    """All-pairs shortest-path distances over a weighted graph.

    Unreachable pairs come back as ``inf``; callers decide whether to
    restrict to the largest component (see :class:`Isomap`).
    """
    return shortest_path(graph, method={"auto": "auto"}.get(method, method), directed=False)


def is_connected(graph: csr_matrix) -> bool:
    """True when the undirected graph has a single connected component."""
    n_components, _labels = connected_components(graph, directed=False)
    return bool(n_components == 1)


def largest_component(graph: csr_matrix) -> np.ndarray:
    """Indices of the nodes in the largest connected component."""
    _n, labels = connected_components(graph, directed=False)
    counts = np.bincount(labels)
    return np.flatnonzero(labels == np.argmax(counts))
