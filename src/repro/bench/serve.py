"""The serve-bench async engine: deadline-vs-throughput trajectory.

Benchmarks the :class:`repro.serving.ServingFrontend` against naive
per-query serving on the repo's synthetic UJIIndoorLoc workload.  For
each deadline in the sweep, N producer threads hammer the front end
with single-scan submissions; the engine measures end-to-end wall time
(first submit to last resolved ticket), asserts **prediction parity**
against the synchronous ``predict_batch`` oracle on every leg, asserts
a minimum throughput speedup over the per-query baseline at the
headline deadline, and emits the ``BENCH_serve.json`` payload (schema
:data:`SERVE_BENCH_SCHEMA`, validated by
:func:`repro.bench.validate_bench_payload`).

Since schema v3 every run also sweeps the **multi-process tier**: the
headline deadline is measured once through the thread front end over a
sharded ``knn`` estimator and once per ``--workers N`` count through a
:class:`repro.serving.workers.ShardWorkerPool`, with per-leg parity vs
the synchronous oracle and a req/s-vs-workers headline whose ≥2x floor
is enforced whenever the machine has ≥2 cores and working shared
memory.

Run it via ``python -m repro.cli serve-bench --async`` or ``make
serve-bench-async``; ``make serve-bench-smoke`` exercises a tiny
workload and schema-validates the artifact as part of ``make check``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

#: Identifier (and version) of the emitted JSON payload.  Version 2
#: added the optional ``store`` block (cold-fit vs warm-restart leg
#: through the persistent model store); version 3 added the mandatory
#: ``workers`` block (thread front end vs process-backed shard workers
#: at the headline deadline, with a req/s-vs-workers headline);
#: version 4 added the mandatory ``quant`` block (uint8 radio-map scan
#: vs the monolithic float32 brute scan, with req/s, recall-at-k, and
#: bytes-per-fingerprint floors); version 5 added the mandatory
#: ``resilience`` block (chaos harness: availability under injected
#: worker kills / heartbeat stalls / store corruption / slow batches,
#: per-tenant shed fairness, circuit-breaker counters, with floors on
#: availability, hung requests, and answered-request parity); version 6
#: added the mandatory ``sessions`` block (streaming trajectory
#: serving: concurrent tracks/sec through stateful per-user
#: TrackingSessions micro-batched across users per time step, bitwise
#: trajectory parity vs the offline single-session oracle, and a
#: checkpoint/restart recovery leg with a zero-lost-tracks floor);
#: version 7 added the mandatory ``embed`` block (learned-embedding
#: ``embed-knn`` serving vs raw-RSSI kNN on the same map, with req/s,
#: position-error-ratio, and matched-recall floors).
SERVE_BENCH_SCHEMA = "repro-serve-bench/7"

#: Schema-tag prefix shared by every serve-bench payload version; the
#: validator dispatcher routes on it and rejects unknown versions.
SERVE_BENCH_SCHEMA_PREFIX = "repro-serve-bench/"

#: Keys every async leg record must carry, with their types.
_LEG_FIELDS = {
    "deadline_ms": float,
    "seconds": float,
    "requests_per_second": float,
    "n_batches": int,
    "mean_batch_fill": float,
    "n_timeouts": int,
    "mean_latency_ms": float,
    "p95_latency_ms": float,
    "parity_ok": bool,
    "speedup_vs_naive": float,
}


class ServeParityError(AssertionError):
    """Async predictions diverged from the synchronous oracle."""


class ServeSpeedupError(AssertionError):
    """Async throughput fell below the asserted floor over per-query."""


@dataclass
class ServePreset:
    """One workload scale for the serving benchmark."""

    name: str
    n_spots_per_building: int
    measurements_per_spot: int
    n_aps_per_floor: int
    n_queries: int
    batch_size: int
    producers: int
    deadlines_ms: "tuple[float, ...]"
    #: The deadline whose throughput is asserted against ``min_speedup``
    #: and reported as the headline (the ISSUE's 50 ms budget).
    headline_deadline_ms: float
    min_speedup: float
    max_pending: int
    #: Runs per leg (naive and each deadline); the reported run is the
    #: MEDIAN by elapsed time.  A median resists one-off scheduler
    #: bursts in either direction — min-of-N would let a single lucky
    #: baseline run poison the asserted speedup ratio on a noisy
    #: shared machine.
    repeats: int = 1
    #: Floor asserted on cold-fit / warm-restore for the ``--store`` leg
    #: (the persistent model store's warm-start contract); 0 disables —
    #: the smoke workload's cold fit is too small for a stable ratio.
    store_min_speedup: float = 10.0
    #: Worker counts swept by the multi-process block; 0 is the thread
    #: front end the others are compared against (always included).
    workers: "tuple[int, ...]" = (0, 2)
    #: Floor asserted on best-worker-leg req/s over the thread leg —
    #: but only when the machine actually has ≥ 2 cores and shared
    #: memory (``floor_enforced`` in the emitted block); 0 disables.
    workers_min_speedup: float = 2.0
    #: Shards the workers block's estimator is fitted with (partitioned
    #: across the worker processes; also the thread leg's index layout,
    #: so the comparison isolates processes-vs-threads).
    workers_shards: int = 4
    #: Radio map synthesized for the ``quant`` block, as
    #: ``generate_uji_like`` scale knobs — sized independently of the
    #: async workload because the quantization claim is about scans
    #: over *large* maps (the fast/paper presets use a ~200k-point
    #: map; the smoke preset a tiny schema-validation map).
    quant_spots_per_building: int = 550
    quant_measurements_per_spot: int = 121
    quant_aps_per_floor: int = 4
    quant_queries: int = 256
    quant_k: int = 10
    quant_bins: int = 256
    #: Shortlist factor for the ADC scan + exact-rerank two-stage plan;
    #: 2 already recovers full recall on the UJI-like map while keeping
    #: the scan's top-k merge cheap (the library default of 4 trades a
    #: little throughput for headroom on harder geometries).
    quant_refine: int = 2
    #: Floor asserted on the quantized scan's req/s over the monolithic
    #: float32 brute scan it replaced; 0 disables (smoke maps are too
    #: small for a stable ratio).
    quant_min_speedup: float = 1.5
    #: Floor asserted on top-k recall of the refined uint8 scan against
    #: the full-precision oracle neighbor sets; 0 disables.
    quant_min_recall: float = 0.99
    #: Ceiling asserted on quantized-vs-float32 scan-state bytes per
    #: fingerprint (uint8 codes are exactly 1/4 of float32); 0 disables.
    quant_max_bytes_ratio: float = 0.25
    #: Radio map synthesized for the ``embed`` block (schema v7) —
    #: sized independently of the async workload because the
    #: learned-embedding claim is about *noisy, many-WAP* maps (heavy
    #: shadowing + per-device RSSI offsets), where raw Euclidean
    #: distances degrade and a coordinate-supervised embedding both
    #: denoises the neighbor structure and shrinks the scan from the
    #: raw WAP count to ``embed_components`` dims.
    embed_spots_per_building: int = 250
    embed_measurements_per_spot: int = 20
    embed_aps_per_floor: int = 10
    embed_shadowing_sigma: float = 8.0
    embed_device_offset_sigma: float = 6.0
    embed_queries: int = 1024
    embed_k: int = 10
    #: Embedder kind served by the ``embed-knn`` leg, its shape, and
    #: its training budget (forwarded as ``embed_params``).
    embed_embedder: str = "mlp"
    embed_components: int = 32
    embed_hidden: "tuple[int, ...]" = (128, 64)
    embed_epochs: int = 60
    embed_pretrain_epochs: int = 5
    #: Bins for the embed leg's quantized index — the served config is
    #: the full composed pipeline (embed → bin → scan), which is what
    #: the ``transform=`` seam ships; 0 serves the float index.
    embed_bins: int = 256
    #: A query "recalls" its location when at least one returned
    #: neighbor lies within this radius of the true position — the
    #: neighbor-quality yardstick both legs are scored on (a learned
    #: embedding trades exact-duplicate retrieval for geographically
    #: tighter neighbors, so index recall would be the wrong metric).
    embed_recall_radius_m: float = 10.0
    #: Floor asserted on embed-knn req/s over raw-RSSI kNN serving the
    #: same held-out queries; 0 disables (smoke maps are too small for
    #: a stable ratio).
    embed_min_speedup: float = 1.2
    #: Ceiling asserted on embed-knn position error relative to raw
    #: kNN's (1.0 = "no worse than raw RSSI"); 0 disables.
    embed_max_error_ratio: float = 1.0
    #: Floor asserted on embed-knn location-recall@k relative to raw
    #: kNN's, so the speedup headline is measured at matched neighbor
    #: quality rather than bought with a degraded scan; 0 disables.
    embed_min_recall_ratio: float = 0.95
    #: Chaos-harness knobs for the ``resilience`` block.  The chaos
    #: workload is sized independently of the throughput sweeps — it
    #: validates *outcome accounting* under injected faults (every
    #: request answered correctly, cleanly shed, or loudly failed),
    #: not speed, so every preset shares seconds-scale defaults.
    chaos_queries: int = 480
    chaos_workers: int = 2
    chaos_kills: int = 4
    chaos_stalls: int = 1
    chaos_store_corruptions: int = 1
    #: Queue bound for the overload sub-phase; small enough that the
    #: single-threaded submission burst forces real shedding.
    chaos_max_pending: int = 32
    #: Seeded fraction of fallback-path batches served slowly (latency
    #: pressure without changing any prediction) and the stall length.
    chaos_delay_rate: float = 0.05
    chaos_delay_s: float = 0.01
    #: SIGSTOP length; must exceed ``chaos_heartbeat_timeout_s`` so a
    #: stalled worker is detected as wedged, not ridden out.
    chaos_stall_s: float = 0.8
    chaos_heartbeat_timeout_s: float = 0.4
    #: Deliberately tight respawn token bucket: the kill storm is meant
    #: to exhaust it so the circuit breaker trips and the front end
    #: degrades to the thread path (the recovery story under test).
    chaos_respawn_budget: int = 2
    chaos_respawn_window_s: float = 20.0
    #: Floor asserted on (answered-correct + cleanly-shed) / submitted
    #: across the whole chaos run; 0 disables.
    chaos_min_availability: float = 0.99
    #: Streaming trajectory-serving workload for the ``sessions`` block
    #: (schema v6): concurrent per-user :class:`TrackingSession`\ s
    #: micro-batched *across users per time step* behind the threaded
    #: front end.  Sized independently of the point-query sweeps — the
    #: claim is stateful-workload parity + recovery, not raw scale.
    track_users: int = 24
    track_ticks: int = 10
    #: IMU samples per served segment (one tick = one segment).
    track_samples_per_segment: int = 96
    track_batch: int = 16
    track_producers: int = 4
    #: Batching deadline for the session front end; short, because a
    #: tracking tick is an elementwise stream update, not a kNN scan.
    track_deadline_ms: float = 5.0
    #: Floor asserted on concurrent session-ticks/sec through the
    #: threaded front end; 0 disables (smoke workloads are too small
    #: for a stable rate).
    track_min_tracks_per_s: float = 50.0


PRESETS = {
    # Schema/plumbing validation in seconds: far too small for a stable
    # throughput ratio, so none is asserted.
    "smoke": ServePreset(
        name="smoke",
        n_spots_per_building=10,
        measurements_per_spot=4,
        n_aps_per_floor=6,
        n_queries=160,
        batch_size=16,
        producers=4,
        deadlines_ms=(50.0,),
        headline_deadline_ms=50.0,
        min_speedup=0.0,
        max_pending=64,
        store_min_speedup=0.0,
        workers=(0, 2),
        workers_min_speedup=0.0,
        workers_shards=2,
        quant_spots_per_building=20,
        quant_measurements_per_spot=10,
        quant_aps_per_floor=3,
        quant_queries=64,
        quant_min_speedup=0.0,
        embed_spots_per_building=12,
        embed_measurements_per_spot=6,
        embed_aps_per_floor=3,
        embed_queries=48,
        embed_components=8,
        embed_hidden=(32,),
        embed_epochs=4,
        embed_pretrain_epochs=2,
        embed_bins=16,
        embed_min_speedup=0.0,
        embed_max_error_ratio=0.0,
        embed_min_recall_ratio=0.0,
        track_users=6,
        track_ticks=4,
        track_samples_per_segment=64,
        track_batch=8,
        track_producers=2,
        track_min_tracks_per_s=0.0,
    ),
    # The PR 1 serve-bench workload, now pushed through the async path.
    "fast": ServePreset(
        name="fast",
        n_spots_per_building=48,
        measurements_per_spot=10,
        n_aps_per_floor=10,
        n_queries=4000,
        batch_size=64,
        producers=4,
        deadlines_ms=(5.0, 20.0, 50.0),
        headline_deadline_ms=50.0,
        min_speedup=5.0,
        max_pending=1024,
        repeats=3,
        workers=(0, 1, 2),
        workers_shards=4,
    ),
    "paper": ServePreset(
        name="paper",
        n_spots_per_building=170,
        measurements_per_spot=20,
        n_aps_per_floor=18,
        n_queries=4000,
        batch_size=64,
        producers=16,
        deadlines_ms=(5.0, 20.0, 50.0),
        headline_deadline_ms=50.0,
        min_speedup=5.0,
        max_pending=4096,
        repeats=3,
        workers=(0, 2, 4),
        workers_shards=8,
        track_users=48,
        track_producers=8,
    ),
}


@dataclass
class ServeBenchResult:
    """Everything ``run_serve_bench`` measured, ready for JSON or print."""

    preset: str
    seed: int
    min_speedup: float
    workload: dict
    naive: dict = field(default_factory=dict)
    legs: "list[dict]" = field(default_factory=list)
    #: Cold-fit vs warm-restore comparison through the persistent model
    #: store (``--store``); None when the leg was not requested.
    store: "dict | None" = None
    #: Thread front end vs process-backed shard workers at the headline
    #: deadline (schema v3; always present in emitted payloads).
    workers: dict = field(default_factory=dict)
    #: Quantized uint8 radio-map scan vs the monolithic float32 brute
    #: scan (schema v4; always present in emitted payloads).
    quant: dict = field(default_factory=dict)
    #: Learned-embedding ``embed-knn`` serving vs raw-RSSI kNN on the
    #: same map (schema v7; always present in emitted payloads).
    embed: dict = field(default_factory=dict)
    #: Chaos harness: availability, shed fairness, and breaker/failover
    #: counters under injected faults (schema v5; always present).
    resilience: dict = field(default_factory=dict)
    #: Streaming trajectory serving: concurrent tracks/sec, bitwise
    #: parity vs the offline single-session oracle, and the
    #: checkpoint/restart recovery leg (schema v6; always present).
    sessions: dict = field(default_factory=dict)

    @property
    def headline(self) -> dict:
        deadline = self.workload["headline_deadline_ms"]
        leg = next(
            (l for l in self.legs if l["deadline_ms"] == deadline), None
        )
        return {
            "deadline_ms": deadline,
            "async_speedup": None if leg is None else leg["speedup_vs_naive"],
            "min_speedup_asserted": self.min_speedup,
        }

    def payload(self) -> dict:
        """The ``BENCH_serve.json`` dictionary (a detached deep copy)."""
        import copy

        payload = {
            "schema": SERVE_BENCH_SCHEMA,
            "preset": self.preset,
            "seed": self.seed,
            "workload": dict(self.workload),
            "naive": dict(self.naive),
            "async": copy.deepcopy(self.legs),
            "headline": dict(self.headline),
            "workers": copy.deepcopy(self.workers),
            "quant": copy.deepcopy(self.quant),
            "embed": copy.deepcopy(self.embed),
            "resilience": copy.deepcopy(self.resilience),
            "sessions": copy.deepcopy(self.sessions),
        }
        if self.store is not None:
            payload["store"] = dict(self.store)
        return payload

    def report(self) -> str:
        w = self.workload
        lines = [
            f"serve-bench[async] preset={self.preset} seed={self.seed} "
            f"({w['n_train']} fingerprints x {w['n_aps']} WAPs, "
            f"{w['n_queries']} queries, model={w['model']!r}, "
            f"batch={w['batch_size']}, {w['producers']} producers)",
            "",
            f"per-query baseline : {self.naive['seconds']:8.3f} s "
            f"({self.naive['requests_per_second']:9.0f} req/s)",
            "",
            "  deadline(ms)   time(s)      req/s   batches   fill   "
            "lat~mean/p95(ms)   speedup",
        ]
        for leg in self.legs:
            lines.append(
                f"  {leg['deadline_ms']:10.1f} {leg['seconds']:9.3f} "
                f"{leg['requests_per_second']:10.0f} {leg['n_batches']:9d} "
                f"{leg['mean_batch_fill']:6.1f}   "
                f"{leg['mean_latency_ms']:7.1f}/{leg['p95_latency_ms']:-7.1f}   "
                f"{leg['speedup_vs_naive']:6.1f}x"
            )
        head = self.headline
        lines.append(
            f"\nheadline: {head['async_speedup']:.1f}x over per-query at a "
            f"{head['deadline_ms']:.0f} ms deadline "
            f"(floor {head['min_speedup_asserted']:.1f}x); "
            "per-leg prediction parity asserted vs the synchronous oracle"
        )
        if self.store is not None:
            s = self.store
            lines.append(
                f"store: {s['backend']!r} cold fit "
                f"{s['cold_fit_seconds'] * 1e3:.0f} ms vs warm restore "
                f"{s['warm_restore_seconds'] * 1e3:.1f} ms — "
                f"{s['speedup']:.0f}x restart speedup "
                f"(floor {s['min_speedup_asserted']:.1f}x), "
                "prediction parity asserted vs the in-memory model"
            )
        if self.workers:
            wb = self.workers
            lines.append(
                f"\nworkers: model={wb['model']!r} shards={wb['shards']} "
                f"at a {wb['deadline_ms']:.0f} ms deadline "
                f"(cpu_count={wb['cpu_count']}, "
                f"shm={'yes' if wb['shm_available'] else 'no'})"
            )
            for leg in wb["legs"]:
                label = (
                    "threads"
                    if leg["workers"] == 0
                    else f"{leg['workers']} proc"
                )
                lines.append(
                    f"  {label:>8}: {leg['seconds']:7.3f} s "
                    f"({leg['requests_per_second']:9.0f} req/s, "
                    f"respawns={leg['respawns']})"
                )
            head = wb["headline"]
            speed = head["speedup_vs_threads"]
            lines.append(
                "  headline: "
                + (
                    "n/a (no worker leg ran)"
                    if speed is None
                    else f"{speed:.2f}x over the thread front end "
                    f"with {head['workers']} workers"
                )
                + (
                    f" — floor {head['min_speedup_asserted']:.1f}x enforced"
                    if head["floor_enforced"]
                    else " — floor not enforced "
                    "(needs >=2 cores, shared memory, and a >=2-worker leg)"
                )
            )
        if self.quant:
            q = self.quant
            head = q["headline"]
            lines.append(
                f"\nquant: {q['n_points']} x {q['n_aps']} map, "
                f"{q['n_bins']} bins, k={q['k']}, refine={q['refine']}"
            )
            lines.append(
                f"  float32 scan: {q['baseline']['seconds']:7.3f} s "
                f"({q['baseline']['requests_per_second']:7.0f} req/s, "
                f"{q['baseline']['bytes_per_fingerprint']:.0f} B/fp)"
            )
            lines.append(
                f"  uint8 scan  : {q['quant']['seconds']:7.3f} s "
                f"({q['quant']['requests_per_second']:7.0f} req/s, "
                f"{q['quant']['bytes_per_fingerprint']:.0f} B/fp)"
            )
            lines.append(
                f"  headline: {head['speedup_vs_float32']:.2f}x req/s "
                f"(floor {head['min_speedup_asserted']:.1f}x"
                + ("" if head["floor_enforced"] else ", not enforced")
                + f"), recall@k {head['recall_at_k']:.4f} "
                f"(floor {head['min_recall_asserted']:.2f}), "
                f"{head['bytes_ratio']:.2f}x scan bytes "
                f"(ceiling {head['max_bytes_ratio_asserted']:.2f}x); "
                f"position error {q['quant_error_m']:.2f} m vs oracle "
                f"{q['oracle_error_m']:.2f} m "
                f"(delta {q['error_delta_m']:+.3f} m)"
            )
        if self.embed:
            e = self.embed
            head = e["headline"]
            lines.append(
                f"\nembed: {e['n_points']} x {e['n_aps']} map -> "
                f"{e['n_components']}-dim {e['embedder']!r} embedding, "
                f"k={e['k']}, {e['n_queries']} queries"
            )
            for label, leg in (("raw kNN ", e["raw"]), ("embed-knn", e["embed"])):
                lines.append(
                    f"  {label}: {leg['seconds']:7.3f} s "
                    f"({leg['requests_per_second']:7.0f} req/s, "
                    f"error {leg['error_m']:.2f} m, "
                    f"recall@k {leg['recall_at_k']:.3f}, "
                    f"fit {leg['fit_seconds']:.1f} s)"
                )
            lines.append(
                f"  headline: {head['speedup_vs_raw']:.2f}x req/s over raw "
                f"kNN (floor {head['min_speedup_asserted']:.1f}x"
                + ("" if head["floor_enforced"] else ", not enforced")
                + f"), error ratio {head['error_ratio_vs_raw']:.3f} "
                f"(ceiling {head['max_error_ratio_asserted']:.2f}), "
                f"recall ratio {head['recall_ratio_vs_raw']:.3f} "
                f"(floor {head['min_recall_ratio_asserted']:.2f})"
            )
        if self.resilience:
            r = self.resilience
            f, o = r["faults"], r["outcomes"]
            lines.append(
                f"\nresilience: {r['queries']} chaos queries through "
                f"{r['workers']} workers "
                f"(shm={'yes' if r['shm_available'] else 'no'}, "
                f"max_pending={r['max_pending']})"
            )
            lines.append(
                f"  faults  : kills={f['kills']} stalls={f['stalls']} "
                f"slot_corruptions={f['slot_corruptions']} "
                f"store_corruptions={f['store_corruptions']} "
                f"delayed_batches={f['delayed_batches']}"
            )
            lines.append(
                f"  outcomes: answered={o['answered']} shed={o['shed']} "
                f"failed={o['failed']} hung={o['hung']}; "
                f"respawns={r['pool']['respawns']} "
                f"heals={r['pool']['store_heals']} "
                f"trips={r['breaker']['trips']} "
                f"failovers={r['executor']['failovers']} "
                f"(breaker now {r['breaker']['state']})"
            )
            head = r["headline"]
            lines.append(
                f"  headline: availability {head['availability']:.4f} "
                f"(floor {head['min_availability_asserted']:.2f}"
                + ("" if head["floor_enforced"] else ", not enforced")
                + f"), parity on all answered requests "
                f"{'ok' if head['parity_ok'] else 'FAILED'}, "
                f"hot-tenant shed rate {r['shed']['hot_rate']:.2f} vs "
                f"lightest {r['shed']['light_rate']:.2f} "
                f"(fairness {'ok' if head['fairness_ok'] else 'INVERTED'})"
            )
        if self.sessions:
            s = self.sessions
            t, p, rec = s["throughput"], s["parity"], s["recovery"]
            head = s["headline"]
            lines.append(
                f"\nsessions: {s['users']} concurrent {s['engine']!r} "
                f"tracks x {s['ticks_per_user']} ticks "
                f"({s['samples_per_segment']} samples/segment, "
                f"batch={s['batch_size']}, {s['producers']} producers)"
            )
            lines.append(
                f"  throughput: {t['seconds']:7.3f} s "
                f"({t['tracks_per_second']:8.0f} ticks/s across sessions, "
                f"{t['n_batches']} batches, fill {t['mean_batch_fill']:.1f})"
            )
            lines.append(
                f"  parity    : served RMSE {p['served_rmse_m']:.2f} m vs "
                f"oracle {p['oracle_rmse_m']:.2f} m "
                f"(delta {p['rmse_delta_m']:.1f} m, "
                f"max |delta| {p['max_abs_delta_m']:.1f} m)"
            )
            lines.append(
                f"  recovery  : {rec['checkpointed']} checkpointed, "
                f"{rec['restored']} restored after restart, "
                f"{rec['lost_tracks']} lost; resumed parity "
                f"{'ok' if rec['resumed_parity_ok'] else 'FAILED'}"
            )
            lines.append(
                f"  headline: {head['tracks_per_second']:.0f} ticks/s over "
                f"{head['concurrent_sessions']} sessions "
                f"(floor {head['min_tracks_per_second_asserted']:.0f}"
                + ("" if head["floor_enforced"] else ", not enforced")
                + f"), RMSE delta {head['rmse_delta_m']:.1f} m vs the "
                f"offline oracle, {head['lost_tracks']} lost tracks"
            )
        return "\n".join(lines)


def _async_leg(
    estimator,
    queries: np.ndarray,
    oracle_xy: np.ndarray,
    deadline_ms: float,
    preset: ServePreset,
    batch_size: int,
    producers: int,
    executor_factory=None,
) -> dict:
    """One deadline sweep point, median-of-``preset.repeats`` runs.

    Every run hammers a fresh front end and checks parity; the reported
    record is the run with the median elapsed time (scheduler-noise
    shielding — see :class:`ServePreset`), counters included.  With
    ``executor_factory`` each run's front end uses a fresh executor from
    the factory (the workers block) instead of the thread path.
    """
    runs = [
        _async_run(
            estimator, queries, oracle_xy, deadline_ms, preset, batch_size,
            producers, executor_factory=executor_factory,
        )
        for _ in range(max(preset.repeats, 1))
    ]
    runs.sort(key=lambda leg: leg["seconds"])
    return runs[len(runs) // 2]


def _async_run(
    estimator,
    queries: np.ndarray,
    oracle_xy: np.ndarray,
    deadline_ms: float,
    preset: ServePreset,
    batch_size: int,
    producers: int,
    executor_factory=None,
) -> dict:
    """One measured pass: producer threads through a fresh front end."""
    from repro.serving import ServingFrontend

    if executor_factory is None:
        frontend = ServingFrontend(
            estimator,
            batch_size=batch_size,
            deadline_ms=deadline_ms,
            max_pending=preset.max_pending,
            overflow="block",
        )
    else:
        frontend = ServingFrontend(
            executor=executor_factory(),
            batch_size=batch_size,
            deadline_ms=deadline_ms,
            max_pending=preset.max_pending,
            overflow="block",
        )
    tickets: "list" = [None] * len(queries)
    errors: "list[BaseException]" = []

    def producer(lane: int) -> None:
        try:
            for i in range(lane, len(queries), producers):
                tickets[i] = frontend.submit(queries[i])
        except BaseException as error:  # surfaced after join
            errors.append(error)

    threads = [
        threading.Thread(target=producer, args=(lane,), daemon=True)
        for lane in range(producers)
    ]
    tic = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    frontend.close(drain=True)
    if errors:
        raise errors[0]  # before the gather, which would mask this
    coordinates = np.vstack([t.result().coordinates for t in tickets])
    elapsed = time.perf_counter() - tic

    parity_ok = bool(
        np.allclose(coordinates, oracle_xy, rtol=0.0, atol=1e-9)
    )
    if not parity_ok:
        worst = float(np.abs(coordinates - oracle_xy).max())
        raise ServeParityError(
            f"async predictions diverge from the synchronous oracle at "
            f"deadline {deadline_ms} ms (max |Δ| {worst:.3e} m)"
        )
    stats = frontend.stats()
    latencies = np.array([t.latency_s for t in tickets]) * 1e3
    return {
        "deadline_ms": float(deadline_ms),
        "seconds": float(elapsed),
        "requests_per_second": float(len(queries) / elapsed),
        "n_batches": int(stats.batches),
        "mean_batch_fill": float(stats.mean_batch_fill),
        "n_timeouts": int(stats.timeouts),
        "mean_latency_ms": float(latencies.mean()),
        "p95_latency_ms": float(np.percentile(latencies, 95)),
        "parity_ok": parity_ok,
    }


def serve_workload(
    preset: str, seed: int = 42
) -> "tuple[ServePreset, object, np.ndarray]":
    """(preset config, training radio map, query matrix) for one preset.

    The single definition of the serving workload, shared by the bench
    and the ``snapshot``/``warm-serve`` CLI commands — both sides must
    synthesize byte-identical datasets so the dataset fingerprint (and
    with it every cache/store key) matches across processes.
    """
    from repro.data import generate_uji_like

    try:
        config = PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset!r}; choices: {sorted(PRESETS)}"
        ) from None
    dataset = generate_uji_like(
        n_spots_per_building=config.n_spots_per_building,
        measurements_per_spot=config.measurements_per_spot,
        n_aps_per_floor=config.n_aps_per_floor,
        seed=seed,
    )
    train, test = dataset.split((0.8, 0.2), rng=seed + 1)
    rng = np.random.default_rng(seed + 2)
    queries = test.rssi[rng.integers(0, len(test), size=config.n_queries)]
    return config, train, queries


#: Backend measured by the ``--store`` restart leg: the paper's model,
#: whose seconds-scale cold fit is exactly what warm-starting amortizes.
STORE_LEG_MODEL = "noble"


def _store_leg(
    train,
    queries: np.ndarray,
    store_dir: "str | os.PathLike",
    min_speedup: float,
) -> dict:
    """Cold-start vs warm-start restart comparison through the store.

    Fits the ``noble`` backend through a store-backed
    :class:`~repro.serving.ModelCache` (write-through), then simulates a
    process restart with a *fresh* cache over the same store: the second
    ``get_or_fit`` must resolve from disk (``disk_hits == 1``), produce
    bit-identical predictions, and restore at least ``min_speedup``
    times faster than the cold fit.
    """
    from repro.core.persistence import ModelStore
    from repro.serving import ModelCache, create, dataset_fingerprint, params_key

    store = ModelStore(store_dir)
    # a previous bench run may have left this key's artifact behind —
    # drop it so the cold leg measures a real fit, not a disk restore
    stale = store.path_for(
        STORE_LEG_MODEL,
        dataset_fingerprint(train),
        params_key(create(STORE_LEG_MODEL).params),
    )
    if os.path.exists(stale):
        os.unlink(stale)
    cold_cache = ModelCache(capacity=2, store=store)
    tic = time.perf_counter()
    fitted = cold_cache.get_or_fit(STORE_LEG_MODEL, train)
    cold_seconds = time.perf_counter() - tic
    if cold_cache.stats().misses != 1:
        raise AssertionError(
            "store leg: the cold-start cache did not actually fit "
            f"(stats: {cold_cache.stats()})"
        )
    oracle_xy = fitted.predict_batch(queries).coordinates

    warm_cache = ModelCache(capacity=2, store=store)  # simulated restart
    tic = time.perf_counter()
    restored = warm_cache.get_or_fit(STORE_LEG_MODEL, train)
    warm_seconds = time.perf_counter() - tic
    if warm_cache.stats().disk_hits != 1:
        raise AssertionError(
            "store leg: the restarted cache re-fit instead of restoring "
            f"from the store (stats: {warm_cache.stats()})"
        )
    restored_xy = restored.predict_batch(queries).coordinates
    parity_ok = bool(np.array_equal(restored_xy, oracle_xy))
    if not parity_ok:
        worst = float(np.abs(restored_xy - oracle_xy).max())
        raise ServeParityError(
            f"restored model predictions diverge from the in-memory fit "
            f"(max |Δ| {worst:.3e} m)"
        )
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    if min_speedup > 0 and speedup < min_speedup:
        raise ServeSpeedupError(
            f"warm restore is only {speedup:.1f}x faster than the cold "
            f"fit, below the asserted minimum {min_speedup:.1f}x"
        )
    return {
        "backend": STORE_LEG_MODEL,
        "cold_fit_seconds": float(cold_seconds),
        "warm_restore_seconds": float(warm_seconds),
        "speedup": float(speedup),
        "parity_ok": parity_ok,
        "min_speedup_asserted": float(min_speedup),
    }


#: Backend measured by the workers block: the shard workers serve the
#: ``knn`` radio-map scan (the only backend with a sharded index).
WORKERS_LEG_MODEL = "knn"


def _workers_block(
    config: ServePreset,
    train,
    queries: np.ndarray,
    store_dir: "str | os.PathLike | None",
    workers: "tuple[int, ...]",
    min_speedup: float,
    batch_size: int,
    producers: int,
    deadline_ms: float,
) -> dict:
    """Thread front end vs N shard-worker processes, same workload.

    Fits a *sharded* ``knn`` estimator (through a store-backed cache,
    which write-through-spills the artifact the workers warm-start
    from), then measures the headline deadline once per worker count:
    ``workers == 0`` is the plain thread front end over the very same
    sharded estimator, ``workers > 0`` runs the batches through a
    :class:`~repro.serving.workers.ShardWorkerPool` shared across the
    leg's repeats.  Every leg asserts prediction parity against the
    synchronous oracle; the headline ratio (best worker leg over the
    thread leg) is asserted against ``min_speedup`` only when the
    machine can actually express it — ≥ 2 cores, working shared
    memory, and a ≥ 2-worker leg (``floor_enforced``).
    """
    import shutil
    import tempfile

    from repro.core.persistence import ModelStore
    from repro.serving import ModelCache, dataset_fingerprint
    from repro.serving.shm import shm_available
    from repro.serving.workers import ShardWorkerPool, WorkerPoolExecutor

    workers = tuple(sorted({int(w) for w in workers} | {0}))
    if any(w < 0 for w in workers):
        raise ValueError(f"worker counts must be >= 0, got {workers}")
    available = shm_available()
    cpu_count = os.cpu_count() or 1

    cleanup_dir = None
    if store_dir is None:
        cleanup_dir = store_dir = tempfile.mkdtemp(
            prefix="repro-serve-bench-workers-"
        )
    try:
        store = ModelStore(store_dir)
        fingerprint = dataset_fingerprint(train)
        cache = ModelCache(capacity=2, store=store)
        tic = time.perf_counter()
        estimator = cache.get_or_fit(
            WORKERS_LEG_MODEL,
            train,
            fingerprint=fingerprint,
            shards=config.workers_shards,
            partitioner="kmeans",
        )
        fit_seconds = time.perf_counter() - tic
        oracle_xy = estimator.predict_batch(queries).coordinates

        legs: "list[dict]" = []
        for count in workers:
            if count == 0:
                leg = _async_leg(
                    estimator, queries, oracle_xy, deadline_ms, config,
                    batch_size, producers,
                )
                leg["respawns"] = 0
            elif not available:
                continue  # recorded via shm_available; thread leg stands
            else:
                with ShardWorkerPool(
                    estimator,
                    store,
                    fingerprint=fingerprint,
                    n_workers=count,
                    max_rows=batch_size,
                ) as pool:
                    leg = _async_leg(
                        estimator, queries, oracle_xy, deadline_ms, config,
                        batch_size, producers,
                        executor_factory=lambda: WorkerPoolExecutor(pool),
                    )
                    leg["respawns"] = int(pool.respawns)
            del leg["deadline_ms"]  # block-level: one deadline for all legs
            legs.append({"workers": int(count), **leg})

        thread_leg = legs[0]
        worker_legs = [leg for leg in legs if leg["workers"] > 0]
        best = (
            max(worker_legs, key=lambda leg: leg["requests_per_second"])
            if worker_legs
            else None
        )
        speedup = (
            None
            if best is None
            else float(
                best["requests_per_second"]
                / thread_leg["requests_per_second"]
            )
        )
        floor_enforced = bool(
            min_speedup > 0
            and available
            and cpu_count >= 2
            and any(leg["workers"] >= 2 for leg in worker_legs)
        )
        if floor_enforced and speedup < min_speedup:
            raise ServeSpeedupError(
                f"process-backed serving is only {speedup:.2f}x the thread "
                f"front end at the {deadline_ms:.0f} ms deadline, below "
                f"the asserted minimum {min_speedup:.2f}x "
                f"(cpu_count={cpu_count})"
            )
        return {
            "model": WORKERS_LEG_MODEL,
            "shards": int(config.workers_shards),
            "deadline_ms": float(deadline_ms),
            "fit_seconds": float(fit_seconds),
            "cpu_count": int(cpu_count),
            "shm_available": bool(available),
            "legs": legs,
            "headline": {
                "workers": None if best is None else int(best["workers"]),
                "speedup_vs_threads": speedup,
                "min_speedup_asserted": float(min_speedup),
                "floor_enforced": floor_enforced,
            },
        }
    finally:
        if cleanup_dir is not None:
            shutil.rmtree(cleanup_dir, ignore_errors=True)


def _median_seconds(fn, repeats: int) -> "tuple[float, object]":
    """Median elapsed seconds of ``repeats`` calls, plus one result."""
    times, result = [], None
    for _ in range(max(int(repeats), 1)):
        tic = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - tic)
    return sorted(times)[len(times) // 2], result


def _monolithic_float32_scan(
    points32: np.ndarray, sq_norms: np.ndarray, queries32: np.ndarray, k: int
) -> np.ndarray:
    """The pre-chunking serving scan this PR's kernel replaced.

    Materializes full ``(block, N)`` float32 distance matrices exactly
    like the old monolithic ``_brute_query`` did, so the quant block's
    baseline measures the code path the uint8 + cache-blocked scan is
    claimed to beat — not a strawman.
    """
    block = max(1, int(2e7) // max(len(points32), 1))
    out = np.empty((len(queries32), k), dtype=int)
    for start in range(0, len(queries32), block):
        q = queries32[start : start + block]
        d2 = (
            np.sum(q**2, axis=1)[:, None]
            - 2.0 * q @ points32.T
            + sq_norms
        )
        part = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
        pd = np.take_along_axis(d2, part, axis=1)
        order = np.argsort(pd, axis=1, kind="stable")
        out[start : start + len(q)] = np.take_along_axis(part, order, axis=1)
    return out


def _quant_block(config: ServePreset, seed: int, min_speedup: float) -> dict:
    """Quantized uint8 radio-map scan vs the monolithic float32 scan.

    Synthesizes a UJI-like map at the preset's quant scale, then
    measures batched top-k queries through two scans of the *same*
    normalized-signal radio map:

    - **baseline** — the monolithic float32 brute scan serving used
      before the cache-blocked kernel landed
      (:func:`_monolithic_float32_scan`);
    - **quant** — a binned :class:`~repro.sharding.ShardedKNNIndex`
      whose scan state is uint8 codes (1/4 the float32 bytes), queried
      through the ADC shortlist + exact-rerank two-stage plan.

    Asserts three floors: req/s speedup over the baseline (enforced
    only when ``min_speedup > 0`` — the smoke map is too small for a
    stable ratio), top-k recall against the full-precision oracle
    neighbor sets, and the quant/float32 scan-state bytes ratio.  Also
    reports the end metric that actually matters for localization:
    inverse-distance-weighted position error of the quantized neighbors
    vs the oracle's, on the same queries.
    """
    from repro.data import generate_uji_like
    from repro.manifold.chunked import chunked_argkmin
    from repro.quantization import FeatureBinner
    from repro.sharding import ShardedKNNIndex

    dataset = generate_uji_like(
        n_spots_per_building=config.quant_spots_per_building,
        measurements_per_spot=config.quant_measurements_per_spot,
        n_aps_per_floor=config.quant_aps_per_floor,
        seed=seed + 3,
    )
    points = dataset.normalized_signals()
    coords = dataset.coordinates
    k = min(int(config.quant_k), len(points))
    rng = np.random.default_rng(seed + 4)
    source_rows = rng.integers(0, len(points), size=int(config.quant_queries))
    # plausible online scans: stored fingerprints re-observed with ~1 dB
    # of measurement jitter (0.01 in normalized signal units)
    queries = points[source_rows] + rng.normal(
        0.0, 0.01, size=(len(source_rows), points.shape[1])
    )
    points32 = np.ascontiguousarray(points, dtype=np.float32)
    queries32 = queries.astype(np.float32)
    sq32 = np.sum(points32**2, axis=1)

    binner = FeatureBinner(
        n_bins=config.quant_bins, strategy="uniform"
    ).fit(points)
    tic = time.perf_counter()
    index = ShardedKNNIndex(
        points,
        n_shards=1,
        partitioner="chunk",
        binner=binner,
        refine=config.quant_refine,
    )
    build_seconds = time.perf_counter() - tic

    # full-precision oracle: exact float64 top-k (recall + error anchor)
    oracle_d, oracle_i = chunked_argkmin(queries, points, k)

    baseline_seconds, baseline_i = _median_seconds(
        lambda: _monolithic_float32_scan(points32, sq32, queries32, k),
        config.repeats,
    )
    quant_seconds, quant_top = _median_seconds(
        lambda: index.query(queries32, k=k), config.repeats
    )
    quant_d, quant_i = quant_top

    recall = float(
        np.mean(
            [
                len(set(quant_i[i]) & set(oracle_i[i])) / k
                for i in range(len(oracle_i))
            ]
        )
    )

    def _idw_error(distances: np.ndarray, indices: np.ndarray) -> float:
        weights = 1.0 / (distances + 1e-12)
        weights /= weights.sum(axis=1, keepdims=True)
        estimate = np.sum(coords[indices] * weights[:, :, None], axis=1)
        truth = coords[source_rows]
        return float(np.mean(np.linalg.norm(estimate - truth, axis=1)))

    oracle_error = _idw_error(oracle_d, oracle_i)
    quant_error = _idw_error(quant_d, quant_i)

    n_aps = points.shape[1]
    baseline_bytes = float(points32.itemsize * n_aps)
    quant_bytes = float(index.shards_[0].codes.itemsize * n_aps)
    bytes_ratio = quant_bytes / baseline_bytes
    speedup = (len(queries) / quant_seconds) / (
        len(queries) / baseline_seconds
    )

    floor_enforced = min_speedup > 0
    if floor_enforced and speedup < min_speedup:
        raise ServeSpeedupError(
            f"quantized scan is only {speedup:.2f}x the monolithic "
            f"float32 scan on the {len(points)}-point map, below the "
            f"asserted minimum {min_speedup:.2f}x"
        )
    if config.quant_min_recall > 0 and recall < config.quant_min_recall:
        raise ServeParityError(
            f"quantized scan recall@{k} is {recall:.4f} against the "
            f"full-precision oracle, below the asserted minimum "
            f"{config.quant_min_recall:.2f}"
        )
    if (
        config.quant_max_bytes_ratio > 0
        and bytes_ratio > config.quant_max_bytes_ratio
    ):
        raise ServeSpeedupError(
            f"quantized scan state is {bytes_ratio:.2f}x the float32 "
            f"bytes per fingerprint, above the asserted ceiling "
            f"{config.quant_max_bytes_ratio:.2f}x"
        )
    return {
        "n_points": int(len(points)),
        "n_aps": int(n_aps),
        "n_queries": int(len(queries)),
        "k": int(k),
        "n_bins": int(config.quant_bins),
        "refine": int(index.refine),
        "build_seconds": float(build_seconds),
        "baseline": {
            "seconds": float(baseline_seconds),
            "requests_per_second": float(len(queries) / baseline_seconds),
            "bytes_per_fingerprint": baseline_bytes,
        },
        "quant": {
            "seconds": float(quant_seconds),
            "requests_per_second": float(len(queries) / quant_seconds),
            "bytes_per_fingerprint": quant_bytes,
        },
        "recall_at_k": recall,
        "oracle_error_m": oracle_error,
        "quant_error_m": quant_error,
        "error_delta_m": float(quant_error - oracle_error),
        "headline": {
            "speedup_vs_float32": float(speedup),
            "min_speedup_asserted": float(min_speedup),
            "recall_at_k": recall,
            "min_recall_asserted": float(config.quant_min_recall),
            "bytes_ratio": float(bytes_ratio),
            "max_bytes_ratio_asserted": float(config.quant_max_bytes_ratio),
            "floor_enforced": floor_enforced,
        },
    }


def _embed_block(config: ServePreset, seed: int, min_speedup: float) -> dict:
    """Learned-embedding ``embed-knn`` serving vs raw-RSSI kNN.

    Synthesizes a *noisy* UJI-like map at the preset's embed scale
    (heavy shadowing + per-device RSSI offsets — the regime §III-C's
    learned feature space is for), fits the registry ``knn`` and
    ``embed-knn`` backends on the same training split, and serves the
    same held-out queries through both ``predict_batch`` hot paths.
    The embed leg serves the full composed feature-space pipeline the
    ``transform=`` seam ships — learned encoder, then the quantized
    index over the ``embed_components``-dim points — so the claim is
    double-ended and both ends carry floors: req/s at least
    ``min_speedup``x raw kNN (enforced only when ``min_speedup > 0`` —
    the smoke map is too small for a stable ratio) at matched neighbor
    quality (location-recall@k within ``embed_min_recall_ratio`` of
    raw, so the speedup is not bought with a degraded scan), and
    inverse-distance-weighted position error no worse than
    ``embed_max_error_ratio`` times raw kNN's.
    """
    from repro.data import generate_uji_like
    from repro.serving.registry import create

    dataset = generate_uji_like(
        n_spots_per_building=config.embed_spots_per_building,
        measurements_per_spot=config.embed_measurements_per_spot,
        n_aps_per_floor=config.embed_aps_per_floor,
        shadowing_sigma=config.embed_shadowing_sigma,
        device_offset_sigma=config.embed_device_offset_sigma,
        seed=seed + 5,
    )
    train, test = dataset.split((0.8, 0.2), rng=seed + 6)
    k = min(int(config.embed_k), len(train))
    rng = np.random.default_rng(seed + 7)
    rows = rng.integers(0, len(test), size=int(config.embed_queries))
    queries = test.rssi[rows]
    truth = test.coordinates[rows]
    radius = float(config.embed_recall_radius_m)

    embed_params = {
        "n_components": int(config.embed_components),
        "epochs": int(config.embed_epochs),
        "seed": seed,
    }
    if config.embed_embedder == "mlp":
        embed_params["hidden"] = tuple(config.embed_hidden)
        embed_params["pretrain_epochs"] = int(config.embed_pretrain_epochs)

    def _leg(name: str, **params) -> dict:
        estimator = create(name, **params)
        tic = time.perf_counter()
        estimator.fit(train)
        fit_seconds = time.perf_counter() - tic
        seconds, prediction = _median_seconds(
            lambda: estimator.predict_batch(queries), config.repeats
        )
        error = float(
            np.mean(
                np.linalg.norm(prediction.coordinates - truth, axis=1)
            )
        )
        # location recall@k — did any returned neighbor land within the
        # recall radius of the true position?  Each backend scans its
        # own feature space, so they are compared on the neighbor
        # quality that actually matters for localization.
        model = estimator.model_
        _, indices = model.index_.query(
            model._signals(estimator._as_dataset(queries)), k=k
        )
        neighbor_dist = np.linalg.norm(
            train.coordinates[indices] - truth[:, None, :], axis=2
        )
        recall = float(np.mean(np.any(neighbor_dist <= radius, axis=1)))
        return {
            "fit_seconds": float(fit_seconds),
            "seconds": float(seconds),
            "requests_per_second": float(len(queries) / seconds),
            "error_m": error,
            "recall_at_k": recall,
        }

    raw = _leg("knn", k=k, weighted=True)
    embed = _leg(
        "embed-knn",
        k=k,
        weighted=True,
        embedder=config.embed_embedder,
        embed_params=embed_params,
        quantize_bins=(
            int(config.embed_bins) if config.embed_bins > 0 else None
        ),
    )

    speedup = embed["requests_per_second"] / raw["requests_per_second"]
    error_ratio = (
        embed["error_m"] / raw["error_m"] if raw["error_m"] > 0 else 0.0
    )
    recall_ratio = (
        embed["recall_at_k"] / raw["recall_at_k"]
        if raw["recall_at_k"] > 0
        else 1.0
    )
    floor_enforced = min_speedup > 0
    if floor_enforced and speedup < min_speedup:
        raise ServeSpeedupError(
            f"embed-knn serves only {speedup:.2f}x the raw-RSSI kNN "
            f"req/s on the {len(train)}-point map, below the asserted "
            f"minimum {min_speedup:.2f}x"
        )
    if (
        config.embed_max_error_ratio > 0
        and error_ratio > config.embed_max_error_ratio
    ):
        raise ServeParityError(
            f"embed-knn position error is {error_ratio:.3f}x raw kNN's "
            f"({embed['error_m']:.2f} m vs {raw['error_m']:.2f} m), above "
            f"the asserted ceiling {config.embed_max_error_ratio:.2f}x"
        )
    if (
        config.embed_min_recall_ratio > 0
        and recall_ratio < config.embed_min_recall_ratio
    ):
        raise ServeParityError(
            f"embed-knn location-recall@{k} is {recall_ratio:.3f}x raw "
            f"kNN's ({embed['recall_at_k']:.3f} vs "
            f"{raw['recall_at_k']:.3f}), below the asserted floor "
            f"{config.embed_min_recall_ratio:.2f}x — the speedup would "
            "not be at matched recall"
        )
    return {
        "n_points": int(len(train)),
        "n_aps": int(train.n_aps),
        "n_queries": int(len(queries)),
        "k": int(k),
        "embedder": str(config.embed_embedder),
        "n_components": int(config.embed_components),
        "n_bins": int(config.embed_bins),
        "recall_radius_m": radius,
        "raw": raw,
        "embed": embed,
        "headline": {
            "speedup_vs_raw": float(speedup),
            "min_speedup_asserted": float(min_speedup),
            "error_ratio_vs_raw": float(error_ratio),
            "max_error_ratio_asserted": float(config.embed_max_error_ratio),
            "recall_ratio_vs_raw": float(recall_ratio),
            "min_recall_ratio_asserted": float(
                config.embed_min_recall_ratio
            ),
            "floor_enforced": floor_enforced,
        },
    }


#: Backend the chaos harness serves (sharded, so the worker tier — the
#: fault surface under test — actually runs).
CHAOS_LEG_MODEL = "knn"


def _resilience_block(
    config: ServePreset,
    train,
    queries: np.ndarray,
    seed: int,
    min_availability: float,
) -> dict:
    """Chaos harness: the serving tier under a seeded fault storm.

    Runs the preset's chaos workload through a fully armored front end
    — :class:`~repro.serving.resilience.FairShedAdmission` load
    shedding, a :class:`~repro.serving.resilience.CircuitBreaker`-gated
    :class:`~repro.serving.resilience.FallbackExecutor` degrading the
    shard-worker tier to the in-process thread path — while a seeded
    :class:`~repro.serving.faults.FaultInjector` kills workers, stalls
    heartbeats (SIGSTOP past the heartbeat timeout), corrupts a store
    artifact mid-run (forcing the quarantine + warm-start self-heal
    path on the next respawn), smashes result-ring slots, and slows a
    fraction of fallback batches.

    Two sub-phases share one front end and one outcome ledger:

    1. **overload** — a single-threaded submission burst of half the
       chaos queries against a small ``chaos_max_pending`` bound, with
       a hot tenant offering ~10x each light tenant's load; exercises
       weighted-fair shedding (the hot tenant absorbs the evictions).
    2. **fault waves** — the remaining queries in waves, one injected
       fault per wave, each wave drained before the next fault lands
       so recovery is actually exercised, not skipped.  The respawn
       token bucket is deliberately tight (``chaos_respawn_budget``),
       so the kill storm exhausts it, batches fail over to the thread
       path, and the breaker trips — the degradation chain end to end.

    Every submitted request must end answered-with-parity or cleanly
    shed: raises :class:`ServeParityError` on any hung ticket or
    oracle divergence and :class:`ServeSpeedupError` when availability
    falls below ``min_availability``.  Without shared memory the storm
    degrades to the thread path alone (process faults skipped,
    recorded via ``shm_available``); the floors still apply.
    """
    import shutil
    import tempfile

    from repro.core.persistence import ModelStore
    from repro.serving import ModelCache, dataset_fingerprint
    from repro.serving.batcher import MicroBatcher
    from repro.serving.faults import DelayedEstimator, FaultInjector
    from repro.serving.frontend import (
        ServingFrontend,
        ShedError,
        _BatcherExecutor,
    )
    from repro.serving.resilience import (
        CircuitBreaker,
        FairShedAdmission,
        FallbackExecutor,
    )
    from repro.serving.shm import shm_available
    from repro.serving.workers import ShardWorkerPool, WorkerPoolExecutor

    available = shm_available()
    rng = np.random.default_rng(seed + 7)
    n_queries = int(config.chaos_queries)
    chaos_q = queries[rng.integers(0, len(queries), size=n_queries)]
    # hot tenant offers 10 of every 13 requests; three light tenants
    # share the rest — the fairness claim is that *they* stay admitted
    tenant_of = [
        "hot" if i % 13 < 10 else f"light{i % 3}" for i in range(n_queries)
    ]

    cleanup_dir = tempfile.mkdtemp(prefix="repro-serve-bench-chaos-")
    pool = None
    injector = FaultInjector(seed=seed, stall_s=config.chaos_stall_s)
    try:
        store = ModelStore(cleanup_dir)
        fingerprint = dataset_fingerprint(train)
        cache = ModelCache(capacity=2, store=store)
        estimator = cache.get_or_fit(
            CHAOS_LEG_MODEL,
            train,
            fingerprint=fingerprint,
            shards=config.workers_shards,
            partitioner="kmeans",
        )
        oracle_xy = estimator.predict_batch(chaos_q).coordinates

        breaker = CircuitBreaker(
            failure_budget=2,
            window_s=4.0,
            cooldown_s=0.25,
            cooldown_cap_s=1.0,
            seed=seed,
        )
        delayed = DelayedEstimator(
            estimator,
            rate=config.chaos_delay_rate,
            delay_s=config.chaos_delay_s,
            seed=seed,
        )
        fallback = _BatcherExecutor(
            MicroBatcher(delayed, batch_size=config.batch_size)
        )
        if available:
            pool = ShardWorkerPool(
                estimator,
                store,
                fingerprint=fingerprint,
                n_workers=config.chaos_workers,
                max_rows=config.batch_size,
                heartbeat_timeout_s=config.chaos_heartbeat_timeout_s,
                respawn_budget=config.chaos_respawn_budget,
                respawn_window_s=config.chaos_respawn_window_s,
                seed=seed,
            )
            executor = FallbackExecutor(
                WorkerPoolExecutor(pool), fallback, breaker=breaker
            )
        else:
            executor = fallback
        frontend = ServingFrontend(
            executor=executor,
            batch_size=config.batch_size,
            deadline_ms=10.0,
            max_pending=config.chaos_max_pending,
            admission=FairShedAdmission(),
        )

        outcomes = {"answered": 0, "shed": 0, "failed": 0, "hung": 0}
        tickets: "list[tuple[int, object]]" = []

        def submit_range(indices) -> None:
            for i in indices:
                try:
                    tickets.append(
                        (i, frontend.submit(chaos_q[i], tenant=tenant_of[i]))
                    )
                except ShedError:
                    outcomes["shed"] += 1

        def drain(budget_s: float = 60.0) -> None:
            limit = time.monotonic() + budget_s
            while time.monotonic() < limit:
                injector.resume_stalled()
                if all(ticket.done for _, ticket in tickets):
                    return
                time.sleep(0.01)

        # phase 1: overload burst — fairness under pressure, no faults
        overload_n = n_queries // 2
        submit_range(range(overload_n))

        # phase 2: fault waves over the remaining queries.  Stalls and
        # the store corruption come before the kill storm: a stall needs
        # a live worker to freeze, and corrupting the artifact first
        # makes the very next respawn warm-start through it (quarantine
        # + self-heal) while respawn tokens are still available.
        plan: "list[str | None]" = (
            ["stall"] * int(config.chaos_stalls)
            + ["corrupt_store"] * int(config.chaos_store_corruptions)
            + ["kill"] * int(config.chaos_kills)
            + [None]  # recovery wave: no fault, just traffic
        )
        if pool is None:
            plan = [None]
        wave = max(1, (n_queries - overload_n) // len(plan))
        cursor = overload_n
        for step, fault in enumerate(plan):
            if fault == "kill":
                injector.kill_worker(pool)
                injector.corrupt_result_slot(pool)  # best-effort slot rot
            elif fault == "stall":
                injector.stall_worker(pool)
            elif fault == "corrupt_store":
                injector.corrupt_store_artifact(store)
            stop = n_queries if step == len(plan) - 1 else cursor + wave
            submit_range(range(cursor, stop))
            cursor = stop
            drain()

        injector.resume_stalled(force=True)
        frontend.close(drain=True)

        mismatches = 0
        for i, ticket in tickets:
            if not ticket.done:
                outcomes["hung"] += 1
                continue
            try:
                xy = ticket.result().coordinates[0]
            except ShedError:  # evicted by fair shedding after admission
                outcomes["shed"] += 1
            except Exception:
                outcomes["failed"] += 1
            else:
                outcomes["answered"] += 1
                if not np.allclose(xy, oracle_xy[i], rtol=0.0, atol=1e-9):
                    mismatches += 1

        stats = frontend.stats()
        shed_rates = {}
        for tenant, counters in sorted(stats.tenants.items()):
            total = counters["admitted"] + counters["shed"]
            shed_rates[tenant] = (
                float(counters["shed"]) / total if total else 0.0
            )
        hot_rate = shed_rates.get("hot", 0.0)
        light_rates = [
            rate for tenant, rate in shed_rates.items() if tenant != "hot"
        ]
        light_rate = min(light_rates) if light_rates else 0.0
        fairness_ok = all(rate <= hot_rate + 1e-9 for rate in light_rates)

        availability = (
            outcomes["answered"] - mismatches + outcomes["shed"]
        ) / max(n_queries, 1)
        parity_ok = mismatches == 0
        if outcomes["hung"]:
            raise ServeParityError(
                f"{outcomes['hung']} chaos requests never resolved (hung "
                "tickets after drain-close)"
            )
        if not parity_ok:
            raise ServeParityError(
                f"{mismatches} answered chaos requests diverge from the "
                "synchronous oracle"
            )
        if min_availability > 0 and availability < min_availability:
            raise ServeSpeedupError(
                f"availability under injected faults is {availability:.4f}, "
                f"below the asserted minimum {min_availability:.2f} "
                f"(failed={outcomes['failed']}, shed={outcomes['shed']})"
            )
        return {
            "model": CHAOS_LEG_MODEL,
            "workers": int(config.chaos_workers) if available else 0,
            "shards": int(config.workers_shards),
            "shm_available": bool(available),
            "queries": int(n_queries),
            "max_pending": int(config.chaos_max_pending),
            "faults": {
                "kills": int(injector.kills),
                "stalls": int(injector.stalls),
                "slot_corruptions": int(injector.slot_corruptions),
                "store_corruptions": int(injector.store_corruptions),
                "delayed_batches": int(delayed.n_delays),
            },
            "outcomes": dict(outcomes),
            "availability": float(availability),
            "parity_ok": parity_ok,
            "pool": {
                "respawns": 0 if pool is None else int(pool.respawns),
                "corrupt_slots": (
                    0 if pool is None else int(pool.n_corrupt_slots)
                ),
                "store_heals": (
                    0 if pool is None else int(pool.n_store_heals)
                ),
            },
            "breaker": {
                "state": breaker.state,
                "trips": int(breaker.n_trips),
            },
            "executor": {
                "failovers": int(getattr(executor, "n_failovers", 0)),
                "primary_batches": int(
                    getattr(executor, "n_primary_batches", 0)
                ),
                "fallback_batches": int(
                    getattr(executor, "n_fallback_batches", 0)
                ),
            },
            "shed": {
                "rates": shed_rates,
                "hot_rate": float(hot_rate),
                "light_rate": float(light_rate),
                "fairness_ok": bool(fairness_ok),
            },
            "headline": {
                "availability": float(availability),
                "min_availability_asserted": float(min_availability),
                "hung": int(outcomes["hung"]),
                "failed": int(outcomes["failed"]),
                "parity_ok": parity_ok,
                "fairness_ok": bool(fairness_ok),
                "floor_enforced": bool(min_availability > 0),
            },
        }
    finally:
        injector.resume_stalled(force=True)
        if pool is not None:
            pool.close()
        shutil.rmtree(cleanup_dir, ignore_errors=True)


def _sessions_block(
    config: ServePreset,
    seed: int,
    min_tracks_per_s: float,
) -> dict:
    """Streaming trajectory serving: stateful sessions, three legs.

    Serves ``track_users`` concurrent dead-reckoning tracks (one
    :class:`~repro.serving.sessions.TrackingSession` per user, IMU
    segments arriving tick by tick) through the threaded
    :class:`~repro.serving.sessions.TrackingFrontend`, which
    micro-batches *across users per time step*.  The PDR engine is pure
    elementwise float64, so the parity contract is exact, not
    approximate:

    1. **throughput** — ``track_producers`` threads drive disjoint
       user groups through one front end; the headline is total
       session-ticks/sec across all concurrent tracks.
    2. **parity** — every served tick must equal the offline
       single-session oracle
       (:func:`~repro.serving.sessions.solo_trajectory`) *bitwise*;
       the reported RMSE delta must be exactly 0.0 m or
       :class:`ServeParityError` is raised.
    3. **recovery** — a second manager checkpoints every session
       through a :class:`~repro.core.persistence.ModelStore`, is
       dropped mid-workload without ``close()`` (the SIGKILL stand-in:
       no flush, only the periodic checkpoints survive), and a fresh
       manager must warm-restore **all** sessions and continue each
       trajectory to the same bitwise endpoint — zero lost tracks.

    Raises :class:`ServeSpeedupError` when ticks/sec falls below
    ``min_tracks_per_s`` (0 disables; smoke-scale workloads are too
    small for a stable rate).
    """
    import shutil
    import tempfile

    from repro.core.persistence import ModelStore
    from repro.data.imu import CampusWalkSimulator
    from repro.serving.sessions import (
        SessionManager,
        StreamingPDRTracker,
        TrackingFrontend,
        solo_trajectory,
    )

    users = int(config.track_users)
    ticks = int(config.track_ticks)
    producers = max(1, int(config.track_producers))
    sim = CampusWalkSimulator(
        samples_per_segment=int(config.track_samples_per_segment)
    )
    walk = sim.record_session(
        n_walks=1, references_per_walk=users + ticks + 1, rng=seed
    )[0]
    segments, refs, headings = walk.segments, walk.references, walk.headings
    engine = StreamingPDRTracker()
    # user u walks the route with a u-segment head start: distinct
    # per-user streams (so cross-session bleed cannot cancel out) from
    # one simulated session.
    streams = [
        [segments[u + k] for k in range(ticks)] for u in range(users)
    ]
    # ground truth: segment i ends at reference i + 1
    truth = np.stack(
        [[refs[u + k + 1] for k in range(ticks)] for u in range(users)]
    )

    # --- throughput + parity: producer threads, one threaded front end
    manager = SessionManager(engine, seed=seed)
    for u in range(users):
        manager.start_session(u, refs[u], float(headings[u]))
    frontend = TrackingFrontend(
        manager,
        batch_size=int(config.track_batch),
        deadline_ms=float(config.track_deadline_ms),
        max_pending=max(users * ticks, 1),
    )
    tickets: "list[list]" = [[] for _ in range(users)]
    groups = [list(range(users))[p::producers] for p in range(producers)]

    def produce(group: "list[int]") -> None:
        for k in range(ticks):
            for u in group:
                tickets[u].append(frontend.submit(u, imu=streams[u][k]))

    tic = time.perf_counter()
    threads = [
        threading.Thread(target=produce, args=(g,)) for g in groups if g
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    served = np.stack(
        [
            [ticket.result(60.0).coordinates[0] for ticket in user_tickets]
            for user_tickets in tickets
        ]
    )
    elapsed = time.perf_counter() - tic
    stats = frontend.stats()
    frontend.close()
    tracks_per_second = float(users * ticks / elapsed) if elapsed > 0 else 0.0

    oracle = np.stack(
        [
            solo_trajectory(
                engine,
                streams[u],
                refs[u],
                float(headings[u]),
                seed=manager.session_seed(u),
            )
            for u in range(users)
        ]
    )
    deltas = np.linalg.norm(served - oracle, axis=-1)
    max_abs_delta = float(deltas.max())
    rmse_delta = float(np.sqrt(np.mean(deltas**2)))
    served_rmse = float(
        np.sqrt(np.mean(np.linalg.norm(served - truth, axis=-1) ** 2))
    )
    oracle_rmse = float(
        np.sqrt(np.mean(np.linalg.norm(oracle - truth, axis=-1) ** 2))
    )
    parity_ok = bool(np.array_equal(served, oracle))
    if not parity_ok:
        raise ServeParityError(
            f"served session trajectories diverge from the offline "
            f"single-session oracle (RMSE delta {rmse_delta:.3e} m, "
            f"max {max_abs_delta:.3e} m)"
        )
    if min_tracks_per_s > 0 and tracks_per_second < min_tracks_per_s:
        raise ServeSpeedupError(
            f"concurrent session throughput {tracks_per_second:.0f} "
            f"ticks/s is below the asserted minimum "
            f"{min_tracks_per_s:.0f} ticks/s"
        )

    # --- recovery: checkpoint, simulated SIGKILL, warm restore
    store_root = tempfile.mkdtemp(prefix="repro-track-bench-")
    try:
        store = ModelStore(store_root)
        first = SessionManager(engine, store=store, seed=seed)
        for u in range(users):
            first.start_session(u, refs[u], float(headings[u]))
        split = max(1, ticks // 2)
        for k in range(split):
            first.step_batch([(u, streams[u][k]) for u in range(users)])
        first.checkpoint_all()
        checkpointed = first.stats().checkpoints
        # no close(): the manager is simply dropped, as a SIGKILL'd
        # process would be — recovery must come from the store alone
        resumed = SessionManager(engine, store=store, seed=seed)
        finals = None
        for k in range(split, ticks):
            finals = resumed.step_batch(
                [(u, streams[u][k]) for u in range(users)]
            )
        restored = int(resumed.stats().restored)
        lost_tracks = users - restored
        resumed_parity = finals is not None and bool(
            np.array_equal(np.asarray(finals), oracle[:, -1])
        )
        resumed.close()
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
    if lost_tracks != 0 or not resumed_parity:
        raise ServeParityError(
            f"restart recovery lost {lost_tracks} of {users} checkpointed "
            f"sessions (restored={restored}, resumed parity "
            f"{'ok' if resumed_parity else 'FAILED'})"
        )

    return {
        "engine": engine.kind,
        "users": users,
        "ticks_per_user": ticks,
        "samples_per_segment": int(config.track_samples_per_segment),
        "batch_size": int(config.track_batch),
        "producers": producers,
        "deadline_ms": float(config.track_deadline_ms),
        "throughput": {
            "seconds": float(elapsed),
            "tracks_per_second": tracks_per_second,
            "n_batches": int(stats.batches),
            "mean_batch_fill": float(stats.mean_batch_fill),
        },
        "parity": {
            "max_abs_delta_m": max_abs_delta,
            "rmse_delta_m": rmse_delta,
            "served_rmse_m": served_rmse,
            "oracle_rmse_m": oracle_rmse,
            "parity_ok": parity_ok,
        },
        "recovery": {
            "checkpointed": int(checkpointed),
            "restored": restored,
            "lost_tracks": int(lost_tracks),
            "resumed_parity_ok": resumed_parity,
        },
        "headline": {
            "tracks_per_second": tracks_per_second,
            "concurrent_sessions": users,
            "min_tracks_per_second_asserted": float(min_tracks_per_s),
            "rmse_delta_m": rmse_delta,
            "lost_tracks": int(lost_tracks),
            "parity_ok": parity_ok,
            "floor_enforced": bool(min_tracks_per_s > 0),
        },
    }


def run_serve_bench(
    preset: str = "fast",
    seed: int = 42,
    model: str = "knn",
    batch_size: "int | None" = None,
    deadlines_ms: "tuple[float, ...] | None" = None,
    producers: "int | None" = None,
    min_speedup: "float | None" = None,
    store_dir: "str | os.PathLike | None" = None,
    store_min_speedup: "float | None" = None,
    workers: "tuple[int, ...] | None" = None,
    workers_min_speedup: "float | None" = None,
    quant_min_speedup: "float | None" = None,
    embed_min_speedup: "float | None" = None,
    chaos_min_availability: "float | None" = None,
    track_min_tracks_per_s: "float | None" = None,
    **model_params,
) -> ServeBenchResult:
    """Benchmark async serving and assert parity + headline speedup.

    Raises :class:`ServeParityError` when any leg's predictions diverge
    from the synchronous oracle and :class:`ServeSpeedupError` when the
    headline-deadline throughput falls below ``min_speedup`` times the
    per-query baseline (preset default; pass 0 to disable).  With
    ``store_dir``, an additional restart leg measures cold fit vs warm
    restore of the ``noble`` backend through a
    :class:`repro.core.persistence.ModelStore` at that directory,
    asserting prediction parity and a ``store_min_speedup`` floor
    (preset default 10x).  The ``workers`` sweep (preset default; 0 =
    the thread front end baseline) always runs and lands in the
    payload's ``workers`` block, asserting per-leg parity and — on
    machines with ≥ 2 cores and working shared memory — a
    ``workers_min_speedup`` throughput floor of the process tier over
    the thread tier.  The ``quant`` block (schema v4) always runs too:
    it benchmarks the uint8 radio-map scan against the monolithic
    float32 brute scan on the preset's quant-scale map, asserting
    ``quant_min_speedup`` (preset default; 0 disables) plus the
    preset's recall and bytes-per-fingerprint floors.  The ``embed``
    block (schema v7) always runs too: it serves the same jittered
    queries through the raw-RSSI ``knn`` and learned-embedding
    ``embed-knn`` backends fitted on one map, asserting an
    ``embed_min_speedup`` req/s floor (preset default; 0 disables)
    at matched location-recall@k, plus the preset's position-error
    ceiling.  The ``resilience`` block (schema v5) always runs as well: a seeded
    chaos storm (worker kills, heartbeat stalls, shm-slot and
    store-artifact corruption, slow batches) against the self-protecting
    front end, asserting zero hung requests, parity on every answered
    request, and a ``chaos_min_availability`` floor (preset default; 0
    disables).  The ``sessions`` block (schema v6) always runs last:
    streaming trajectory serving through stateful per-user
    TrackingSessions, asserting bitwise parity of every served tick
    against the offline single-session oracle (RMSE delta exactly
    0.0 m), zero lost tracks across a checkpoint/restart cycle, and a
    ``track_min_tracks_per_s`` concurrent-ticks/sec floor (preset
    default; 0 disables).  Extra keyword arguments are forwarded to
    the registered ``model``.
    """
    from repro.serving import ModelCache, get

    get(model)  # fail fast on a typo'd name, before dataset generation
    config, train, queries = serve_workload(preset, seed)
    if batch_size is None:
        batch_size = config.batch_size
    if producers is None:
        producers = config.producers
    if producers < 1:
        raise ValueError(f"producers must be >= 1, got {producers}")
    if deadlines_ms is None:
        deadlines_ms = config.deadlines_ms
    deadlines_ms = tuple(float(d) for d in deadlines_ms)
    if not deadlines_ms or any(d <= 0 for d in deadlines_ms):
        raise ValueError(f"deadlines must be positive, got {deadlines_ms}")
    if min_speedup is None:
        min_speedup = config.min_speedup
    # the speedup is asserted at the headline deadline; keep it in the sweep
    headline_deadline = (
        config.headline_deadline_ms
        if config.headline_deadline_ms in deadlines_ms
        else deadlines_ms[-1]
    )

    if store_min_speedup is None:
        store_min_speedup = config.store_min_speedup

    cache = ModelCache(capacity=4)
    tic = time.perf_counter()
    estimator = cache.get_or_fit(model, train, **model_params)
    fit_seconds = time.perf_counter() - tic

    # synchronous oracle for parity (one vectorized call)
    oracle_xy = estimator.predict_batch(queries).coordinates

    # naive per-query baseline, median-of-repeats like the async legs
    naive_times = []
    for _ in range(max(config.repeats, 1)):
        tic = time.perf_counter()
        naive_xy = np.vstack(
            [estimator.predict_batch(q[None, :]).coordinates for q in queries]
        )
        naive_times.append(time.perf_counter() - tic)
    naive_seconds = sorted(naive_times)[len(naive_times) // 2]
    if not np.allclose(naive_xy, oracle_xy, rtol=0.0, atol=1e-9):
        raise ServeParityError(
            "per-query predictions diverge from the batched oracle"
        )

    result = ServeBenchResult(
        preset=config.name,
        seed=seed,
        min_speedup=float(min_speedup),
        workload={
            "n_train": len(train),
            "n_queries": int(config.n_queries),
            "n_aps": int(train.n_aps),
            "model": model,
            "batch_size": int(batch_size),
            "producers": int(producers),
            "headline_deadline_ms": float(headline_deadline),
            "fit_seconds": float(fit_seconds),
        },
        naive={
            "seconds": float(naive_seconds),
            "requests_per_second": float(len(queries) / naive_seconds),
        },
    )
    for deadline in deadlines_ms:
        leg = _async_leg(
            estimator, queries, oracle_xy, deadline, config, batch_size, producers
        )
        leg["speedup_vs_naive"] = float(
            leg["requests_per_second"] / result.naive["requests_per_second"]
        )
        result.legs.append(leg)

    headline = result.headline["async_speedup"]
    if min_speedup > 0 and headline is not None and headline < min_speedup:
        raise ServeSpeedupError(
            f"async throughput speedup {headline:.2f}x at the "
            f"{headline_deadline:.0f} ms deadline is below the asserted "
            f"minimum {min_speedup:.2f}x"
        )
    if workers is None:
        workers = config.workers
    if workers_min_speedup is None:
        workers_min_speedup = config.workers_min_speedup
    result.workers = _workers_block(
        config,
        train,
        queries,
        store_dir,
        tuple(workers),
        float(workers_min_speedup),
        batch_size,
        producers,
        headline_deadline,
    )
    if quant_min_speedup is None:
        quant_min_speedup = config.quant_min_speedup
    result.quant = _quant_block(config, seed, float(quant_min_speedup))
    if embed_min_speedup is None:
        embed_min_speedup = config.embed_min_speedup
    result.embed = _embed_block(config, seed, float(embed_min_speedup))
    if chaos_min_availability is None:
        chaos_min_availability = config.chaos_min_availability
    result.resilience = _resilience_block(
        config, train, queries, seed, float(chaos_min_availability)
    )
    if track_min_tracks_per_s is None:
        track_min_tracks_per_s = config.track_min_tracks_per_s
    result.sessions = _sessions_block(
        config, seed, float(track_min_tracks_per_s)
    )
    if store_dir is not None:
        result.store = _store_leg(
            train, queries, store_dir, float(store_min_speedup)
        )
    return result


def validate_serve_bench_payload(payload: dict) -> None:
    """Validate a ``BENCH_serve.json`` dictionary; raises ``ValueError``.

    Guards the persistent trajectory's shape: schema tag, workload and
    naive-baseline blocks, at least one async leg with complete fields,
    a headline block, the mandatory ``workers`` block (thread-baseline
    leg first, per-leg parity true, floor satisfied whenever
    ``floor_enforced``), the mandatory ``quant`` block (speedup floor
    whenever ``floor_enforced``, recall and bytes-ratio floors whenever
    positive), the mandatory ``embed`` block (speedup floor whenever
    ``floor_enforced``, error-ratio ceiling and recall-ratio floor
    whenever positive), the mandatory ``sessions`` block (RMSE delta vs the
    offline oracle exactly 0.0 m, zero lost tracks, ticks/sec floor
    whenever ``floor_enforced``), and — when present — the ``store``
    restart leg
    (complete fields, parity true, a positive asserted floor satisfied)
    — so ``make serve-bench-smoke`` (and through it ``make check`` /
    CI's bench-artifact guard) fails loudly when the emitted artifact
    drifts or a committed trajectory is hand-edited.
    """

    def _is(value, kind) -> bool:
        if kind is float:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if kind is int:
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, kind)

    problems: "list[str]" = []
    if payload.get("schema") != SERVE_BENCH_SCHEMA:
        problems.append(
            f"schema must be {SERVE_BENCH_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for key in (
        "preset", "seed", "workload", "naive", "async", "headline",
        "workers", "quant", "embed", "resilience", "sessions",
    ):
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    workload = payload.get("workload", {})
    for key in ("n_train", "n_queries", "n_aps", "batch_size", "producers"):
        if not isinstance(workload.get(key), int):
            problems.append(f"workload.{key} must be an int")
    if not isinstance(workload.get("model"), str):
        problems.append("workload.model must be a string")
    naive = payload.get("naive", {})
    for key in ("seconds", "requests_per_second"):
        if not _is(naive.get(key), float):
            problems.append(f"naive.{key} must be a number")
    legs = payload.get("async", [])
    if not isinstance(legs, list) or not legs:
        problems.append("async must be a non-empty list of deadline legs")
    else:
        for i, leg in enumerate(legs):
            for field_name, field_type in _LEG_FIELDS.items():
                if not _is(leg.get(field_name), field_type):
                    problems.append(
                        f"async[{i}].{field_name} must be "
                        f"{field_type.__name__}"
                    )
            if leg.get("parity_ok") is False:
                problems.append(f"async[{i}].parity_ok is False")
    headline = payload.get("headline", {})
    for key in ("deadline_ms", "async_speedup", "min_speedup_asserted"):
        if key not in headline:
            problems.append(f"headline missing {key!r}")
    workers = payload.get("workers")
    if not isinstance(workers, dict):
        problems.append("workers must be a dict")
    else:
        if not isinstance(workers.get("model"), str):
            problems.append("workers.model must be a string")
        for key in ("shards", "cpu_count"):
            if not _is(workers.get(key), int):
                problems.append(f"workers.{key} must be an int")
        if not isinstance(workers.get("shm_available"), bool):
            problems.append("workers.shm_available must be a bool")
        if not _is(workers.get("deadline_ms"), float):
            problems.append("workers.deadline_ms must be a number")
        wlegs = workers.get("legs", [])
        if not isinstance(wlegs, list) or not wlegs:
            problems.append("workers.legs must be a non-empty list")
        else:
            if wlegs[0].get("workers") != 0:
                problems.append(
                    "workers.legs[0] must be the thread baseline (workers=0)"
                )
            for i, leg in enumerate(wlegs):
                for field_name, field_type in (
                    ("workers", int),
                    ("seconds", float),
                    ("requests_per_second", float),
                    ("n_batches", int),
                    ("mean_batch_fill", float),
                    ("n_timeouts", int),
                    ("mean_latency_ms", float),
                    ("p95_latency_ms", float),
                    ("respawns", int),
                ):
                    if not _is(leg.get(field_name), field_type):
                        problems.append(
                            f"workers.legs[{i}].{field_name} must be "
                            f"{field_type.__name__}"
                        )
                if leg.get("parity_ok") is not True:
                    problems.append(f"workers.legs[{i}].parity_ok is not True")
        whead = workers.get("headline")
        if not isinstance(whead, dict):
            problems.append("workers.headline must be a dict")
        else:
            for key in (
                "workers",
                "speedup_vs_threads",
                "min_speedup_asserted",
                "floor_enforced",
            ):
                if key not in whead:
                    problems.append(f"workers.headline missing {key!r}")
            if not isinstance(whead.get("floor_enforced"), bool):
                problems.append("workers.headline.floor_enforced must be bool")
            floor = whead.get("min_speedup_asserted")
            speedup = whead.get("speedup_vs_threads")
            if whead.get("floor_enforced") is True:
                if not _is(speedup, float):
                    problems.append(
                        "workers.headline.speedup_vs_threads must be a "
                        "number when the floor is enforced"
                    )
                elif _is(floor, float) and speedup < floor:
                    problems.append(
                        f"workers.headline.speedup_vs_threads {speedup} is "
                        f"below the asserted floor {floor} "
                        "(stale or hand-edited artifact?)"
                    )
    quant = payload.get("quant")
    if not isinstance(quant, dict):
        problems.append("quant must be a dict")
    else:
        for key in ("n_points", "n_aps", "n_queries", "k", "n_bins", "refine"):
            if not _is(quant.get(key), int):
                problems.append(f"quant.{key} must be an int")
        for side in ("baseline", "quant"):
            leg = quant.get(side)
            if not isinstance(leg, dict):
                problems.append(f"quant.{side} must be a dict")
                continue
            for key in (
                "seconds", "requests_per_second", "bytes_per_fingerprint"
            ):
                if not _is(leg.get(key), float):
                    problems.append(f"quant.{side}.{key} must be a number")
        for key in (
            "recall_at_k", "oracle_error_m", "quant_error_m", "error_delta_m"
        ):
            if not _is(quant.get(key), float):
                problems.append(f"quant.{key} must be a number")
        qhead = quant.get("headline")
        if not isinstance(qhead, dict):
            problems.append("quant.headline must be a dict")
        else:
            for key in (
                "speedup_vs_float32",
                "min_speedup_asserted",
                "recall_at_k",
                "min_recall_asserted",
                "bytes_ratio",
                "max_bytes_ratio_asserted",
                "floor_enforced",
            ):
                if key not in qhead:
                    problems.append(f"quant.headline missing {key!r}")
            if not isinstance(qhead.get("floor_enforced"), bool):
                problems.append("quant.headline.floor_enforced must be bool")
            speedup = qhead.get("speedup_vs_float32")
            floor = qhead.get("min_speedup_asserted")
            if qhead.get("floor_enforced") is True:
                if not _is(speedup, float):
                    problems.append(
                        "quant.headline.speedup_vs_float32 must be a "
                        "number when the floor is enforced"
                    )
                elif _is(floor, float) and speedup < floor:
                    problems.append(
                        f"quant.headline.speedup_vs_float32 {speedup} is "
                        f"below the asserted floor {floor} "
                        "(stale or hand-edited artifact?)"
                    )
            recall = qhead.get("recall_at_k")
            recall_floor = qhead.get("min_recall_asserted")
            if (
                _is(recall, float)
                and _is(recall_floor, float)
                and recall_floor > 0
                and recall < recall_floor
            ):
                problems.append(
                    f"quant.headline.recall_at_k {recall} is below the "
                    f"asserted floor {recall_floor} "
                    "(stale or hand-edited artifact?)"
                )
            ratio = qhead.get("bytes_ratio")
            ratio_ceiling = qhead.get("max_bytes_ratio_asserted")
            if (
                _is(ratio, float)
                and _is(ratio_ceiling, float)
                and ratio_ceiling > 0
                and ratio > ratio_ceiling
            ):
                problems.append(
                    f"quant.headline.bytes_ratio {ratio} is above the "
                    f"asserted ceiling {ratio_ceiling} "
                    "(stale or hand-edited artifact?)"
                )
    embed = payload.get("embed")
    if not isinstance(embed, dict):
        problems.append("embed must be a dict")
    else:
        for key in ("n_points", "n_aps", "n_queries", "k", "n_components"):
            if not _is(embed.get(key), int):
                problems.append(f"embed.{key} must be an int")
        if not isinstance(embed.get("embedder"), str):
            problems.append("embed.embedder must be a string")
        for side in ("raw", "embed"):
            leg = embed.get(side)
            if not isinstance(leg, dict):
                problems.append(f"embed.{side} must be a dict")
                continue
            for key in (
                "fit_seconds", "seconds", "requests_per_second",
                "error_m", "recall_at_k",
            ):
                if not _is(leg.get(key), float):
                    problems.append(f"embed.{side}.{key} must be a number")
        ehead = embed.get("headline")
        if not isinstance(ehead, dict):
            problems.append("embed.headline must be a dict")
        else:
            for key in (
                "speedup_vs_raw",
                "min_speedup_asserted",
                "error_ratio_vs_raw",
                "max_error_ratio_asserted",
                "recall_ratio_vs_raw",
                "min_recall_ratio_asserted",
                "floor_enforced",
            ):
                if key not in ehead:
                    problems.append(f"embed.headline missing {key!r}")
            if not isinstance(ehead.get("floor_enforced"), bool):
                problems.append("embed.headline.floor_enforced must be bool")
            speedup = ehead.get("speedup_vs_raw")
            floor = ehead.get("min_speedup_asserted")
            if ehead.get("floor_enforced") is True:
                if not _is(speedup, float):
                    problems.append(
                        "embed.headline.speedup_vs_raw must be a number "
                        "when the floor is enforced"
                    )
                elif _is(floor, float) and speedup < floor:
                    problems.append(
                        f"embed.headline.speedup_vs_raw {speedup} is "
                        f"below the asserted floor {floor} "
                        "(stale or hand-edited artifact?)"
                    )
            error_ratio = ehead.get("error_ratio_vs_raw")
            error_ceiling = ehead.get("max_error_ratio_asserted")
            if (
                _is(error_ratio, float)
                and _is(error_ceiling, float)
                and error_ceiling > 0
                and error_ratio > error_ceiling
            ):
                problems.append(
                    f"embed.headline.error_ratio_vs_raw {error_ratio} is "
                    f"above the asserted ceiling {error_ceiling} "
                    "(stale or hand-edited artifact?)"
                )
            recall_ratio = ehead.get("recall_ratio_vs_raw")
            recall_floor = ehead.get("min_recall_ratio_asserted")
            if (
                _is(recall_ratio, float)
                and _is(recall_floor, float)
                and recall_floor > 0
                and recall_ratio < recall_floor
            ):
                problems.append(
                    f"embed.headline.recall_ratio_vs_raw {recall_ratio} "
                    f"is below the asserted floor {recall_floor} "
                    "(stale or hand-edited artifact?)"
                )
    resilience = payload.get("resilience")
    if not isinstance(resilience, dict):
        problems.append("resilience must be a dict")
    else:
        for key in ("workers", "shards", "queries", "max_pending"):
            if not _is(resilience.get(key), int):
                problems.append(f"resilience.{key} must be an int")
        if not isinstance(resilience.get("shm_available"), bool):
            problems.append("resilience.shm_available must be a bool")
        if not _is(resilience.get("availability"), float):
            problems.append("resilience.availability must be a number")
        faults = resilience.get("faults")
        if not isinstance(faults, dict):
            problems.append("resilience.faults must be a dict")
        else:
            for key in (
                "kills", "stalls", "slot_corruptions", "store_corruptions",
                "delayed_batches",
            ):
                if not _is(faults.get(key), int):
                    problems.append(f"resilience.faults.{key} must be an int")
        rout = resilience.get("outcomes")
        if not isinstance(rout, dict):
            problems.append("resilience.outcomes must be a dict")
        else:
            for key in ("answered", "shed", "failed", "hung"):
                if not _is(rout.get(key), int):
                    problems.append(
                        f"resilience.outcomes.{key} must be an int"
                    )
        rhead = resilience.get("headline")
        if not isinstance(rhead, dict):
            problems.append("resilience.headline must be a dict")
        else:
            for key in (
                "availability",
                "min_availability_asserted",
                "hung",
                "failed",
                "parity_ok",
                "fairness_ok",
                "floor_enforced",
            ):
                if key not in rhead:
                    problems.append(f"resilience.headline missing {key!r}")
            if not isinstance(rhead.get("floor_enforced"), bool):
                problems.append(
                    "resilience.headline.floor_enforced must be bool"
                )
            if rhead.get("parity_ok") is not True:
                problems.append(
                    "resilience.headline.parity_ok is not True "
                    "(answered chaos requests diverged from the oracle)"
                )
            if rhead.get("hung") != 0:
                problems.append(
                    f"resilience.headline.hung is {rhead.get('hung')}, "
                    "must be 0 (requests were lost under faults)"
                )
            if rhead.get("failed") != 0:
                problems.append(
                    f"resilience.headline.failed is {rhead.get('failed')}, "
                    "must be 0 (requests failed dirty under faults)"
                )
            availability = rhead.get("availability")
            floor = rhead.get("min_availability_asserted")
            if rhead.get("floor_enforced") is True:
                if not _is(availability, float):
                    problems.append(
                        "resilience.headline.availability must be a number "
                        "when the floor is enforced"
                    )
                elif _is(floor, float) and availability < floor:
                    problems.append(
                        f"resilience.headline.availability {availability} "
                        f"is below the asserted floor {floor} "
                        "(stale or hand-edited artifact?)"
                    )
    sessions = payload.get("sessions")
    if not isinstance(sessions, dict):
        problems.append("sessions must be a dict")
    else:
        if not isinstance(sessions.get("engine"), str):
            problems.append("sessions.engine must be a string")
        for key in (
            "users", "ticks_per_user", "samples_per_segment",
            "batch_size", "producers",
        ):
            if not _is(sessions.get(key), int):
                problems.append(f"sessions.{key} must be an int")
        throughput = sessions.get("throughput")
        if not isinstance(throughput, dict):
            problems.append("sessions.throughput must be a dict")
        else:
            for key in ("seconds", "tracks_per_second", "mean_batch_fill"):
                if not _is(throughput.get(key), float):
                    problems.append(
                        f"sessions.throughput.{key} must be a number"
                    )
            if not _is(throughput.get("n_batches"), int):
                problems.append(
                    "sessions.throughput.n_batches must be an int"
                )
        parity = sessions.get("parity")
        if not isinstance(parity, dict):
            problems.append("sessions.parity must be a dict")
        else:
            for key in (
                "max_abs_delta_m", "rmse_delta_m", "served_rmse_m",
                "oracle_rmse_m",
            ):
                if not _is(parity.get(key), float):
                    problems.append(f"sessions.parity.{key} must be a number")
            if parity.get("parity_ok") is not True:
                problems.append("sessions.parity.parity_ok is not True")
        recovery = sessions.get("recovery")
        if not isinstance(recovery, dict):
            problems.append("sessions.recovery must be a dict")
        else:
            for key in ("checkpointed", "restored", "lost_tracks"):
                if not _is(recovery.get(key), int):
                    problems.append(f"sessions.recovery.{key} must be an int")
            if recovery.get("resumed_parity_ok") is not True:
                problems.append(
                    "sessions.recovery.resumed_parity_ok is not True"
                )
        shead = sessions.get("headline")
        if not isinstance(shead, dict):
            problems.append("sessions.headline must be a dict")
        else:
            for key in (
                "tracks_per_second",
                "concurrent_sessions",
                "min_tracks_per_second_asserted",
                "rmse_delta_m",
                "lost_tracks",
                "parity_ok",
                "floor_enforced",
            ):
                if key not in shead:
                    problems.append(f"sessions.headline missing {key!r}")
            if not isinstance(shead.get("floor_enforced"), bool):
                problems.append(
                    "sessions.headline.floor_enforced must be bool"
                )
            if shead.get("parity_ok") is not True:
                problems.append(
                    "sessions.headline.parity_ok is not True "
                    "(served trajectories diverged from the offline oracle)"
                )
            rmse_delta = shead.get("rmse_delta_m")
            if not (_is(rmse_delta, float) and float(rmse_delta) == 0.0):
                problems.append(
                    f"sessions.headline.rmse_delta_m is {rmse_delta!r}, "
                    "must be exactly 0.0 (session parity is bitwise, "
                    "not approximate)"
                )
            if shead.get("lost_tracks") != 0:
                problems.append(
                    f"sessions.headline.lost_tracks is "
                    f"{shead.get('lost_tracks')}, must be 0 "
                    "(sessions were lost across the restart leg)"
                )
            rate = shead.get("tracks_per_second")
            floor = shead.get("min_tracks_per_second_asserted")
            if shead.get("floor_enforced") is True:
                if not _is(rate, float):
                    problems.append(
                        "sessions.headline.tracks_per_second must be a "
                        "number when the floor is enforced"
                    )
                elif _is(floor, float) and rate < floor:
                    problems.append(
                        f"sessions.headline.tracks_per_second {rate} is "
                        f"below the asserted floor {floor} "
                        "(stale or hand-edited artifact?)"
                    )
    store = payload.get("store")
    if store is not None:
        if not isinstance(store, dict):
            problems.append("store must be a dict when present")
        else:
            if not isinstance(store.get("backend"), str):
                problems.append("store.backend must be a string")
            for key in (
                "cold_fit_seconds",
                "warm_restore_seconds",
                "speedup",
                "min_speedup_asserted",
            ):
                if not _is(store.get(key), float):
                    problems.append(f"store.{key} must be a number")
            if store.get("parity_ok") is not True:
                problems.append("store.parity_ok must be True")
            floor = store.get("min_speedup_asserted")
            speedup = store.get("speedup")
            if (
                _is(floor, float)
                and _is(speedup, float)
                and floor > 0
                and speedup < floor
            ):
                problems.append(
                    f"store.speedup {speedup} is below the asserted floor "
                    f"{floor} (stale or hand-edited artifact?)"
                )
    if problems:
        raise ValueError("invalid BENCH_serve payload: " + "; ".join(problems))
