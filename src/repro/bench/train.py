"""The train-bench engine: seed-path vs fused float32 training time.

Times cold fits of the paper's neural models through the three training
configurations the PR 3 fast path introduced:

* ``float64-reference`` — dtype float64 with ``fused=False``: the
  seed's training loop (allocating optimizers and layers, per-sample
  batch collation, boolean-masked sigmoid), kept as a faithful
  before-measurement and numerical reference.
* ``float64-fused`` — the allocation-free loop at the historical
  precision (NObLe only), isolating the fusion win from the dtype win.
* ``float32-fused`` — the full fast path: float32 end to end plus
  fused/workspace hot loops.

Each leg trains the same seeded model on the same split and is scored
on held-out mean/median localization error; the bench **asserts metric
parity** between the fast path and the reference (coordinate error
within tolerance) and a minimum cold-fit speedup, then emits the
``BENCH_train.json`` payload — the repo's persistent perf trajectory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

#: Identifier (and version) of the emitted JSON payload.
BENCH_SCHEMA = "repro-train-bench/1"

#: Keys every leg record must carry, with their types.
_LEG_FIELDS = {
    "dtype": str,
    "fused": bool,
    "fit_seconds": float,
    "epochs_run": int,
    "epoch_seconds": float,
    "samples_per_second": float,
    "mean_error_m": float,
    "median_error_m": float,
}


class BenchParityError(AssertionError):
    """The fast path's localization error drifted beyond tolerance."""


class BenchSpeedupError(AssertionError):
    """The fast path's cold-fit speedup fell below the asserted floor."""


@dataclass
class BenchPreset:
    """One workload scale for the training benchmark."""

    name: str
    n_spots_per_building: int
    measurements_per_spot: int
    n_aps_per_floor: int
    noble_epochs: int
    cnnloc_epochs: int
    cnnloc_pretrain_epochs: int
    min_speedup: float
    parity_abs_m: float
    parity_rel: float
    #: Fits per leg; the reported time is the minimum (standard
    #: best-of-N benchmarking, shields the trajectory from scheduler
    #: noise on shared machines).
    repeats: int = 1


PRESETS = {
    # Schema/plumbing validation in seconds, not minutes: far too small
    # and undertrained for a meaningful speedup, so none is asserted.
    "smoke": BenchPreset(
        name="smoke",
        n_spots_per_building=10,
        measurements_per_spot=6,
        n_aps_per_floor=6,
        noble_epochs=4,
        cnnloc_epochs=3,
        cnnloc_pretrain_epochs=2,
        min_speedup=0.0,
        parity_abs_m=30.0,
        parity_rel=0.8,
        repeats=1,
    ),
    # The ROADMAP's serving workload — the ~3.4 s NObLe cold fit every
    # ModelCache miss used to pay.
    "fast": BenchPreset(
        name="fast",
        n_spots_per_building=48,
        measurements_per_spot=10,
        n_aps_per_floor=10,
        noble_epochs=60,
        cnnloc_epochs=30,
        cnnloc_pretrain_epochs=10,
        min_speedup=2.0,
        parity_abs_m=1.5,
        parity_rel=0.25,
        repeats=3,
    ),
    # Denser campus, wider multi-hot head — closer to real UJIIndoorLoc.
    "paper": BenchPreset(
        name="paper",
        n_spots_per_building=96,
        measurements_per_spot=15,
        n_aps_per_floor=25,
        noble_epochs=60,
        cnnloc_epochs=60,
        cnnloc_pretrain_epochs=20,
        min_speedup=2.0,
        parity_abs_m=1.5,
        parity_rel=0.25,
    ),
}


@dataclass
class TrainBenchResult:
    """Everything ``run_train_bench`` measured, ready for JSON or print."""

    preset: str
    seed: int
    min_speedup: float
    workload: dict
    models: "dict[str, dict]" = field(default_factory=dict)

    @property
    def headline_speedup(self) -> "float | None":
        noble = self.models.get("noble")
        return None if noble is None else noble["speedup"]

    def payload(self) -> dict:
        """The ``BENCH_train.json`` dictionary (a detached deep copy)."""
        import copy

        return {
            "schema": BENCH_SCHEMA,
            "preset": self.preset,
            "seed": self.seed,
            "workload": dict(self.workload),
            "models": copy.deepcopy(self.models),
            "headline": {
                "noble_cold_fit_speedup": self.headline_speedup,
                "min_speedup_asserted": self.min_speedup,
            },
        }

    def report(self) -> str:
        lines = [
            f"train-bench preset={self.preset} seed={self.seed} "
            f"({self.workload['n_train']} train / {self.workload['n_test']} test, "
            f"{self.workload['n_aps']} WAPs)",
        ]
        for name, entry in self.models.items():
            lines.append(f"\n{name}:")
            lines.append(
                "  leg                 fit(s)   epoch(ms)   samples/s   mean(m)  median(m)"
            )
            for leg_name, leg in entry["legs"].items():
                lines.append(
                    f"  {leg_name:18s} {leg['fit_seconds']:7.3f} "
                    f"{leg['epoch_seconds'] * 1000:10.1f} "
                    f"{leg['samples_per_second']:11.0f} "
                    f"{leg['mean_error_m']:9.3f} {leg['median_error_m']:9.3f}"
                )
            parity = entry["parity"]
            lines.append(
                f"  speedup (reference/float32): {entry['speedup']:.2f}x   "
                f"parity |Δmean| {parity['mean_error_delta_m']:.3f} m "
                f"(tol {parity['tolerance_m']:.3f} m) "
                f"{'ok' if parity['ok'] else 'FAIL'}"
            )
        return "\n".join(lines)


def _score(model, test) -> tuple[float, float]:
    errors = np.linalg.norm(
        model.predict_coordinates(test) - test.coordinates, axis=1
    )
    return float(errors.mean()), float(np.median(errors))


def _leg(model_factory, train, test, n_train: int, repeats: int = 1) -> dict:
    fit_seconds = float("inf")
    for _ in range(max(repeats, 1)):
        model = model_factory()
        tic = time.perf_counter()
        model.fit(train)
        fit_seconds = min(fit_seconds, time.perf_counter() - tic)
    epochs_run = model.history_.epochs_run if model.history_ is not None else 0
    mean_error, median_error = _score(model, test)
    return {
        "dtype": str(np.dtype(model.dtype) if model.dtype is not None else np.dtype(float)),
        "fused": bool(model.fused),
        "fit_seconds": float(fit_seconds),
        "epochs_run": int(epochs_run),
        "epoch_seconds": float(fit_seconds / max(epochs_run, 1)),
        "samples_per_second": float(epochs_run * n_train / fit_seconds),
        "mean_error_m": mean_error,
        "median_error_m": median_error,
    }


def run_train_bench(
    preset: str = "fast",
    seed: int = 42,
    models: "tuple[str, ...]" = ("noble", "cnnloc"),
    min_speedup: "float | None" = None,
    include_float64_fused: bool = True,
) -> TrainBenchResult:
    """Benchmark the training fast path and assert parity + speedup.

    Raises :class:`BenchParityError` when the float32 fast path's mean
    coordinate error drifts beyond the preset tolerance of the float64
    reference, and :class:`BenchSpeedupError` when the NObLe cold-fit
    speedup falls below ``min_speedup`` (preset default; pass 0 to
    disable).
    """
    from repro.data.ujiindoor import generate_uji_like
    from repro.localization.cnnloc import CNNLocWifi
    from repro.localization.noble import NObLeWifi

    try:
        config = PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset!r}; choices: {sorted(PRESETS)}"
        ) from None
    unknown = set(models) - {"noble", "cnnloc"}
    if unknown:
        raise ValueError(f"unknown bench models: {sorted(unknown)}")
    if min_speedup is None:
        min_speedup = config.min_speedup

    dataset = generate_uji_like(
        n_spots_per_building=config.n_spots_per_building,
        measurements_per_spot=config.measurements_per_spot,
        n_aps_per_floor=config.n_aps_per_floor,
        seed=seed,
    )
    train, test = dataset.split((0.8, 0.2), rng=seed + 1)
    result = TrainBenchResult(
        preset=config.name,
        seed=seed,
        min_speedup=float(min_speedup),
        workload={
            "n_train": len(train),
            "n_test": len(test),
            "n_aps": train.n_aps,
            "noble_epochs": config.noble_epochs,
            "cnnloc_epochs": config.cnnloc_epochs,
            "cnnloc_pretrain_epochs": config.cnnloc_pretrain_epochs,
        },
    )

    def noble_factory(**overrides):
        return lambda: NObLeWifi(
            epochs=config.noble_epochs, val_fraction=0.0, seed=seed, **overrides
        )

    def cnnloc_factory(**overrides):
        return lambda: CNNLocWifi(
            epochs=config.cnnloc_epochs,
            pretrain_epochs=config.cnnloc_pretrain_epochs,
            seed=seed,
            **overrides,
        )

    factories = {"noble": noble_factory, "cnnloc": cnnloc_factory}
    for name in models:
        factory = factories[name]
        repeats = config.repeats
        legs = {
            "float64-reference": _leg(
                factory(dtype="float64", fused=False), train, test, len(train),
                repeats=repeats,
            )
        }
        if include_float64_fused and name == "noble":
            legs["float64-fused"] = _leg(
                factory(dtype="float64"), train, test, len(train), repeats=repeats
            )
        legs["float32-fused"] = _leg(
            factory(dtype="float32"), train, test, len(train), repeats=repeats
        )
        reference, fast = legs["float64-reference"], legs["float32-fused"]
        delta = abs(fast["mean_error_m"] - reference["mean_error_m"])
        tolerance = max(
            config.parity_abs_m, config.parity_rel * reference["mean_error_m"]
        )
        parity_ok = delta <= tolerance
        result.models[name] = {
            "legs": legs,
            "speedup": reference["fit_seconds"] / fast["fit_seconds"],
            "parity": {
                "mean_error_delta_m": delta,
                "tolerance_m": tolerance,
                "ok": parity_ok,
            },
        }
        if not parity_ok:
            raise BenchParityError(
                f"{name}: float32 mean error {fast['mean_error_m']:.3f} m vs "
                f"float64 reference {reference['mean_error_m']:.3f} m — "
                f"|Δ| {delta:.3f} m exceeds tolerance {tolerance:.3f} m"
            )

    headline = result.headline_speedup
    if min_speedup > 0 and headline is not None and headline < min_speedup:
        raise BenchSpeedupError(
            f"NObLe cold-fit speedup {headline:.2f}x is below the asserted "
            f"minimum {min_speedup:.2f}x"
        )
    return result


def validate_bench_payload(payload: dict) -> None:
    """Validate a ``BENCH_train.json`` dictionary; raises ``ValueError``.

    Guards the persistent trajectory's shape: schema tag, workload
    block, at least one model with complete legs, and a headline block
    — so ``make bench-smoke`` (and through it ``make check``) fails
    loudly when the emitted artifact drifts.
    """
    problems: list[str] = []
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema must be {BENCH_SCHEMA!r}, got {payload.get('schema')!r}")
    for key in ("preset", "seed", "workload", "models", "headline"):
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    workload = payload.get("workload", {})
    for key in ("n_train", "n_test", "n_aps"):
        if not isinstance(workload.get(key), int):
            problems.append(f"workload.{key} must be an int")
    models = payload.get("models", {})
    if not isinstance(models, dict) or not models:
        problems.append("models must be a non-empty mapping")
    else:
        for name, entry in models.items():
            legs = entry.get("legs", {})
            if "float64-reference" not in legs or "float32-fused" not in legs:
                problems.append(
                    f"models.{name} must carry float64-reference and float32-fused legs"
                )
            for leg_name, leg in legs.items():
                for field_name, field_type in _LEG_FIELDS.items():
                    value = leg.get(field_name)
                    if field_type is float:
                        ok = isinstance(value, (int, float)) and not isinstance(
                            value, bool
                        )
                    else:
                        ok = isinstance(value, field_type)
                    if not ok:
                        problems.append(
                            f"models.{name}.legs.{leg_name}.{field_name} must be "
                            f"{field_type.__name__}"
                        )
            parity = entry.get("parity", {})
            for key in ("mean_error_delta_m", "tolerance_m", "ok"):
                if key not in parity:
                    problems.append(f"models.{name}.parity missing {key!r}")
            if not isinstance(entry.get("speedup"), (int, float)):
                problems.append(f"models.{name}.speedup must be a number")
    headline = payload.get("headline", {})
    for key in ("noble_cold_fit_speedup", "min_speedup_asserted"):
        if key not in headline:
            problems.append(f"headline missing {key!r}")
    if problems:
        raise ValueError(
            "invalid BENCH_train payload: " + "; ".join(problems)
        )
