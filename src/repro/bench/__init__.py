"""Persistent performance benchmarks: training and serving trajectories.

``repro.bench.train`` times NObLe/CNNLoc cold fits through the numpy NN
stack — the seed-equivalent float64 reference loop against the fused
float32 fast path — asserts metric parity between the precisions, and
emits ``BENCH_train.json``.  Run it via ``python -m repro.cli
train-bench`` or ``make train-bench``.

``repro.bench.serve`` drives the deadline-driven async serving front
end (:class:`repro.serving.ServingFrontend`) with concurrent producers,
sweeps flush deadline vs throughput against a naive per-query baseline,
asserts prediction parity on every leg, and emits
``BENCH_serve.json``.  Run it via ``python -m repro.cli serve-bench
--async``.

Both artifacts are schema-tagged; :func:`validate_bench_payload`
dispatches on the tag, and ``make bench-smoke`` / ``make
serve-bench-smoke`` exercise tiny workloads and validate the schemas as
part of ``make check``.
"""

from repro.bench.serve import (
    SERVE_BENCH_SCHEMA,
    SERVE_BENCH_SCHEMA_PREFIX,
    ServeBenchResult,
    run_serve_bench,
    validate_serve_bench_payload,
)
from repro.bench.train import (
    BENCH_SCHEMA,
    TrainBenchResult,
    run_train_bench,
)
from repro.bench.train import (
    validate_bench_payload as validate_train_bench_payload,
)


def validate_bench_payload(payload: dict) -> None:
    """Validate any bench artifact; dispatches on its ``schema`` tag.

    ``repro-serve-bench/*`` payloads go to
    :func:`validate_serve_bench_payload` (which rejects versions other
    than the current one — e.g. a stale ``repro-serve-bench/1``
    artifact fails as a schema mismatch rather than being half-read);
    everything else (including the historical ``repro-train-bench/1``)
    goes to the train-bench validator, which reports an unknown tag as
    a schema mismatch.  Raises ``ValueError`` on problems.
    """
    schema = payload.get("schema") if isinstance(payload, dict) else None
    if isinstance(schema, str) and schema.startswith(SERVE_BENCH_SCHEMA_PREFIX):
        return validate_serve_bench_payload(payload)
    return validate_train_bench_payload(payload)


__all__ = [
    "BENCH_SCHEMA",
    "SERVE_BENCH_SCHEMA",
    "SERVE_BENCH_SCHEMA_PREFIX",
    "TrainBenchResult",
    "ServeBenchResult",
    "run_train_bench",
    "run_serve_bench",
    "validate_bench_payload",
    "validate_train_bench_payload",
    "validate_serve_bench_payload",
]
