"""Persistent performance benchmarks for the training fast path.

``repro.bench.train`` times NObLe/CNNLoc cold fits through the numpy NN
stack — the seed-equivalent float64 reference loop against the fused
float32 fast path — asserts metric parity between the precisions, and
emits ``BENCH_train.json``, the repo's perf-trajectory artifact.  Run it
via ``python -m repro.cli train-bench`` or ``make train-bench``;
``make bench-smoke`` exercises a tiny workload and validates the schema
as part of ``make check``.
"""

from repro.bench.train import (
    BENCH_SCHEMA,
    TrainBenchResult,
    run_train_bench,
    validate_bench_payload,
)

__all__ = [
    "BENCH_SCHEMA",
    "TrainBenchResult",
    "run_train_bench",
    "validate_bench_payload",
]
