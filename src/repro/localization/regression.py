"""Deep Regression baseline (Table II): same network, MSE on coordinates.

"Deep Regression takes the same input as NObLe.  It is the same network
size as NObLe.  However, it is trained with mean square error as loss
function and directly predicts coordinates in longitude and latitude."
"""

from __future__ import annotations

import numpy as np

from repro.data.ujiindoor import FingerprintDataset
from repro.nn import (
    Adam,
    BatchNorm1d,
    DataLoader,
    Linear,
    MSELoss,
    Sequential,
    Tanh,
    TensorDataset,
    Trainer,
    TrainingHistory,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class DeepRegressionWifi:
    """Two-hidden-layer MLP mapping normalized RSSI to (x, y) with MSE.

    Coordinates are standardized internally (zero mean, unit variance)
    for optimization stability and de-standardized at prediction time.
    """

    def __init__(
        self,
        hidden: int = 128,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
        weight_decay: float = 0.0,
        val_fraction: float = 0.1,
        patience: int = 10,
        seed=0,
    ):
        if not 0 <= val_fraction < 1:
            raise ValueError(f"val_fraction must be in [0, 1), got {val_fraction}")
        self.hidden = int(hidden)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.val_fraction = float(val_fraction)
        self.patience = int(patience)
        self.seed = seed
        self.model_: "Sequential | None" = None
        self.target_mean_: "np.ndarray | None" = None
        self.target_std_: "np.ndarray | None" = None
        self.history_: "TrainingHistory | None" = None

    def fit(
        self,
        dataset: "FingerprintDataset | np.ndarray",
        coordinates: "np.ndarray | None" = None,
    ) -> "DeepRegressionWifi":
        """Train on a dataset, or on a raw (signals, coordinates) pair —
        the raw form is reused by the manifold-embedding baselines."""
        rng = ensure_rng(self.seed)
        signals, coords = self._unpack(dataset, coordinates)
        self.target_mean_ = coords.mean(axis=0)
        self.target_std_ = coords.std(axis=0)
        self.target_std_[self.target_std_ == 0] = 1.0
        targets = (coords - self.target_mean_) / self.target_std_

        self.model_ = Sequential(
            Linear(signals.shape[1], self.hidden, rng=rng),
            BatchNorm1d(self.hidden),
            Tanh(),
            Linear(self.hidden, self.hidden, rng=rng),
            BatchNorm1d(self.hidden),
            Tanh(),
            Linear(self.hidden, targets.shape[1], rng=rng),
        )
        optimizer = Adam(
            self.model_.parameters(), lr=self.lr, weight_decay=self.weight_decay
        )
        trainer = Trainer(self.model_, MSELoss(), optimizer)
        if self.val_fraction > 0 and len(signals) >= 20:
            n_val = max(1, int(len(signals) * self.val_fraction))
            order = rng.permutation(len(signals))
            val_idx, train_idx = order[:n_val], order[n_val:]
            self.history_ = trainer.fit(
                DataLoader(
                    TensorDataset(signals[train_idx], targets[train_idx]),
                    batch_size=self.batch_size,
                    drop_last=True,
                    rng=rng,
                ),
                epochs=self.epochs,
                val_loader=DataLoader(
                    TensorDataset(signals[val_idx], targets[val_idx]),
                    batch_size=self.batch_size,
                    shuffle=False,
                ),
                patience=self.patience,
            )
        else:
            self.history_ = trainer.fit(
                DataLoader(
                    TensorDataset(signals, targets),
                    batch_size=self.batch_size,
                    drop_last=True,
                    rng=rng,
                ),
                epochs=self.epochs,
            )
        return self

    def predict_coordinates(self, dataset: "FingerprintDataset | np.ndarray") -> np.ndarray:
        check_fitted(self, "model_")
        signals, _ = self._unpack(dataset, None, require_coords=False)
        self.model_.eval()
        standardized = self.model_(signals)
        return standardized * self.target_std_ + self.target_mean_

    @staticmethod
    def _unpack(dataset, coordinates, require_coords: bool = True):
        if isinstance(dataset, FingerprintDataset):
            return dataset.normalized_signals(), dataset.coordinates
        signals = np.asarray(dataset, dtype=float)
        if coordinates is None and require_coords:
            raise ValueError(
                "coordinates are required when fitting on a raw signal matrix"
            )
        coords = None if coordinates is None else np.asarray(coordinates, dtype=float)
        return signals, coords
