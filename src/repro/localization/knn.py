"""Classic kNN fingerprinting (RADAR-style) comparator.

Not in the paper's tables, but it is the canonical radio-map method
(§II "Online phase: observed RSSI values are matched with points on the
radio map ... searching for the most similar locations"); having it in
the harness contextualizes the DNN results.
"""

from __future__ import annotations

import numpy as np

from repro.data.ujiindoor import FingerprintDataset
from repro.manifold.neighbors import KNNIndex
from repro.utils.validation import check_fitted


class KNNFingerprinting:
    """Weighted k-nearest-neighbor regression in signal space.

    Position = (inverse-distance-)weighted mean of the k nearest stored
    fingerprints; building/floor by majority vote of the same neighbors.
    """

    def __init__(self, k: int = 5, weighted: bool = True):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        self.weighted = weighted
        self.index_: "KNNIndex | None" = None
        self.coordinates_: "np.ndarray | None" = None
        self.building_: "np.ndarray | None" = None
        self.floor_: "np.ndarray | None" = None

    def fit(self, dataset: FingerprintDataset) -> "KNNFingerprinting":
        if len(dataset) < self.k:
            raise ValueError(
                f"training set has {len(dataset)} samples but k={self.k}"
            )
        self.index_ = KNNIndex(dataset.normalized_signals(), method="brute")
        self.coordinates_ = dataset.coordinates
        self.building_ = dataset.building
        self.floor_ = dataset.floor
        return self

    def predict_coordinates(self, dataset) -> np.ndarray:
        check_fitted(self, "index_")
        signals = self._signals(dataset)
        distances, indices = self.index_.query(signals, k=self.k)
        neighbor_coords = self.coordinates_[indices]  # (N, k, 2)
        if self.weighted:
            weights = 1.0 / (distances + 1e-9)
            weights /= weights.sum(axis=1, keepdims=True)
            return np.sum(neighbor_coords * weights[:, :, None], axis=1)
        return neighbor_coords.mean(axis=1)

    def predict_labels(self, dataset) -> tuple[np.ndarray, np.ndarray]:
        """(building, floor) by majority vote among the k neighbors."""
        check_fitted(self, "index_")
        signals = self._signals(dataset)
        _dist, indices = self.index_.query(signals, k=self.k)
        building = _majority(self.building_[indices])
        floor = _majority(self.floor_[indices])
        return building, floor

    @staticmethod
    def _signals(dataset) -> np.ndarray:
        if isinstance(dataset, FingerprintDataset):
            return dataset.normalized_signals()
        return np.asarray(dataset, dtype=float)


def _majority(labels: np.ndarray) -> np.ndarray:
    """Row-wise mode of an integer label matrix (ties → smallest label)."""
    out = np.empty(len(labels), dtype=int)
    for i, row in enumerate(labels):
        values, counts = np.unique(row, return_counts=True)
        out[i] = values[np.argmax(counts)]
    return out
