"""Classic kNN fingerprinting (RADAR-style) comparator.

Not in the paper's tables, but it is the canonical radio-map method
(§II "Online phase: observed RSSI values are matched with points on the
radio map ... searching for the most similar locations"); having it in
the harness contextualizes the DNN results.
"""

from __future__ import annotations

import numpy as np

from repro.data.ujiindoor import FingerprintDataset
from repro.manifold.neighbors import KNNIndex
from repro.utils.validation import check_fitted


class KNNFingerprinting:
    """Weighted k-nearest-neighbor regression in signal space.

    Position = (inverse-distance-)weighted mean of the k nearest stored
    fingerprints; building/floor by majority vote of the same neighbors.

    ``shards > 1`` builds a :class:`repro.sharding.ShardedKNNIndex` over
    the radio map instead of one monolithic index; the sharded merge is
    exact (identical sorted neighbor distances; neighbor identity can
    differ only within exact distance ties, which a monolithic scan
    also leaves unspecified), only the scan strategy differs.  The
    default ``partitioner="auto"`` shards by the dataset's
    (building, floor) labels.

    ``embedder`` prepends a learned feature map from
    :mod:`repro.embedding` to the whole pipeline: the radio map is
    embedded once at fit (an unfitted embedder is trained on the
    dataset first), the index/binner stack is built on the embedded
    points, and every query batch is embedded before the neighbor
    scan.  This is the model behind the ``"embed-knn"`` serving
    backend.
    """

    def __init__(
        self,
        k: int = 5,
        weighted: bool = True,
        shards: int = 1,
        partitioner="auto",
        quantize_bins: "int | None" = None,
        embedder=None,
    ):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.k = int(k)
        self.weighted = weighted
        self.shards = int(shards)
        self.partitioner = partitioner
        self.quantize_bins = (
            None if quantize_bins is None else int(quantize_bins)
        )
        self.embedder = embedder
        self.index_ = None  # KNNIndex | ShardedKNNIndex after fit
        self.coordinates_: "np.ndarray | None" = None
        self.building_: "np.ndarray | None" = None
        self.floor_: "np.ndarray | None" = None

    def fit(self, dataset: FingerprintDataset) -> "KNNFingerprinting":
        if len(dataset) < self.k:
            raise ValueError(
                f"training set has {len(dataset)} samples but k={self.k}"
            )
        if self.embedder is not None:
            from repro.embedding import fit_embedder, is_fitted

            if not is_fitted(self.embedder):
                fit_embedder(self.embedder, dataset)
        signals = self._signals(dataset)
        binner = self._fit_binner(signals)
        if self.shards > 1:
            from repro.sharding import ShardedKNNIndex

            # one label per (building, floor) pair so label partitioning
            # never splits a floor across shards
            labels = (
                dataset.building * (int(dataset.floor.max()) + 1)
                + dataset.floor
            )
            self.index_ = ShardedKNNIndex(
                signals,
                n_shards=self.shards,
                partitioner=self.partitioner,
                labels=labels,
                method="brute",
                binner=binner,
            )
        else:
            self.index_ = KNNIndex(signals, method="brute", binner=binner)
        self.coordinates_ = dataset.coordinates
        self.building_ = dataset.building
        self.floor_ = dataset.floor
        return self

    def _fit_binner(self, signals: np.ndarray):
        """Fit the uint8 radio-map quantizer when ``quantize_bins`` is set."""
        if self.quantize_bins is None:
            return None
        from repro.quantization import FeatureBinner

        return FeatureBinner(n_bins=self.quantize_bins).fit(signals)

    def predict_coordinates(self, dataset) -> np.ndarray:
        check_fitted(self, "index_")
        distances, indices = self.index_.query(self._signals(dataset), k=self.k)
        return self._coordinates_from(distances, indices)

    def predict_labels(self, dataset) -> tuple[np.ndarray, np.ndarray]:
        """(building, floor) by majority vote among the k neighbors."""
        check_fitted(self, "index_")
        _dist, indices = self.index_.query(self._signals(dataset), k=self.k)
        return self._labels_from(indices)

    def predict_full(
        self, dataset
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(coordinates, building, floor) from a single neighbor query.

        The serving hot path: one brute-force index query serves both the
        position regression and the label votes.
        """
        check_fitted(self, "index_")
        distances, indices = self.index_.query(self._signals(dataset), k=self.k)
        building, floor = self._labels_from(indices)
        return self._coordinates_from(distances, indices), building, floor

    def predict_from_neighbors(
        self, distances: np.ndarray, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(coordinates, building, floor) from precomputed neighbor sets.

        The reduce step of the multi-process serving tier: worker
        processes return merged top-k ``(distances, indices)`` against
        the fitted radio map, and this computes exactly what
        :meth:`predict_full` would have from the same neighbor sets —
        inverse-distance-weighted position plus majority-vote labels.
        """
        check_fitted(self, "index_")
        distances = np.asarray(distances, dtype=float)
        indices = np.asarray(indices, dtype=int)
        if distances.shape != indices.shape or distances.ndim != 2:
            raise ValueError(
                f"distances and indices must be matching (N, k) arrays, got "
                f"{distances.shape} and {indices.shape}"
            )
        building, floor = self._labels_from(indices)
        return self._coordinates_from(distances, indices), building, floor

    def _coordinates_from(
        self, distances: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        neighbor_coords = self.coordinates_[indices]  # (N, k, 2)
        if self.weighted:
            weights = 1.0 / (distances + 1e-9)
            weights /= weights.sum(axis=1, keepdims=True)
            return np.sum(neighbor_coords * weights[:, :, None], axis=1)
        return neighbor_coords.mean(axis=1)

    def _labels_from(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return _majority(self.building_[indices]), _majority(self.floor_[indices])

    def _signals(self, dataset) -> np.ndarray:
        """Feature rows for ``dataset``: normalized RSSI, then embedded.

        The single entry point of the feature space — fit and every
        predict path come through here, so stored points and queries
        can never disagree about the embedding.
        """
        if isinstance(dataset, FingerprintDataset):
            signals = dataset.normalized_signals()
        else:
            signals = np.asarray(dataset, dtype=float)
        if self.embedder is not None:
            signals = np.asarray(self.embedder.transform(signals), dtype=float)
        return signals


def _majority(labels: np.ndarray) -> np.ndarray:
    """Row-wise mode of an integer label matrix (ties → smallest label)."""
    labels = np.asarray(labels, dtype=int)
    n, k = labels.shape
    if n == 0:
        return np.empty(0, dtype=int)
    # Sort each row, find run boundaries, and give every element the length
    # of the run it belongs to.  Rows are contiguous in the flattened view
    # and every row starts a new run, so runs never span rows.
    ordered = np.sort(labels, axis=1)
    starts = np.concatenate(
        [np.ones((n, 1), dtype=bool), ordered[:, 1:] != ordered[:, :-1]], axis=1
    )
    run_id = np.cumsum(starts.ravel()) - 1
    run_lengths = np.bincount(run_id)[run_id].reshape(n, k)
    # argmax takes the first maximal run; rows are sorted ascending, so that
    # is the smallest label among the modes — the documented tie-break.
    best = np.argmax(run_lengths, axis=1)
    return ordered[np.arange(n), best]
