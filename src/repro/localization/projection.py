"""Deep Regression Projection baseline (Table II).

"Following Deep Regression, Deep Regression Projection projects the
predicted coordinates to the nearest position on the map when the
predictions do not lie on the map." — the [8]/[19] post-hoc correction
the paper shows to give only marginal improvement.
"""

from __future__ import annotations

import numpy as np

from repro.data.ujiindoor import FingerprintDataset
from repro.geometry.floorplan import FloorPlan
from repro.geometry.occupancy import OccupancyGrid
from repro.geometry.projection import project_to_map
from repro.localization.regression import DeepRegressionWifi
from repro.utils.validation import check_fitted


class DeepRegressionProjection:
    """Deep Regression + snap-to-map postprocessing.

    When the dataset carries an explicit :class:`FloorPlan`, predictions
    are projected onto it.  Otherwise an :class:`OccupancyGrid` learned
    from the training coordinates approximates the map ("positions where
    data exists are on the map"), which is the deployable variant.
    """

    def __init__(self, regressor: "DeepRegressionWifi | None" = None, cell_size: float = 4.0, **regressor_kwargs):
        self.regressor = regressor or DeepRegressionWifi(**regressor_kwargs)
        self.cell_size = float(cell_size)
        self.plan_: "FloorPlan | None" = None
        self.occupancy_: "OccupancyGrid | None" = None

    def fit(self, dataset: FingerprintDataset) -> "DeepRegressionProjection":
        self.regressor.fit(dataset)
        if dataset.plan is not None:
            self.plan_ = dataset.plan
        else:
            self.occupancy_ = OccupancyGrid(self.cell_size).fit(dataset.coordinates)
        return self

    def predict_coordinates(self, dataset) -> np.ndarray:
        check_fitted(self.regressor, "model_")
        raw = self.regressor.predict_coordinates(dataset)
        if self.plan_ is not None:
            return project_to_map(raw, self.plan_)
        if self.occupancy_ is not None:
            return self.occupancy_.snap(raw)
        raise RuntimeError("DeepRegressionProjection is not fitted")
