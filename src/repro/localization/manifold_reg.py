"""Manifold Embedding baselines (Table II): Isomap/LLE + deep regression.

"Manifold Embedding utilizes Isomap and LLE to compute embedding from
input signals.  We built DNNs with two hidden layers that take the
manifold embedding as input and output longitude and latitude
coordinates."  These are the *neighbor-aware* alternatives NObLe is
contrasted against: they trust Euclidean distances between noisy RSSI
vectors to define the manifold neighborhoods.
"""

from __future__ import annotations

import numpy as np

from repro.data.ujiindoor import FingerprintDataset
from repro.localization.regression import DeepRegressionWifi
from repro.manifold.isomap import Isomap
from repro.manifold.lle import LocallyLinearEmbedding
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class ManifoldRegressionWifi:
    """Isomap/LLE signal embedding followed by DNN coordinate regression.

    Parameters
    ----------
    method:
        ``"isomap"`` or ``"lle"``.
    n_components:
        Embedding dimension.  The paper tunes 400 on the full
        ~20k-sample UJIIndoorLoc; scale it with your training set size
        (it must stay well below ``max_fit_points``).
    n_neighbors:
        Neighborhood size for the embedding.
    max_fit_points:
        All-pairs geodesics are O(N²); fitting subsamples the training
        set to at most this many points (out-of-sample extension embeds
        the rest).  DESIGN.md records this as a scale substitution.
    """

    def __init__(
        self,
        method: str = "isomap",
        n_components: int = 64,
        n_neighbors: int = 10,
        max_fit_points: int = 1200,
        regressor_kwargs: "dict | None" = None,
        seed=0,
    ):
        if method not in ("isomap", "lle"):
            raise ValueError(f"method must be 'isomap' or 'lle', got {method!r}")
        if max_fit_points <= n_neighbors:
            raise ValueError("max_fit_points must exceed n_neighbors")
        self.method = method
        self.n_components = int(n_components)
        self.n_neighbors = int(n_neighbors)
        self.max_fit_points = int(max_fit_points)
        self.regressor_kwargs = dict(regressor_kwargs or {})
        self.seed = seed
        self.embedder_ = None
        self.regressor_: "DeepRegressionWifi | None" = None

    def fit(self, dataset: FingerprintDataset) -> "ManifoldRegressionWifi":
        rng = ensure_rng(self.seed)
        signals = dataset.normalized_signals()
        coords = dataset.coordinates
        if len(signals) > self.max_fit_points:
            subset = rng.choice(len(signals), size=self.max_fit_points, replace=False)
            fit_signals = signals[subset]
        else:
            fit_signals = signals

        n_components = min(self.n_components, len(fit_signals) - 1)
        if self.method == "isomap":
            self.embedder_ = Isomap(
                n_components=n_components, n_neighbors=self.n_neighbors
            )
        else:
            self.embedder_ = LocallyLinearEmbedding(
                n_components=n_components, n_neighbors=self.n_neighbors
            )
        self.embedder_.fit(fit_signals)

        embeddings = self.embedder_.transform(signals)
        self.regressor_ = DeepRegressionWifi(seed=self.seed, **self.regressor_kwargs)
        self.regressor_.fit(embeddings, coordinates=coords)
        return self

    def predict_coordinates(self, dataset) -> np.ndarray:
        check_fitted(self, "regressor_")
        if isinstance(dataset, FingerprintDataset):
            signals = dataset.normalized_signals()
        else:
            signals = np.asarray(dataset, dtype=float)
        embeddings = self.embedder_.transform(signals)
        return self.regressor_.predict_coordinates(embeddings)
