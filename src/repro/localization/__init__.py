"""Application 1: Wi-Fi fingerprint localization (paper §IV).

:class:`NObLeWifi` is the paper's model; the other classes are the
Table II comparison baselines plus a classic kNN fingerprinting
comparator.
"""

from repro.localization.noble import NObLeWifi, WifiPrediction
from repro.localization.regression import DeepRegressionWifi
from repro.localization.projection import DeepRegressionProjection
from repro.localization.manifold_reg import ManifoldRegressionWifi
from repro.localization.knn import KNNFingerprinting
from repro.localization.cnnloc import CNNLocWifi
from repro.localization.evaluate import LocalizationReport, evaluate_localizer

__all__ = [
    "NObLeWifi",
    "WifiPrediction",
    "DeepRegressionWifi",
    "DeepRegressionProjection",
    "ManifoldRegressionWifi",
    "KNNFingerprinting",
    "CNNLocWifi",
    "LocalizationReport",
    "evaluate_localizer",
]
