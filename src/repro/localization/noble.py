"""NObLe for Wi-Fi localization (§IV-A).

Architecture per the paper: a two-hidden-layer feed-forward network
(hidden size 128, tanh activations, batch normalization, Xavier init)
taking the normalized RSSI vector and predicting multiple labels at
once — building B, floor F, fine neighborhood class C, and coarse class
R — trained with binary cross-entropy on the multi-hot target.  At
inference the predicted fine class is looked up in the quantizer to get
the position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.ujiindoor import FingerprintDataset
from repro.nn import (
    Adam,
    BatchNorm1d,
    BCEWithLogitsLoss,
    DataLoader,
    Linear,
    MultiHeadLoss,
    Sequential,
    Tanh,
    TensorDataset,
    Trainer,
    TrainingHistory,
)
from repro.nn.dtypes import resolve_dtype
from repro.quantization.grid import GridQuantizer
from repro.quantization.labels import multi_hot, soft_multi_hot
from repro.quantization.multires import MultiResolutionQuantizer
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted

#: All supported output heads, in logit order.
ALL_HEADS = ("building", "floor", "fine", "coarse")


@dataclass
class WifiPrediction:
    """Outputs of :meth:`NObLeWifi.predict`."""

    coordinates: np.ndarray
    building: "np.ndarray | None"
    floor: "np.ndarray | None"
    fine_class: np.ndarray
    coarse_class: "np.ndarray | None"


class NObLeWifi:
    """The paper's Wi-Fi localization model.

    Parameters
    ----------
    tau:
        Fine grid side length (meters); the paper uses τ < 0.2 m.
    coarse:
        Coarse grid side length l > τ for the auxiliary head.
    hidden:
        Hidden layer width (128 in the paper).
    heads:
        Which output heads to train.  ``"fine"`` is mandatory; dropping
        heads reproduces the A2 ablation.
    adjacency_weight:
        Soft target weight for cells adjacent to the true cell
        (0 disables the §III-B multi-label augmentation).
    epochs, batch_size, lr, weight_decay:
        Optimization hyperparameters (Adam).
    val_fraction:
        Held-out fraction for early stopping; 0 disables.
    signal_transform:
        Optional representation applied after normalization — a callable
        or a name from :mod:`repro.localization.representations`
        (``"powed"``, ``"exponential"``, ``"binary"``).
    dtype:
        Training/inference precision of the network — ``"float32"`` for
        the fast path, ``"float64"``/``None`` for the historical
        default.  Signals, targets, weights, and gradients all follow
        it; there are no silent upcasts in between.
    fused:
        Use the allocation-free trainer/optimizer fast path (default).
        ``fused=False`` reproduces the seed's allocating loops exactly —
        kept as the reference baseline for ``train-bench``.
    """

    def __init__(
        self,
        tau: float = 0.2,
        coarse: float = 4.0,
        hidden: int = 128,
        heads: tuple = ALL_HEADS,
        adjacency_weight: float = 0.3,
        head_weights: "dict[str, float] | None" = None,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
        weight_decay: float = 0.0,
        val_fraction: float = 0.1,
        patience: int = 10,
        signal_transform=None,
        seed=0,
        dtype=None,
        fused: bool = True,
        quantize_bins: "int | None" = None,
    ):
        if "fine" not in heads:
            raise ValueError("the 'fine' head is mandatory (it provides positions)")
        unknown = set(heads) - set(ALL_HEADS)
        if unknown:
            raise ValueError(f"unknown heads: {sorted(unknown)}")
        if not 0 <= val_fraction < 1:
            raise ValueError(f"val_fraction must be in [0, 1), got {val_fraction}")
        self.tau = float(tau)
        self.coarse = float(coarse)
        self.hidden = int(hidden)
        self.heads = tuple(h for h in ALL_HEADS if h in heads)
        self.adjacency_weight = float(adjacency_weight)
        self.head_weights = dict(head_weights or {})
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.val_fraction = float(val_fraction)
        self.patience = int(patience)
        if isinstance(signal_transform, str):
            from repro.localization.representations import get_representation

            signal_transform = get_representation(signal_transform)
        self.signal_transform = signal_transform
        self.seed = seed
        self.dtype = dtype
        self._dtype = resolve_dtype(dtype)
        self.fused = bool(fused)
        self.quantize_bins = (
            None if quantize_bins is None else int(quantize_bins)
        )

        self.binner_ = None  # FeatureBinner after fit when quantize_bins set
        self.model_: "Sequential | None" = None
        self.quantizer_: "MultiResolutionQuantizer | GridQuantizer | None" = None
        self.head_slices_: "dict[str, slice] | None" = None
        self.n_buildings_: "int | None" = None
        self.n_floors_: "int | None" = None
        self.history_: "TrainingHistory | None" = None
        self.fine_class_building_: "np.ndarray | None" = None

    # --------------------------------------------------------------- training
    def fit(self, dataset: FingerprintDataset) -> "NObLeWifi":
        rng = ensure_rng(self.seed)
        self.binner_ = None  # refits must not bin through a stale binner
        signals = self._signals_of(dataset)
        if self.quantize_bins is not None:
            from repro.quantization import FeatureBinner

            # train on the bin-midpoint view so fit and serve see the exact
            # same quantized signal space (hist-gradient-boosting style)
            self.binner_ = FeatureBinner(n_bins=self.quantize_bins).fit(
                signals
            )
            signals = self.binner_.quantize(signals).astype(float)
        self.n_buildings_ = dataset.n_buildings
        self.n_floors_ = dataset.n_floors

        if "coarse" in self.heads:
            quantizer = MultiResolutionQuantizer(self.tau, self.coarse)
            fine_ids, coarse_ids = quantizer.fit_transform(dataset.coordinates)
            fine_quantizer = quantizer.fine
        else:
            quantizer = GridQuantizer(self.tau)
            fine_ids = quantizer.fit_transform(dataset.coordinates)
            coarse_ids = None
            fine_quantizer = quantizer
        self.quantizer_ = quantizer

        blocks, slices, cursor = [], {}, 0
        for head in self.heads:
            if head == "building":
                target = multi_hot(dataset.building, self.n_buildings_)
            elif head == "floor":
                target = multi_hot(dataset.floor, self.n_floors_)
            elif head == "fine":
                if self.adjacency_weight > 0:
                    target = soft_multi_hot(
                        fine_quantizer, fine_ids, self.adjacency_weight
                    )
                else:
                    target = multi_hot(fine_ids, fine_quantizer.n_classes)
            else:  # coarse
                target = multi_hot(coarse_ids, quantizer.n_coarse)
            blocks.append(target)
            slices[head] = slice(cursor, cursor + target.shape[1])
            cursor += target.shape[1]
        targets = np.hstack(blocks).astype(self._dtype, copy=False)
        signals = signals.astype(self._dtype, copy=False)
        self.head_slices_ = slices

        # majority building per fine class, for hierarchical inference
        if "building" in self.heads:
            self.fine_class_building_ = np.zeros(
                fine_quantizer.n_classes, dtype=int
            )
            for class_id in range(fine_quantizer.n_classes):
                members = dataset.building[fine_ids == class_id]
                if len(members):
                    values, counts = np.unique(members, return_counts=True)
                    self.fine_class_building_[class_id] = values[np.argmax(counts)]
        else:
            self.fine_class_building_ = None

        self.model_ = self._build_model(signals.shape[1], cursor, rng)
        loss = MultiHeadLoss(
            {
                head: (
                    slices[head],
                    BCEWithLogitsLoss(compat=not self.fused),
                    self.head_weights.get(head, 1.0),
                )
                for head in self.heads
            }
        )
        optimizer = Adam(
            self.model_.parameters(),
            lr=self.lr,
            weight_decay=self.weight_decay,
            fused=self.fused,
        )
        trainer = Trainer(self.model_, loss, optimizer, fused=self.fused)

        if self.val_fraction > 0 and len(signals) >= 20:
            n_val = max(1, int(len(signals) * self.val_fraction))
            order = rng.permutation(len(signals))
            val_idx, train_idx = order[:n_val], order[n_val:]
            train_loader = DataLoader(
                TensorDataset(signals[train_idx], targets[train_idx]),
                batch_size=self.batch_size,
                drop_last=True,
                rng=rng,
                fast_collate=self.fused,
            )
            val_loader = DataLoader(
                TensorDataset(signals[val_idx], targets[val_idx]),
                batch_size=self.batch_size,
                shuffle=False,
                fast_collate=self.fused,
            )
            self.history_ = trainer.fit(
                train_loader,
                epochs=self.epochs,
                val_loader=val_loader,
                patience=self.patience,
            )
        else:
            train_loader = DataLoader(
                TensorDataset(signals, targets),
                batch_size=self.batch_size,
                drop_last=True,
                rng=rng,
                fast_collate=self.fused,
            )
            self.history_ = trainer.fit(train_loader, epochs=self.epochs)
        return self

    def _build_model(self, n_inputs: int, n_outputs: int, rng) -> Sequential:
        dtype = self._dtype
        return Sequential(
            # the first layer's input gradient is never consumed
            Linear(n_inputs, self.hidden, rng=rng, dtype=dtype, input_grad=False),
            BatchNorm1d(self.hidden, dtype=dtype),
            Tanh(),
            Linear(self.hidden, self.hidden, rng=rng, dtype=dtype),
            BatchNorm1d(self.hidden, dtype=dtype),
            Tanh(),
            Linear(self.hidden, n_outputs, rng=rng, dtype=dtype),
        )

    # -------------------------------------------------------------- inference
    def predict(
        self,
        dataset: "FingerprintDataset | np.ndarray",
        hierarchical: bool = False,
    ) -> WifiPrediction:
        """Predict classes and coordinates for a dataset or raw signal matrix.

        With ``hierarchical=True`` (requires the building head) the fine
        cell is chosen only among cells whose training majority building
        matches the predicted building — the building head is nearly
        perfect (99.74 % in the paper), so it safely prunes cross-campus
        misclassifications from the fine head's tail.
        """
        check_fitted(self, "model_")
        signals = self._signals_of(dataset)
        self.model_.eval()
        logits = self.model_(signals)
        slices = self.head_slices_

        def head_argmax(head: str):
            if head not in slices:
                return None
            return logits[:, slices[head]].argmax(axis=1)

        if hierarchical:
            if self.fine_class_building_ is None:
                raise ValueError(
                    "hierarchical inference requires the 'building' head"
                )
            building = head_argmax("building")
            fine_logits = logits[:, slices["fine"]].copy()
            mismatch = (
                self.fine_class_building_[None, :] != building[:, None]
            )
            fine_logits[mismatch] = -np.inf
            fine = fine_logits.argmax(axis=1)
        else:
            fine = head_argmax("fine")
        fine_quantizer = (
            self.quantizer_.fine
            if isinstance(self.quantizer_, MultiResolutionQuantizer)
            else self.quantizer_
        )
        return WifiPrediction(
            coordinates=fine_quantizer.inverse_transform(fine),
            building=head_argmax("building"),
            floor=head_argmax("floor"),
            fine_class=fine,
            coarse_class=head_argmax("coarse"),
        )

    def predict_coordinates(self, dataset) -> np.ndarray:
        """(N, 2) predicted positions — the common localizer interface."""
        return self.predict(dataset).coordinates

    def embed(self, dataset) -> np.ndarray:
        """Penultimate-layer embeddings (the paper's manifold-learning view
        of the classifier: §III-C interprets these as the reconstructed
        embedding z)."""
        check_fitted(self, "model_")
        signals = self._signals_of(dataset)
        self.model_.eval()
        x = signals
        for layer in list(self.model_)[:-1]:
            x = layer(x)
        return x

    def true_labels(self, dataset: FingerprintDataset) -> dict:
        """Ground-truth integer labels per head for ``dataset``."""
        check_fitted(self, "quantizer_")
        labels: dict[str, np.ndarray] = {}
        if "building" in self.heads:
            labels["building"] = dataset.building
        if "floor" in self.heads:
            labels["floor"] = dataset.floor
        if isinstance(self.quantizer_, MultiResolutionQuantizer):
            fine, coarse = self.quantizer_.transform(dataset.coordinates, strict=False)
            labels["fine"] = fine
            if "coarse" in self.heads:
                labels["coarse"] = coarse
        else:
            labels["fine"] = self.quantizer_.transform(
                dataset.coordinates, strict=False
            )
        return labels

    def _signals_of(self, dataset) -> np.ndarray:
        if isinstance(dataset, FingerprintDataset):
            signals = dataset.normalized_signals()
        else:
            signals = np.asarray(dataset, dtype=float)
        if self.signal_transform is not None:
            signals = self.signal_transform(signals)
        if self.binner_ is not None:
            # snap inference inputs onto the quantized signal space the
            # model was trained in (midpoints are exact in float64)
            signals = self.binner_.quantize(signals).astype(float)
        return signals
