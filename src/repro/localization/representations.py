"""Alternative RSSI input representations.

The fingerprinting literature (Torres-Sospedra et al., the UJIIndoorLoc
authors) shows the input representation materially affects accuracy.
All transforms operate on the library's normalized signals (0 = not
heard / at sensitivity, 1 = strongest):

* ``identity`` — the paper's plain normalization;
* ``powed`` — x^β emphasizes strong APs (β≈e in the literature);
* ``exponential`` — exp((x−1)/α) compresses weak signals harder;
* ``binary`` — detection mask only (ablation: how much information is
  in *which* APs are heard vs how strongly).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d


def identity(signals: np.ndarray) -> np.ndarray:
    """The paper's representation: normalized signals unchanged."""
    return check_2d(signals, "signals")


def powed(signals: np.ndarray, beta: float = np.e) -> np.ndarray:
    """x^β on normalized signals (monotone; emphasizes strong APs)."""
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    signals = check_2d(signals, "signals")
    return np.power(np.clip(signals, 0.0, 1.0), beta)


def exponential(signals: np.ndarray, alpha: float = 0.25) -> np.ndarray:
    """exp((x − 1)/α), rescaled so 0 stays ~0 and 1 maps to 1."""
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    signals = np.clip(check_2d(signals, "signals"), 0.0, 1.0)
    floor = np.exp(-1.0 / alpha)
    return (np.exp((signals - 1.0) / alpha) - floor) / (1.0 - floor)


def binary(signals: np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """Detection mask: 1 where the AP was heard above ``threshold``."""
    signals = check_2d(signals, "signals")
    return (signals > threshold).astype(float)


_REPRESENTATIONS = {
    "identity": identity,
    "powed": powed,
    "exponential": exponential,
    "binary": binary,
}


def get_representation(name: str):
    """Look up a representation by name (raises with choices listed)."""
    try:
        return _REPRESENTATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown representation {name!r}; choices: "
            f"{sorted(_REPRESENTATIONS)}"
        ) from None
