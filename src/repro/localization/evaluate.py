"""Evaluation harness for Wi-Fi localizers (Tables I and II rows)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.ujiindoor import FingerprintDataset
from repro.metrics.classification import hit_rate
from repro.metrics.errors import ErrorSummary, position_errors, summarize_errors


@dataclass
class LocalizationReport:
    """One evaluated localizer: error summary plus optional hit rates."""

    name: str
    errors: ErrorSummary
    building_accuracy: "float | None" = None
    floor_accuracy: "float | None" = None
    class_accuracy: "float | None" = None
    structure_score: "float | None" = None

    def row(self) -> str:
        """A Table-II-style text row."""
        parts = [f"{self.name:<28s}", f"{self.errors.mean:8.2f}", f"{self.errors.median:8.2f}"]
        if self.structure_score is not None:
            parts.append(f"{100 * self.structure_score:9.1f}%")
        return " ".join(parts)


def evaluate_localizer(
    name: str,
    model,
    test_set: FingerprintDataset,
    plan=None,
) -> LocalizationReport:
    """Run a fitted localizer on ``test_set`` and summarize.

    Any model with ``predict_coordinates`` participates; models that also
    expose NObLe's ``predict`` get building/floor/class accuracies
    (Table I); when a floor plan is available a structure score (fraction
    of predictions on accessible space — the Fig. 4 quantification) is
    added.
    """
    predicted = model.predict_coordinates(test_set)
    errors = summarize_errors(position_errors(predicted, test_set.coordinates))
    report = LocalizationReport(name=name, errors=errors)

    if hasattr(model, "predict") and hasattr(model, "true_labels"):
        prediction = model.predict(test_set)
        truth = model.true_labels(test_set)
        if prediction.building is not None:
            report.building_accuracy = hit_rate(prediction.building, truth["building"])
        if prediction.floor is not None:
            report.floor_accuracy = hit_rate(prediction.floor, truth["floor"])
        report.class_accuracy = hit_rate(prediction.fine_class, truth["fine"])

    plan = plan if plan is not None else test_set.plan
    if plan is not None:
        report.structure_score = plan.accessibility_fraction(predicted)
    return report
