"""CNNLoc-style baseline (Song et al., IEEE Access 2019; §II of the paper).

CNNLoc stacks a (stacked-)autoencoder front-end and a 1-D CNN over the
encoded fingerprint, predicting building/floor categorically and the
position by regression; the paper quotes its UJIIndoorLoc result
(11.78 m mean, ~99 % building, ~94 % floor) as the DNN state of the art
NObLe improves on.  This implementation keeps that shape: SAE
pretraining → Conv1d/MaxPool feature extractor → multi-head output
(building + floor BCE heads, coordinate MSE head).
"""

from __future__ import annotations

import numpy as np

from repro.data.ujiindoor import FingerprintDataset
from repro.nn import (
    Adam,
    BCEWithLogitsLoss,
    DataLoader,
    Linear,
    MSELoss,
    MultiHeadLoss,
    ReLU,
    Sequential,
    Tanh,
    TensorDataset,
    Trainer,
    TrainingHistory,
)
from repro.nn.autoencoder import pretrain_stacked_autoencoder
from repro.nn.conv import Conv1d, Flatten, MaxPool1d, Unflatten
from repro.nn.dtypes import resolve_dtype
from repro.quantization.labels import multi_hot
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class CNNLocWifi:
    """SAE + 1-D CNN localization baseline.

    Parameters
    ----------
    encoder_sizes:
        Stacked-autoencoder widths (the front-end is pretrained greedily
        then fine-tuned end to end).
    conv_channels, kernel_size, pool:
        The 1-D CNN over the encoded fingerprint.
    quantize_bins:
        Train and serve on the uint8-quantized radio map (the
        :class:`repro.quantization.FeatureBinner` reconstruction) —
        same semantics as the NObLe/kNN backends.
    """

    def __init__(
        self,
        encoder_sizes: tuple = (128, 64),
        conv_channels: tuple = (8, 16),
        kernel_size: int = 3,
        pool: int = 2,
        pretrain_epochs: int = 20,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed=0,
        dtype=None,
        fused: bool = True,
        quantize_bins: "int | None" = None,
    ):
        if not encoder_sizes:
            raise ValueError("encoder_sizes must not be empty")
        if not conv_channels:
            raise ValueError("conv_channels must not be empty")
        self.encoder_sizes = tuple(int(s) for s in encoder_sizes)
        self.conv_channels = tuple(int(c) for c in conv_channels)
        self.kernel_size = int(kernel_size)
        self.pool = int(pool)
        self.pretrain_epochs = int(pretrain_epochs)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.seed = seed
        self.dtype = dtype
        self._dtype = resolve_dtype(dtype)
        self.fused = bool(fused)
        self.quantize_bins = (
            None if quantize_bins is None else int(quantize_bins)
        )
        self.binner_ = None  # FeatureBinner after fit when quantizing
        self.model_: "Sequential | None" = None
        self.head_slices_: "dict | None" = None
        self.coord_mean_: "np.ndarray | None" = None
        self.coord_std_: "np.ndarray | None" = None
        self.history_: "TrainingHistory | None" = None

    def fit(self, dataset: FingerprintDataset) -> "CNNLocWifi":
        rng = ensure_rng(self.seed)
        signals = dataset.normalized_signals()
        if self.quantize_bins is not None:
            from repro.quantization import FeatureBinner

            # train on the quantizer's reconstruction so training and
            # serving see the identical feature space
            self.binner_ = FeatureBinner(n_bins=self.quantize_bins).fit(
                signals
            )
            signals = self.binner_.quantize(signals)
        signals = signals.astype(self._dtype, copy=False)
        n_buildings = dataset.n_buildings
        n_floors = dataset.n_floors

        encoders = pretrain_stacked_autoencoder(
            signals,
            list(self.encoder_sizes),
            epochs=self.pretrain_epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            rng=rng,
            dtype=self._dtype,
            fused=self.fused,
        )

        self.model_, self.head_slices_ = self._build_network(
            signals.shape[1], n_buildings, n_floors, rng, encoders=encoders
        )

        self.coord_mean_ = dataset.coordinates.mean(axis=0)
        self.coord_std_ = dataset.coordinates.std(axis=0)
        self.coord_std_[self.coord_std_ == 0] = 1.0
        targets = np.hstack(
            [
                multi_hot(dataset.building, n_buildings),
                multi_hot(dataset.floor, n_floors),
                (dataset.coordinates - self.coord_mean_) / self.coord_std_,
            ]
        ).astype(self._dtype, copy=False)
        compat = not self.fused
        loss = MultiHeadLoss(
            {
                "building": (
                    self.head_slices_["building"],
                    BCEWithLogitsLoss(compat=compat),
                    1.0,
                ),
                "floor": (
                    self.head_slices_["floor"],
                    BCEWithLogitsLoss(compat=compat),
                    1.0,
                ),
                "position": (self.head_slices_["position"], MSELoss(compat=compat), 1.0),
            }
        )
        trainer = Trainer(
            self.model_,
            loss,
            Adam(self.model_.parameters(), lr=self.lr, fused=self.fused),
            fused=self.fused,
        )
        loader = DataLoader(
            TensorDataset(signals, targets),
            batch_size=self.batch_size,
            drop_last=True,
            rng=rng,
            fast_collate=self.fused,
        )
        self.history_ = trainer.fit(loader, epochs=self.epochs)
        return self

    def _build_network(
        self,
        n_inputs: int,
        n_buildings: int,
        n_floors: int,
        rng,
        encoders: "list[Linear] | None" = None,
    ) -> "tuple[Sequential, dict]":
        """Assemble the SAE + CNN + multi-head network and its head layout.

        ``encoders`` are the pretrained SAE layers from :meth:`fit`; when
        None (the persistence restore path), architecturally identical
        fresh :class:`Linear` layers are built instead — pretraining only
        shapes the weights, which the caller then overwrites via
        ``load_state_dict``.
        """
        if encoders is None:
            sizes = (int(n_inputs), *self.encoder_sizes)
            encoders = [
                Linear(n_in, n_out, rng=rng, dtype=self._dtype)
                for n_in, n_out in zip(sizes, sizes[1:])
            ]
        layers: list = []
        for encoder in encoders:
            layers.extend([encoder, Tanh()])
        layers.append(Unflatten(1))
        length = self.encoder_sizes[-1]
        in_channels = 1
        for out_channels in self.conv_channels:
            conv = Conv1d(
                in_channels, out_channels, self.kernel_size, rng=rng,
                dtype=self._dtype,
            )
            layers.extend([conv, ReLU(), MaxPool1d(self.pool)])
            length = (length - self.kernel_size + 1) // self.pool
            if length < 1:
                raise ValueError(
                    "CNN stack shrinks the encoded fingerprint to nothing; "
                    "reduce conv_channels/kernel_size/pool"
                )
            in_channels = out_channels
        layers.append(Flatten())
        flat_width = in_channels * length

        head_width = n_buildings + n_floors + 2
        layers.append(Linear(flat_width, head_width, rng=rng, dtype=self._dtype))
        head_slices = {
            "building": slice(0, n_buildings),
            "floor": slice(n_buildings, n_buildings + n_floors),
            "position": slice(n_buildings + n_floors, head_width),
        }
        return Sequential(*layers), head_slices

    def predict_coordinates(self, dataset) -> np.ndarray:
        out = self._forward(dataset)
        standardized = out[:, self.head_slices_["position"]]
        return standardized * self.coord_std_ + self.coord_mean_

    def predict_labels(self, dataset) -> tuple[np.ndarray, np.ndarray]:
        """(building, floor) argmax predictions."""
        out = self._forward(dataset)
        return (
            out[:, self.head_slices_["building"]].argmax(axis=1),
            out[:, self.head_slices_["floor"]].argmax(axis=1),
        )

    def predict_full(
        self, dataset
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(coordinates, building, floor) from a single forward pass."""
        out = self._forward(dataset)
        standardized = out[:, self.head_slices_["position"]]
        return (
            standardized * self.coord_std_ + self.coord_mean_,
            out[:, self.head_slices_["building"]].argmax(axis=1),
            out[:, self.head_slices_["floor"]].argmax(axis=1),
        )

    def _forward(self, dataset) -> np.ndarray:
        check_fitted(self, "model_")
        signals = self._signals(dataset)
        self.model_.eval()
        return self.model_(signals)

    def _signals(self, dataset) -> np.ndarray:
        if isinstance(dataset, FingerprintDataset):
            signals = dataset.normalized_signals()
        else:
            signals = np.asarray(dataset, dtype=float)
        if self.binner_ is not None:
            signals = self.binner_.quantize(signals)
        return signals
