"""Command-line experiment driver.

Run the paper's experiments without writing code::

    python -m repro.cli wifi            # Tables I/II style comparison
    python -m repro.cli ipin            # single-building results
    python -m repro.cli imu             # Table III style comparison
    python -m repro.cli energy          # §IV-C / §V-D accounting
    python -m repro.cli serve-bench     # per-query vs batched serving
    python -m repro.cli serve-bench --async   # deadline-driven front end sweep
    python -m repro.cli shard-bench     # sharded vs monolithic kNN index
    python -m repro.cli train-bench     # float32 fast path vs seed training loop
    python -m repro.cli quant-bench     # uint8 radio-map scan vs float32 scan
    python -m repro.cli embed-bench     # learned-embedding kNN vs raw-RSSI kNN
    python -m repro.cli chaos-bench     # fault-injection storm vs the serving tier
    python -m repro.cli track-bench     # streaming trajectory sessions vs the oracle
    python -m repro.cli snapshot --model noble --store models/   # fit + persist
    python -m repro.cli warm-serve --model noble --store models/ # restore + serve
    python -m repro.cli wifi --preset paper --csv trainingData.csv

``--preset fast`` (default) finishes in a couple of minutes on a laptop;
``--preset paper`` approaches the paper's scale; ``--preset smoke`` is a
seconds-scale schema check for the benches that emit JSON artifacts
(train-bench, serve-bench --async).

``serve-bench --async`` pushes the query stream through
:class:`repro.serving.ServingFrontend` — concurrent producer threads,
micro-batches drained on a latency deadline — sweeping deadline vs
throughput, asserting prediction parity with the synchronous path, and
writing the ``BENCH_serve.json`` trajectory artifact.  With ``--store
DIR`` it additionally measures the cold-start vs warm-start restart leg
through the persistent model store at ``DIR``.

``snapshot`` fits a registered backend on the serving workload and
persists it through :class:`repro.core.persistence.ModelStore`;
``warm-serve`` simulates the restarted process — it restores the fitted
model from the store (no re-fit) and serves the query stream through
the async front end.  Both commands derive the store key from the same
(backend, dataset fingerprint, hyperparameters) triple, so they find
each other's artifacts across processes.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="NObLe reproduction experiment driver"
    )
    parser.add_argument(
        "experiment",
        choices=(
            "wifi", "ipin", "imu", "energy",
            "serve-bench", "shard-bench", "train-bench", "quant-bench",
            "embed-bench", "chaos-bench", "track-bench", "snapshot",
            "warm-serve",
        ),
        help="which experiment to run",
    )
    parser.add_argument(
        "--preset", choices=("fast", "paper", "smoke"), default="fast",
        help="experiment scale (default: fast; smoke is for the JSON "
             "benches: train-bench and serve-bench --async)",
    )
    parser.add_argument(
        "--csv", default=None,
        help="path to a real UJIIndoorLoc CSV (wifi experiment only)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override seed")
    parser.add_argument(
        "--model", default="knn",
        help="registered serving estimator name "
             "(serve-bench, snapshot, warm-serve)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent model-store directory: enables the serve-bench "
             "--async cold-vs-warm restart leg, and is where snapshot "
             "writes / warm-serve reads fitted-model artifacts "
             "(snapshot and warm-serve default to ./model-store)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None,
        help="query batch size (serve-bench and shard-bench; "
             "default: 64, or the preset's for serve-bench --async)",
    )
    parser.add_argument(
        "--async", dest="run_async", action="store_true",
        help="serve-bench only: benchmark the deadline-driven async "
             "front end (deadline sweep, parity assertion, "
             "BENCH_serve.json artifact)",
    )
    parser.add_argument(
        "--deadlines", default=None,
        help="comma-separated flush deadlines in ms for the "
             "serve-bench --async sweep (default: the preset's, "
             "e.g. 5,20,50)",
    )
    parser.add_argument(
        "--producers", type=int, default=None,
        help="concurrent producer threads for serve-bench --async "
             "(default: the preset's)",
    )
    parser.add_argument(
        "--workers", default=None,
        help="comma-separated shard-worker process counts for the "
             "serve-bench --async multi-process sweep (0 = thread "
             "front end, always included; default: the preset's, "
             "e.g. 0,1,2)",
    )
    parser.add_argument(
        "--points", type=int, default=None,
        help="radio-map size override (shard-bench only)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count override (shard-bench only)",
    )
    parser.add_argument(
        "--partitioner", default="kmeans",
        choices=("kmeans", "labels", "chunk"),
        help="shard partitioning policy (shard-bench only)",
    )
    parser.add_argument(
        "--output", default=None,
        help="where the JSON trajectory entry is written (default: "
             "BENCH_train.json for train-bench, BENCH_serve.json for "
             "serve-bench --async)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="override the asserted speedup floor (train-bench NObLe "
             "cold fit / serve-bench --async headline throughput; "
             "0 disables the assertion)",
    )
    parser.add_argument(
        "--models", default="noble,cnnloc",
        help="comma-separated train-bench models (noble, cnnloc)",
    )
    args = parser.parse_args(argv)

    smoke_capable = (
        "train-bench", "serve-bench", "quant-bench", "embed-bench",
        "chaos-bench", "track-bench", "snapshot", "warm-serve",
    )
    if args.experiment not in smoke_capable and args.preset == "smoke":
        raise SystemExit(
            "--preset smoke is only supported by train-bench, "
            "serve-bench --async, quant-bench, embed-bench, "
            "chaos-bench, track-bench, snapshot, and warm-serve"
        )
    runner = {
        "wifi": run_wifi,
        "ipin": run_ipin,
        "imu": run_imu,
        "energy": run_energy,
        "serve-bench": run_serve_bench,
        "shard-bench": run_shard_bench,
        "train-bench": run_train_bench,
        "quant-bench": run_quant_bench,
        "embed-bench": run_embed_bench,
        "chaos-bench": run_chaos_bench,
        "track-bench": run_track_bench,
        "snapshot": run_snapshot,
        "warm-serve": run_warm_serve,
    }[args.experiment]
    runner(args)
    return 0


def run_wifi(args) -> None:
    from repro.core.config import WifiExperimentConfig
    from repro.data import generate_uji_like, load_uji_csv
    from repro.localization import (
        DeepRegressionProjection,
        DeepRegressionWifi,
        KNNFingerprinting,
        NObLeWifi,
        evaluate_localizer,
    )

    cfg = getattr(WifiExperimentConfig, args.preset)()
    seed = args.seed if args.seed is not None else cfg.seed
    if args.csv:
        print(f"loading {args.csv}")
        dataset = load_uji_csv(args.csv)
    else:
        dataset = generate_uji_like(
            n_spots_per_building=cfg.n_spots_per_building,
            measurements_per_spot=cfg.measurements_per_spot,
            n_aps_per_floor=cfg.n_aps_per_floor,
            seed=seed,
        )
    train, test = dataset.split(
        (1.0 - cfg.test_fraction, cfg.test_fraction), rng=seed + 1
    )
    print(f"{len(train)} train / {len(test)} test, {dataset.n_aps} WAPs\n")

    common = dict(
        epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr,
        val_fraction=0.0, seed=seed,
    )
    models = [
        ("NObLe", NObLeWifi(tau=cfg.tau, coarse=cfg.coarse,
                            adjacency_weight=cfg.adjacency_weight, **common)),
        ("Deep Regression", DeepRegressionWifi(**common)),
        ("Regression Projection", DeepRegressionProjection(**common)),
        ("kNN fingerprinting", KNNFingerprinting(k=3)),
    ]
    print("model                          mean(m)  median(m)  on-map")
    for name, model in models:
        model.fit(train)
        report = evaluate_localizer(name, model, test)
        print(report.row())


def run_ipin(args) -> None:
    from repro.data import generate_ipin_like
    from repro.localization import (
        DeepRegressionWifi,
        NObLeWifi,
        evaluate_localizer,
    )

    seed = args.seed if args.seed is not None else 13
    scale = dict(fast=(40, 6, 16), paper=(90, 12, 28))[args.preset]
    n_spots, per_spot, n_aps = scale
    dataset = generate_ipin_like(
        n_spots=n_spots, measurements_per_spot=per_spot, n_aps=n_aps, seed=seed
    )
    train, test = dataset.split((0.8, 0.2), rng=seed + 1)
    print(f"{len(train)} train / {len(test)} test\n")
    common = dict(epochs=200, batch_size=32, val_fraction=0.0, seed=seed)
    print("model                          mean(m)  median(m)")
    for name, model in [
        ("NObLe", NObLeWifi(tau=0.2, coarse=3.0,
                            heads=("floor", "fine", "coarse"), **common)),
        ("Deep Regression", DeepRegressionWifi(**common)),
    ]:
        model.fit(train)
        print(evaluate_localizer(name, model, test).row())


def run_imu(args) -> None:
    from repro.core.config import IMUExperimentConfig
    from repro.data import CampusWalkSimulator, build_path_dataset
    from repro.data.imu import court_route_graph
    from repro.tracking import (
        DeadReckoningTracker,
        DeepRegressionTracker,
        MapCorrectedTracker,
        NObLeTracker,
        evaluate_tracker,
    )
    from repro.tracking.distance_ml import MLDistanceTracker

    if args.preset == "paper":
        cfg = IMUExperimentConfig.paper()
    else:
        cfg = IMUExperimentConfig(
            references_per_walk=30, samples_per_segment=256, n_paths=2000,
            max_path_length=12, downsample=32, epochs=250, lr=3e-3,
        )
    seed = args.seed if args.seed is not None else cfg.seed
    print("recording walks ...")
    simulator = CampusWalkSimulator(samples_per_segment=cfg.samples_per_segment)
    walks = simulator.record_session(
        n_walks=cfg.n_walks, references_per_walk=cfg.references_per_walk,
        rng=seed,
    )
    data = build_path_dataset(
        walks, n_paths=cfg.n_paths, max_length=cfg.max_path_length,
        downsample=cfg.downsample, rng=seed + 1,
    )
    print(f"{len(data)} paths\n")

    raw = np.vstack([w.segments for w in walks])
    headings = np.concatenate([w.headings for w in walks])
    corners = court_route_graph().nodes

    print("training NObLe ...")
    noble = NObLeTracker(
        tau=cfg.tau, epochs=cfg.epochs, lr=cfg.lr, batch_size=cfg.batch_size,
        patience=60, seed=seed,
    ).fit(data)
    print("training Deep Regression ...")
    regression = DeepRegressionTracker(
        epochs=cfg.epochs, lr=cfg.lr, batch_size=cfg.batch_size,
        patience=60, seed=seed,
    ).fit(data)
    print("training random-forest distance model ([8]-style ML) ...")
    forest = MLDistanceTracker(
        model="forest", downsample=cfg.downsample, seed=seed
    )
    forest.fit_walks(walks)
    forest.fit(data)

    trackers = [
        ("NObLe", noble),
        ("Deep Regression", regression),
        ("RF distance ([8]-style)", forest),
        ("PDR", DeadReckoningTracker(raw, "pdr", initial_headings=headings).fit(data)),
        ("Raw integration",
         DeadReckoningTracker(raw, "integration", initial_headings=headings).fit(data)),
        ("Map heuristic ([8]-style)",
         MapCorrectedTracker(raw, corners, initial_headings=headings).fit(data)),
    ]
    print("\nmodel                          mean(m)  median(m)")
    for name, tracker in trackers:
        print(evaluate_tracker(name, tracker, data).row())


def run_serve_bench(args) -> None:
    """Benchmark the serving layer: per-query vs micro-batched vs cached.

    Builds a synthetic UJIIndoorLoc-sized radio map, fits one registered
    estimator through the :class:`repro.serving.ModelCache`, then serves
    the same query workload (a) one request at a time and (b) through the
    :class:`repro.serving.MicroBatcher`, asserting identical predictions.

    With ``--async``, the workload instead goes through the
    deadline-driven :class:`repro.serving.ServingFrontend`: concurrent
    producers, a flush-deadline sweep, per-leg prediction parity against
    the synchronous oracle, and a schema-validated ``BENCH_serve.json``
    trajectory artifact.
    """
    import time

    from repro.data import generate_uji_like
    from repro.serving import MicroBatcher, ModelCache, get

    if args.run_async:
        return run_serve_bench_async(args)
    if args.preset == "smoke":
        raise SystemExit("serve-bench --preset smoke requires --async")
    get(args.model)  # fail fast on a typo'd name, before dataset generation
    seed = args.seed if args.seed is not None else 42
    batch_size = args.batch_size if args.batch_size is not None else 64
    scale = dict(fast=(48, 10, 10, 400), paper=(170, 20, 18, 2000))[args.preset]
    n_spots, per_spot, n_aps, n_queries = scale
    dataset = generate_uji_like(
        n_spots_per_building=n_spots,
        measurements_per_spot=per_spot,
        n_aps_per_floor=n_aps,
        seed=seed,
    )
    train, test = dataset.split((0.8, 0.2), rng=seed + 1)
    rng = np.random.default_rng(seed + 2)
    queries = test.rssi[rng.integers(0, len(test), size=n_queries)]
    print(
        f"radio map: {len(train)} fingerprints x {train.n_aps} WAPs, "
        f"{n_queries} queries, model={args.model!r}\n"
    )

    cache = ModelCache(capacity=4)
    tic = time.perf_counter()
    estimator = cache.get_or_fit(args.model, train)
    fit_cold = time.perf_counter() - tic
    tic = time.perf_counter()
    cache.get_or_fit(args.model, train)
    fit_warm = time.perf_counter() - tic
    print(f"fit (cache miss) : {fit_cold * 1000:9.2f} ms")
    print(f"fit (cache hit)  : {fit_warm * 1000:9.2f} ms "
          f"({fit_cold / max(fit_warm, 1e-9):.0f}x faster)")

    tic = time.perf_counter()
    single = [estimator.predict_batch(q[None, :]) for q in queries]
    t_single = time.perf_counter() - tic

    batcher = MicroBatcher(estimator, batch_size=batch_size)
    tic = time.perf_counter()
    batched = batcher.predict_many(queries)
    t_batched = time.perf_counter() - tic

    single_xy = np.vstack([p.coordinates for p in single])
    if not np.allclose(single_xy, batched.coordinates, rtol=0.0, atol=1e-9):
        raise AssertionError("batched predictions diverge from per-query")

    print(f"\nper-query        : {t_single:9.4f} s "
          f"({n_queries / t_single:10.0f} req/s)")
    print(f"micro-batched    : {t_batched:9.4f} s "
          f"({n_queries / t_batched:10.0f} req/s, "
          f"batch={batch_size}, {batcher.n_batches} calls)")
    print(f"batching speedup : {t_single / t_batched:9.1f}x")
    stats = cache.stats()
    print(f"cache            : {stats.hits} hits / {stats.misses} misses "
          f"({stats.size}/{stats.capacity} slots)")


def run_serve_bench_async(args) -> None:
    """Benchmark the deadline-driven async serving front end.

    Sweeps flush deadline vs throughput through
    :class:`repro.serving.ServingFrontend` with concurrent producer
    threads, asserts per-leg prediction parity against the synchronous
    path and a minimum headline speedup over naive per-query serving,
    then sweeps the multi-process shard-worker tier (``--workers``,
    preset default) against the thread front end at the headline
    deadline, prints the comparison, and writes the
    ``BENCH_serve.json`` perf-trajectory artifact (schema-validated
    before writing).
    """
    import json

    from repro.bench import run_serve_bench as bench, validate_bench_payload

    seed = args.seed if args.seed is not None else 42
    deadlines = None
    if args.deadlines is not None:
        try:
            deadlines = tuple(
                float(d) for d in args.deadlines.split(",") if d.strip()
            )
        except ValueError:
            raise SystemExit(
                f"serve-bench: --deadlines must be comma-separated numbers, "
                f"got {args.deadlines!r}"
            ) from None
    workers = None
    if args.workers is not None:
        try:
            workers = tuple(
                int(w) for w in args.workers.split(",") if w.strip()
            )
        except ValueError:
            raise SystemExit(
                f"serve-bench: --workers must be comma-separated integers, "
                f"got {args.workers!r}"
            ) from None
    try:
        result = bench(
            preset=args.preset,
            seed=seed,
            model=args.model,
            batch_size=args.batch_size,
            deadlines_ms=deadlines,
            producers=args.producers,
            min_speedup=args.min_speedup,
            store_dir=args.store,
            workers=workers,
        )
    except (ValueError, AssertionError) as error:
        raise SystemExit(f"serve-bench: {error}") from None
    print(result.report())
    payload = result.payload()
    validate_bench_payload(payload)
    output = args.output if args.output is not None else "BENCH_serve.json"
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {output}")


def run_quant_bench(args) -> None:
    """Standalone run of the serve-bench quant block.

    Benchmarks the uint8 radio-map scan (binned
    :class:`~repro.sharding.ShardedKNNIndex` with ADC shortlist +
    exact rerank) against the monolithic float32 brute scan on the
    preset's quant-scale map, asserting the preset's req/s, recall,
    and bytes-per-fingerprint floors — the same block ``serve-bench
    --async`` embeds in ``BENCH_serve.json``, runnable in isolation
    (``--preset smoke`` for a seconds-scale check, ``--min-speedup``
    to override or disable the throughput floor).
    """
    from repro.bench.serve import PRESETS, _quant_block

    seed = args.seed if args.seed is not None else 42
    config = PRESETS[args.preset]
    min_speedup = (
        config.quant_min_speedup
        if args.min_speedup is None
        else float(args.min_speedup)
    )
    try:
        block = _quant_block(config, seed, min_speedup)
    except (ValueError, AssertionError) as error:
        raise SystemExit(f"quant-bench: {error}") from None
    head = block["headline"]
    print(
        f"quant-bench preset={args.preset} seed={seed}: "
        f"{block['n_points']} x {block['n_aps']} map, "
        f"{block['n_bins']} bins, k={block['k']}, refine={block['refine']}"
    )
    print(
        f"  float32 scan: {block['baseline']['seconds']:7.3f} s "
        f"({block['baseline']['requests_per_second']:7.0f} req/s, "
        f"{block['baseline']['bytes_per_fingerprint']:.0f} B/fp)"
    )
    print(
        f"  uint8 scan  : {block['quant']['seconds']:7.3f} s "
        f"({block['quant']['requests_per_second']:7.0f} req/s, "
        f"{block['quant']['bytes_per_fingerprint']:.0f} B/fp)"
    )
    print(
        f"  {head['speedup_vs_float32']:.2f}x req/s "
        f"(floor {head['min_speedup_asserted']:.1f}x"
        + ("" if head["floor_enforced"] else ", not enforced")
        + f"), recall@k {head['recall_at_k']:.4f} "
        f"(floor {head['min_recall_asserted']:.2f}), "
        f"{head['bytes_ratio']:.2f}x scan bytes "
        f"(ceiling {head['max_bytes_ratio_asserted']:.2f}x)"
    )
    print(
        f"  position error {block['quant_error_m']:.2f} m vs oracle "
        f"{block['oracle_error_m']:.2f} m (delta {block['error_delta_m']:+.3f} m)"
    )


def run_embed_bench(args) -> None:
    """Standalone run of the serve-bench embed block.

    Fits the raw-RSSI ``knn`` and learned-embedding ``embed-knn``
    backends on the same noisy radio map and serves the same held-out
    queries through both, asserting the preset's req/s floor (at
    matched location-recall@k) and position-error ceiling — the same
    block ``serve-bench --async`` embeds in ``BENCH_serve.json``,
    runnable in isolation (``--preset smoke`` for a seconds-scale
    check, ``--min-speedup`` to override or disable the throughput
    floor).
    """
    from repro.bench.serve import PRESETS, _embed_block

    seed = args.seed if args.seed is not None else 42
    config = PRESETS[args.preset]
    min_speedup = (
        config.embed_min_speedup
        if args.min_speedup is None
        else float(args.min_speedup)
    )
    try:
        block = _embed_block(config, seed, min_speedup)
    except (ValueError, AssertionError) as error:
        raise SystemExit(f"embed-bench: {error}") from None
    head = block["headline"]
    print(
        f"embed-bench preset={args.preset} seed={seed}: "
        f"{block['n_points']} x {block['n_aps']} map -> "
        f"{block['n_components']}-dim {block['embedder']!r} embedding, "
        f"k={block['k']}, {block['n_queries']} held-out queries"
    )
    for label, leg in (("raw kNN ", block["raw"]), ("embed-knn", block["embed"])):
        print(
            f"  {label}: {leg['seconds']:7.3f} s "
            f"({leg['requests_per_second']:7.0f} req/s, "
            f"error {leg['error_m']:.2f} m, "
            f"recall@k {leg['recall_at_k']:.3f}, "
            f"fit {leg['fit_seconds']:.1f} s)"
        )
    print(
        f"  {head['speedup_vs_raw']:.2f}x req/s over raw kNN "
        f"(floor {head['min_speedup_asserted']:.1f}x"
        + ("" if head["floor_enforced"] else ", not enforced")
        + f"), error ratio {head['error_ratio_vs_raw']:.3f} "
        f"(ceiling {head['max_error_ratio_asserted']:.2f}), "
        f"recall ratio {head['recall_ratio_vs_raw']:.3f} "
        f"(floor {head['min_recall_ratio_asserted']:.2f}, "
        f"within {block['recall_radius_m']:.0f} m)"
    )


def run_chaos_bench(args) -> None:
    """Standalone run of the serve-bench resilience block.

    Drives a seeded fault storm — worker SIGKILLs, SIGSTOP heartbeat
    stalls, shared-memory slot corruption, store-artifact corruption,
    and randomly slowed batches — against the self-protecting front end
    (fair-shed admission, circuit-broken failover to the thread path)
    and asserts the same floors ``serve-bench --async`` embeds in
    ``BENCH_serve.json``: zero hung requests, prediction parity on
    every answered request, and the preset's availability floor
    (``--min-speedup`` is not used here; the floor comes from the
    preset's ``chaos_min_availability``).
    """
    from repro.bench.serve import PRESETS, _resilience_block, serve_workload

    seed = args.seed if args.seed is not None else 42
    try:
        config, train, queries = serve_workload(args.preset, seed)
        block = _resilience_block(
            config, train, queries, seed, config.chaos_min_availability
        )
    except (ValueError, AssertionError) as error:
        raise SystemExit(f"chaos-bench: {error}") from None
    faults, outcomes, head = block["faults"], block["outcomes"], block["headline"]
    print(
        f"chaos-bench preset={args.preset} seed={seed}: "
        f"{block['queries']} queries through {block['workers']} workers "
        f"(shm={'yes' if block['shm_available'] else 'no'}, "
        f"max_pending={block['max_pending']})"
    )
    print(
        f"  faults  : kills={faults['kills']} stalls={faults['stalls']} "
        f"slot_corruptions={faults['slot_corruptions']} "
        f"store_corruptions={faults['store_corruptions']} "
        f"delayed_batches={faults['delayed_batches']}"
    )
    print(
        f"  recovery: respawns={block['pool']['respawns']} "
        f"store_heals={block['pool']['store_heals']} "
        f"breaker_trips={block['breaker']['trips']} "
        f"failovers={block['executor']['failovers']} "
        f"(breaker now {block['breaker']['state']})"
    )
    print(
        f"  outcomes: answered={outcomes['answered']} "
        f"shed={outcomes['shed']} failed={outcomes['failed']} "
        f"hung={outcomes['hung']}; hot-tenant shed rate "
        f"{block['shed']['hot_rate']:.2f} vs lightest "
        f"{block['shed']['light_rate']:.2f} "
        f"(fairness {'ok' if head['fairness_ok'] else 'INVERTED'})"
    )
    print(
        f"  availability {head['availability']:.4f} "
        f"(floor {head['min_availability_asserted']:.2f}"
        + ("" if head["floor_enforced"] else ", not enforced")
        + "), parity on all answered requests "
        + ("ok" if head["parity_ok"] else "FAILED")
    )


def run_track_bench(args) -> None:
    """Standalone run of the serve-bench sessions block.

    Serves the preset's streaming-trajectory workload — concurrent
    per-user :class:`~repro.serving.sessions.TrackingSession`\\ s
    micro-batched across users per time step behind the threaded
    :class:`~repro.serving.sessions.TrackingFrontend` — and asserts
    the same floors ``serve-bench --async`` embeds in
    ``BENCH_serve.json``: bitwise trajectory parity against the
    offline single-session oracle (RMSE delta exactly 0.0 m), zero
    lost tracks across the checkpoint/restart leg, and the preset's
    concurrent-ticks/sec floor (``--min-speedup`` overrides it; 0
    disables).
    """
    from repro.bench.serve import PRESETS, _sessions_block

    seed = args.seed if args.seed is not None else 42
    config = PRESETS[args.preset]
    min_tracks = (
        config.track_min_tracks_per_s
        if args.min_speedup is None
        else float(args.min_speedup)
    )
    try:
        block = _sessions_block(config, seed, min_tracks)
    except (ValueError, AssertionError) as error:
        raise SystemExit(f"track-bench: {error}") from None
    t, p, rec = block["throughput"], block["parity"], block["recovery"]
    head = block["headline"]
    print(
        f"track-bench preset={args.preset} seed={seed}: "
        f"{block['users']} concurrent {block['engine']!r} tracks x "
        f"{block['ticks_per_user']} ticks "
        f"({block['samples_per_segment']} samples/segment, "
        f"batch={block['batch_size']}, {block['producers']} producers)"
    )
    print(
        f"  throughput: {t['seconds']:7.3f} s "
        f"({t['tracks_per_second']:8.0f} ticks/s across sessions, "
        f"{t['n_batches']} batches, fill {t['mean_batch_fill']:.1f})"
    )
    print(
        f"  parity    : served RMSE {p['served_rmse_m']:.2f} m vs "
        f"oracle {p['oracle_rmse_m']:.2f} m "
        f"(delta {p['rmse_delta_m']:.1f} m, "
        f"max |delta| {p['max_abs_delta_m']:.1f} m)"
    )
    print(
        f"  recovery  : {rec['checkpointed']} checkpointed, "
        f"{rec['restored']} restored after restart, "
        f"{rec['lost_tracks']} lost; resumed parity "
        f"{'ok' if rec['resumed_parity_ok'] else 'FAILED'}"
    )
    print(
        f"  headline: {head['tracks_per_second']:.0f} ticks/s over "
        f"{head['concurrent_sessions']} sessions "
        f"(floor {head['min_tracks_per_second_asserted']:.0f}"
        + ("" if head["floor_enforced"] else ", not enforced")
        + f"), RMSE delta {head['rmse_delta_m']:.1f} m, "
        f"{head['lost_tracks']} lost tracks"
    )


def _store_cache_and_workload(args):
    """(cache, train, queries, fingerprint) for snapshot / warm-serve.

    Both commands rebuild the deterministic serving workload for the
    chosen preset + seed so the dataset fingerprint — and with it the
    store key — matches across processes, then speak to the store
    through a :class:`repro.serving.ModelCache` spill tier.
    """
    from repro.bench.serve import serve_workload
    from repro.core.persistence import ModelStore
    from repro.serving import ModelCache, dataset_fingerprint, get

    get(args.model)  # fail fast on a typo'd name
    seed = args.seed if args.seed is not None else 42
    _config, train, queries = serve_workload(args.preset, seed)
    store = ModelStore(args.store if args.store is not None else "model-store")
    cache = ModelCache(capacity=2, store=store)
    return cache, train, queries, dataset_fingerprint(train)


def run_snapshot(args) -> None:
    """Fit a serving backend and persist it to the model store.

    Idempotent: if the store already holds an artifact for this
    (backend, workload fingerprint, hyperparameters) triple, the model
    is restored instead of re-fitted and the command reports so.
    """
    import time

    from repro.serving import params_key

    cache, train, _queries, fingerprint = _store_cache_and_workload(args)
    print(
        f"radio map: {len(train)} fingerprints x {train.n_aps} WAPs "
        f"(fingerprint {fingerprint[:12]}…), model={args.model!r}"
    )
    tic = time.perf_counter()
    estimator = cache.get_or_fit(args.model, train, fingerprint=fingerprint)
    elapsed = time.perf_counter() - tic
    stats = cache.stats()
    path = cache.store.path_for(
        args.model, fingerprint, params_key(estimator.params)
    )
    import os

    if not os.path.exists(path):
        # the cache degrades spill failures to a warning so serving can
        # continue, but snapshot's whole job is producing the artifact
        raise SystemExit(
            f"snapshot: the model was fitted but no artifact could be "
            f"written to {cache.store.directory!r} (see the warning "
            "above); fix the store directory and re-run"
        )
    size_kib = os.path.getsize(path) / 1024
    verb = "restored existing snapshot" if stats.disk_hits else "fitted + spilled"
    print(f"{verb} in {elapsed:.2f} s")
    print(f"artifact: {path} ({size_kib:.0f} KiB)")
    print(f"warm-serve it with: python -m repro.cli warm-serve "
          f"--model {args.model} --preset {args.preset} "
          f"--store {cache.store.directory}")


def run_warm_serve(args) -> None:
    """Restore a snapshotted model from the store and serve with it.

    The restarted-process half of the deployment story: no training
    happens when the artifact is present — the model is loaded from
    disk (a ``disk_hit``) and immediately serves the query stream
    through the deadline-driven async front end.  Without an artifact
    the command cold-fits, spills, and says so.
    """
    import time

    from repro.serving import ServingFrontend

    cache, train, queries, fingerprint = _store_cache_and_workload(args)
    tic = time.perf_counter()
    estimator = cache.get_or_fit(args.model, train, fingerprint=fingerprint)
    restore = time.perf_counter() - tic
    stats = cache.stats()
    if stats.disk_hits:
        print(f"warm start: restored {args.model!r} from the store in "
              f"{restore * 1e3:.1f} ms (no re-fit)")
    else:
        import os

        from repro.serving import params_key

        spilled = os.path.exists(
            cache.store.path_for(
                args.model, fingerprint, params_key(estimator.params)
            )
        )
        outcome = (
            "fitted + spilled (the next warm-serve restores it)"
            if spilled
            else "fitted, but the artifact could not be written — the "
                 "next warm-serve will fit again (see the warning above)"
        )
        print(f"cold start: no usable artifact in "
              f"{cache.store.directory!r}; {outcome}; "
              f"fit took {restore:.2f} s")

    batch_size = args.batch_size if args.batch_size is not None else 64
    tic = time.perf_counter()
    with ServingFrontend(
        estimator, batch_size=batch_size, deadline_ms=50.0
    ) as frontend:
        tickets = [frontend.submit(q) for q in queries]
        coordinates = np.vstack(
            [t.result().coordinates for t in tickets]
        )
    elapsed = time.perf_counter() - tic
    fe_stats = frontend.stats()
    print(
        f"served {len(coordinates)} queries in {elapsed:.3f} s "
        f"({len(coordinates) / elapsed:.0f} req/s, "
        f"{fe_stats.batches} batches, "
        f"mean fill {fe_stats.mean_batch_fill:.1f}/{batch_size})"
    )


def run_shard_bench(args) -> None:
    """Benchmark the sharded radio-map index against the monolithic scan.

    Synthesizes a campus-scale clustered radio map (200k fingerprints on
    the fast preset, 1M on paper scale), builds one monolithic
    :class:`repro.manifold.neighbors.KNNIndex` and one
    :class:`repro.sharding.ShardedKNNIndex`, then serves an identical
    batched query stream through both — asserting distance parity on
    every batch — and reports throughput.
    """
    from repro.sharding.bench import run_shard_bench as bench

    seed = args.seed if args.seed is not None else 7
    # (n_points, n_aps, n_queries, n_shards, n_spots)
    scale = dict(
        fast=(200_000, 32, 512, 96, 96),
        paper=(1_000_000, 48, 512, 256, 256),
    )[args.preset]
    n_points, n_aps, n_queries, n_shards, n_spots = scale
    if args.points is not None:
        n_points = args.points
    if args.shards is not None:
        n_shards = args.shards
    try:
        result = bench(
            n_points=n_points,
            n_aps=n_aps,
            n_queries=n_queries,
            n_shards=n_shards,
            n_spots=n_spots,
            batch_size=args.batch_size if args.batch_size is not None else 64,
            partitioner=args.partitioner,
            seed=seed,
        )
    except ValueError as error:
        raise SystemExit(f"shard-bench: {error}") from None
    print(result.report())


def run_train_bench(args) -> None:
    """Benchmark the float32 fused training fast path vs the seed loop.

    Trains NObLe (and CNNLoc) through the seed-equivalent float64
    reference configuration and the fused float32 fast path on one
    seeded workload, asserts coordinate-error parity and the minimum
    cold-fit speedup, prints the comparison, and writes the
    ``BENCH_train.json`` perf-trajectory artifact (schema-validated
    before writing).
    """
    import json

    from repro.bench import run_train_bench as bench, validate_bench_payload

    seed = args.seed if args.seed is not None else 42
    models = tuple(m.strip() for m in args.models.split(",") if m.strip())
    try:
        result = bench(
            preset=args.preset,
            seed=seed,
            models=models,
            min_speedup=args.min_speedup,
        )
    except (ValueError, AssertionError) as error:
        raise SystemExit(f"train-bench: {error}") from None
    print(result.report())
    payload = result.payload()
    validate_bench_payload(payload)
    output = args.output if args.output is not None else "BENCH_train.json"
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {output}")


def run_energy(args) -> None:
    from repro.energy import (
        GPS_FIX_ENERGY_J,
        JETSON_TX2,
        estimate_inference,
        gps_energy_ratio,
    )
    from repro.nn import BatchNorm1d, Linear, Sequential, Tanh
    from repro.tracking.network import TrackerNetwork

    wifi = Sequential(
        Linear(520, 128, rng=0), BatchNorm1d(128), Tanh(),
        Linear(128, 128, rng=0), BatchNorm1d(128), Tanh(),
        Linear(128, 1000, rng=0),
    )
    report = estimate_inference(wifi, "wifi")
    print(f"profile: {JETSON_TX2.name}")
    print(f"wifi inference : {report.inference_energy_j * 1000:.3f} mJ, "
          f"{report.inference_latency_s * 1000:.2f} ms (paper: 5.18 mJ / 2 ms)")
    tracker = TrackerNetwork(
        max_len=50, feature_dim=288, start_dim=180, head_dim=178, rng=0
    )
    imu = estimate_inference(tracker, "imu", sensing_window_s=8.0)
    print(f"imu total      : {imu.total_energy_j:.5f} J "
          f"(paper: 0.22159 J); GPS/system = {gps_energy_ratio(imu):.1f}x "
          f"(paper ~27x); GPS fix = {GPS_FIX_ENERGY_J} J")


if __name__ == "__main__":
    sys.exit(main())
