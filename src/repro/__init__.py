"""repro — a full reproduction of "Neighbor Oblivious Learning (NObLe)
for Device Localization and Tracking" (Liu, Chou & Shrivastava, DATE
2021; arXiv:2011.14954).

Quick start::

    from repro import NObLeEstimator
    model = NObLeEstimator(tau=0.5).fit(signals, coordinates)
    positions = model.predict(new_signals)

Subpackages
-----------
``repro.core``
    High-level estimator API and experiment configurations.
``repro.serving``
    Batched, cached model serving behind a unified estimator registry.
``repro.localization`` / ``repro.tracking``
    The paper's two applications (Wi-Fi fingerprinting, IMU tracking)
    with all baselines.
``repro.quantization``
    The τ-grid output-space quantization at the heart of NObLe.
``repro.nn``
    A from-scratch numpy neural-network framework (layers, batchnorm,
    losses, optimizers, trainer).
``repro.manifold``
    Isomap / LLE / MDS and kNN search (the neighbor-aware baselines).
``repro.data``
    Simulators and loaders for UJIIndoorLoc-like, IPIN2016-like, and
    IMU walk datasets.
``repro.geometry``
    Floor plans, point-in-polygon, map projection, occupancy grids.
``repro.energy``
    FLOP counting and Jetson-TX2/GPS energy accounting.
``repro.metrics`` / ``repro.viz``
    Position-error metrics, CDFs, and ASCII/CSV figure output.
"""

from repro.core.api import NObLeEstimator, create_estimator
from repro.core.config import IMUExperimentConfig, WifiExperimentConfig

__version__ = "1.0.0"

__all__ = [
    "NObLeEstimator",
    "create_estimator",
    "WifiExperimentConfig",
    "IMUExperimentConfig",
    "__version__",
]
