"""Device energy profiles and the paper's published energy constants."""

from __future__ import annotations

from dataclasses import dataclass

#: Energy of a single GPS fix, J.  The paper's §V-D GPS comparison cites
#: 5.925 J per [8]'s measurement for an 8-second tracking window.
GPS_FIX_ENERGY_J = 5.925

#: Inertial sensor power, W.  §V-D: "Inertial sensors' energy cost is
#: 0.1356 J for 8 seconds" → 0.01695 W.
IMU_SENSOR_POWER_W = 0.1356 / 8.0

#: The paper's §IV-C Wi-Fi measurement: 0.00518 J / 2 ms per inference.
PAPER_WIFI_ENERGY_J = 0.00518
PAPER_WIFI_LATENCY_S = 0.002

#: The paper's §V-D IMU inference measurement: 0.08599 J / 5 ms.
PAPER_IMU_ENERGY_J = 0.08599
PAPER_IMU_LATENCY_S = 0.005


@dataclass(frozen=True)
class DeviceProfile:
    """An affine energy/latency model: fixed overhead + per-FLOP cost.

    Real accelerators pay a fixed wake/launch cost per inference plus a
    roughly linear compute cost; both constants here are calibrated from
    the paper's own TX2 measurements (see :func:`calibrate_profile`).
    """

    name: str
    joules_per_flop: float
    overhead_joules: float
    seconds_per_flop: float
    overhead_seconds: float

    def energy(self, flops: int) -> float:
        """Energy in joules for one inference of ``flops`` FLOPs."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        return self.overhead_joules + self.joules_per_flop * flops

    def latency(self, flops: int) -> float:
        """Latency in seconds for one inference of ``flops`` FLOPs."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        return self.overhead_seconds + self.seconds_per_flop * flops


def calibrate_profile(
    name: str,
    reference_points: list[tuple[int, float, float]],
    overhead_fraction: float = 0.5,
) -> DeviceProfile:
    """Fit a profile from (flops, energy_j, latency_s) measurements.

    With one reference point the affine model is under-determined;
    ``overhead_fraction`` assigns that fraction of the measured energy
    and latency to fixed overhead (kernel launch, memory traffic), the
    remainder to compute.  With two or more points a least-squares line
    is fit instead.
    """
    if not reference_points:
        raise ValueError("need at least one reference point")
    if not 0.0 <= overhead_fraction < 1.0:
        raise ValueError(
            f"overhead_fraction must be in [0, 1), got {overhead_fraction}"
        )
    if len(reference_points) == 1:
        flops, energy, latency = reference_points[0]
        if flops <= 0:
            raise ValueError("reference flops must be positive")
        return DeviceProfile(
            name=name,
            joules_per_flop=(1.0 - overhead_fraction) * energy / flops,
            overhead_joules=overhead_fraction * energy,
            seconds_per_flop=(1.0 - overhead_fraction) * latency / flops,
            overhead_seconds=overhead_fraction * latency,
        )
    import numpy as np

    points = np.asarray(reference_points, dtype=float)
    design = np.column_stack([points[:, 0], np.ones(len(points))])
    energy_fit, *_ = np.linalg.lstsq(design, points[:, 1], rcond=None)
    latency_fit, *_ = np.linalg.lstsq(design, points[:, 2], rcond=None)
    return DeviceProfile(
        name=name,
        joules_per_flop=max(float(energy_fit[0]), 0.0),
        overhead_joules=max(float(energy_fit[1]), 0.0),
        seconds_per_flop=max(float(latency_fit[0]), 0.0),
        overhead_seconds=max(float(latency_fit[1]), 0.0),
    )


def _default_tx2() -> DeviceProfile:
    """TX2 profile calibrated on the paper's Wi-Fi measurement.

    The paper's UJIIndoorLoc model (520 → 128 → 128 → ~1000 multi-label
    outputs, with batchnorm and tanh) costs ≈ 4.2e5 FLOPs; anchoring the
    affine model there reproduces the published 0.00518 J / 2 ms.
    """
    approx_flops = 2 * (520 * 128 + 128 * 128 + 128 * 1000) + 3 * 128 * 5
    return calibrate_profile(
        "nvidia-jetson-tx2",
        [(approx_flops, PAPER_WIFI_ENERGY_J, PAPER_WIFI_LATENCY_S)],
        overhead_fraction=0.5,
    )


#: The default TX2 profile used by the energy benchmarks.
JETSON_TX2 = _default_tx2()
