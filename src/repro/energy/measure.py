"""Inference energy estimation and the GPS comparison (§IV-C, §V-D)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.flops import count_flops
from repro.energy.model import (
    DeviceProfile,
    GPS_FIX_ENERGY_J,
    IMU_SENSOR_POWER_W,
    JETSON_TX2,
)


@dataclass(frozen=True)
class InferenceEnergyReport:
    """Energy/latency estimate for one inference, plus system context."""

    model_name: str
    flops: int
    inference_energy_j: float
    inference_latency_s: float
    sensor_energy_j: float = 0.0

    @property
    def total_energy_j(self) -> float:
        """Inference + sensing energy for the full window (§V-D sums
        0.08599 J inference + 0.1356 J sensors = 0.22159 J)."""
        return self.inference_energy_j + self.sensor_energy_j


def estimate_inference(
    model,
    model_name: str = "model",
    profile: DeviceProfile = JETSON_TX2,
    sensing_window_s: float = 0.0,
    sensor_power_w: float = IMU_SENSOR_POWER_W,
) -> InferenceEnergyReport:
    """Estimate the energy of one inference of ``model`` on ``profile``.

    ``sensing_window_s`` adds the inertial-sensor energy accumulated
    while recording the model's input window (0 for Wi-Fi, ~8 s for the
    paper's IMU test path).
    """
    if sensing_window_s < 0:
        raise ValueError(f"sensing_window_s must be >= 0, got {sensing_window_s}")
    flops = count_flops(model)
    return InferenceEnergyReport(
        model_name=model_name,
        flops=flops,
        inference_energy_j=profile.energy(flops),
        inference_latency_s=profile.latency(flops),
        sensor_energy_j=sensor_power_w * sensing_window_s,
    )


def gps_energy_ratio(
    report: InferenceEnergyReport, gps_energy_j: float = GPS_FIX_ENERGY_J
) -> float:
    """How many times cheaper the system is than a GPS fix.

    The paper: 5.925 J / 0.22159 J ≈ 27×.
    """
    if report.total_energy_j <= 0:
        raise ValueError("report has non-positive total energy")
    return gps_energy_j / report.total_energy_j
