"""FLOP counting for repro.nn models (per single-sample inference)."""

from __future__ import annotations

from repro.nn.batchnorm import BatchNorm1d
from repro.nn.layers import Dropout, Identity, Linear, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.module import Module, Sequential


def count_flops(model: Module) -> int:
    """FLOPs for one forward pass of a single sample.

    Conventions: a Linear (in → out) costs ``2·in·out`` (multiply +
    accumulate) plus ``out`` for the bias; BatchNorm1d in eval mode costs
    ``4·features`` (subtract, scale, scale, shift); element-wise
    activations cost one FLOP per element.  Modules may override the
    count by defining ``flops_per_inference()`` (composites like
    :class:`repro.tracking.TrackerNetwork` do).
    """
    custom = getattr(model, "flops_per_inference", None)
    if custom is not None and not isinstance(model, Sequential):
        return int(custom())
    if isinstance(model, Sequential):
        return _count_sequential(model)
    return _count_layer(model, width_hint=None)


def _count_sequential(seq: Sequential) -> int:
    total = 0
    width = None
    for layer in seq:
        total += _count_layer(layer, width_hint=width)
        if isinstance(layer, Linear):
            width = layer.out_features
        elif isinstance(layer, Sequential):
            width = _final_width(layer) or width
    return total


def _count_layer(layer: Module, width_hint: "int | None") -> int:
    if isinstance(layer, Linear):
        flops = 2 * layer.in_features * layer.out_features
        if layer.has_bias:
            flops += layer.out_features
        return flops
    if isinstance(layer, BatchNorm1d):
        return 4 * layer.num_features
    if isinstance(layer, (Tanh, ReLU, Sigmoid, Softmax)):
        if width_hint is None:
            return 0  # unknown width: activations are negligible anyway
        return width_hint
    if isinstance(layer, (Dropout, Identity)):
        return 0
    if isinstance(layer, Sequential):
        return _count_sequential(layer)
    custom = getattr(layer, "flops_per_inference", None)
    if custom is not None:
        return int(custom())
    raise TypeError(
        f"cannot count FLOPs for {type(layer).__name__}; give it a "
        "flops_per_inference() method"
    )


def _final_width(seq: Sequential) -> "int | None":
    width = None
    for layer in seq:
        if isinstance(layer, Linear):
            width = layer.out_features
    return width
