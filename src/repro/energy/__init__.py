"""Energy accounting (paper §IV-C and §V-D).

The paper measures inference energy on an Nvidia Jetson TX2 power rail;
without that hardware we model energy analytically: FLOP counts per
inference × a device profile whose constants are calibrated to the
paper's own published measurements, plus the paper's sensor and GPS
energy constants.  The headline 27× GPS ratio is an accounting
identity over these constants, which is exactly what we reproduce.
"""

from repro.energy.flops import count_flops
from repro.energy.model import (
    DeviceProfile,
    JETSON_TX2,
    GPS_FIX_ENERGY_J,
    IMU_SENSOR_POWER_W,
    calibrate_profile,
)
from repro.energy.measure import (
    InferenceEnergyReport,
    estimate_inference,
    gps_energy_ratio,
)

__all__ = [
    "count_flops",
    "DeviceProfile",
    "JETSON_TX2",
    "GPS_FIX_ENERGY_J",
    "IMU_SENSOR_POWER_W",
    "calibrate_profile",
    "InferenceEnergyReport",
    "estimate_inference",
    "gps_energy_ratio",
]
