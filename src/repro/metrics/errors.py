"""Position error distances — the paper's evaluation measure.

"We calculate position error following the standard procedure: the
Euclidean distance between predicted and true coordinates." (§IV-B)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_2d, check_lengths_match


def position_errors(predicted: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Per-sample Euclidean distance between predictions and ground truth."""
    predicted = check_2d(predicted, "predicted")
    truth = check_2d(truth, "truth")
    check_lengths_match(predicted, truth, "predicted", "truth")
    if predicted.shape[1] != truth.shape[1]:
        raise ValueError(
            f"dimension mismatch: {predicted.shape[1]} vs {truth.shape[1]}"
        )
    return np.linalg.norm(predicted - truth, axis=1)


def mean_error(predicted: np.ndarray, truth: np.ndarray) -> float:
    return float(np.mean(position_errors(predicted, truth)))


def median_error(predicted: np.ndarray, truth: np.ndarray) -> float:
    return float(np.median(position_errors(predicted, truth)))


def percentile_error(
    predicted: np.ndarray, truth: np.ndarray, percentile: float
) -> float:
    if not 0 <= percentile <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {percentile}")
    return float(np.percentile(position_errors(predicted, truth), percentile))


@dataclass(frozen=True)
class ErrorSummary:
    """Mean / median / tail summary of a position-error distribution."""

    mean: float
    median: float
    p75: float
    p90: float
    p95: float
    max: float
    n: int

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.2f}m median={self.median:.2f}m "
            f"p90={self.p90:.2f}m p95={self.p95:.2f}m n={self.n}"
        )


def summarize_errors(errors: np.ndarray) -> ErrorSummary:
    """Summarize an error vector (as produced by :func:`position_errors`)."""
    errors = np.asarray(errors, dtype=float)
    if errors.ndim != 1:
        errors = errors.ravel()
    if len(errors) == 0:
        raise ValueError("cannot summarize an empty error vector")
    return ErrorSummary(
        mean=float(np.mean(errors)),
        median=float(np.median(errors)),
        p75=float(np.percentile(errors, 75)),
        p90=float(np.percentile(errors, 90)),
        p95=float(np.percentile(errors, 95)),
        max=float(np.max(errors)),
        n=len(errors),
    )
