"""Empirical error CDFs, the standard localization figure format."""

from __future__ import annotations

import numpy as np


def error_cdf(
    errors: np.ndarray, grid: "np.ndarray | None" = None, n_points: int = 100
) -> tuple[np.ndarray, np.ndarray]:
    """Return (x, F(x)) of the empirical CDF of an error vector.

    When ``grid`` is omitted, x spans [0, max(errors)] with ``n_points``
    samples; F(x) is the fraction of errors <= x.
    """
    errors = np.sort(np.asarray(errors, dtype=float).ravel())
    if len(errors) == 0:
        raise ValueError("cannot build a CDF from an empty error vector")
    if grid is None:
        if n_points < 2:
            raise ValueError(f"n_points must be >= 2, got {n_points}")
        grid = np.linspace(0.0, float(errors[-1]), n_points)
    else:
        grid = np.asarray(grid, dtype=float)
    cdf = np.searchsorted(errors, grid, side="right") / len(errors)
    return grid, cdf
