"""Hit rates for the categorical heads (building / floor / cell class)."""

from __future__ import annotations

import numpy as np


def hit_rate(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of exact matches between integer label vectors.

    The paper reports these as percentages (e.g. building 99.74 %);
    this function returns the fraction in [0, 1].
    """
    predicted = np.asarray(predicted)
    truth = np.asarray(truth)
    if predicted.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: predicted {predicted.shape} vs truth {truth.shape}"
        )
    if predicted.size == 0:
        return float("nan")
    return float(np.mean(predicted == truth))


def per_class_hit_rate(
    predicted: np.ndarray, truth: np.ndarray, num_classes: int
) -> np.ndarray:
    """Hit rate computed separately for each true class (nan when absent)."""
    predicted = np.asarray(predicted, dtype=int)
    truth = np.asarray(truth, dtype=int)
    rates = np.full(num_classes, np.nan)
    for class_id in range(num_classes):
        mask = truth == class_id
        if mask.any():
            rates[class_id] = float(np.mean(predicted[mask] == class_id))
    return rates
