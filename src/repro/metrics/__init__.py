"""Evaluation metrics: position errors, hit rates, error CDFs."""

from repro.metrics.errors import (
    position_errors,
    mean_error,
    median_error,
    percentile_error,
    ErrorSummary,
    summarize_errors,
)
from repro.metrics.classification import hit_rate
from repro.metrics.cdf import error_cdf

__all__ = [
    "position_errors",
    "mean_error",
    "median_error",
    "percentile_error",
    "ErrorSummary",
    "summarize_errors",
    "hit_rate",
    "error_cdf",
]
