"""Streaming trajectory serving: stateful per-user tracking sessions.

The point-query tier (:class:`~repro.serving.frontend.ServingFrontend`)
treats every request as i.i.d. — fine for Wi-Fi fingerprint lookups,
wrong for the tracking subsystem, where each user is a *sequence*: the
next position estimate depends on filter state accumulated over every
previous IMU tick.  This module promotes tracking into the serving tier:

* :class:`SessionTracker` — the streaming tracker protocol.  One engine
  instance is shared by every session of its kind; per-user state lives
  in opaque state objects the engine creates, steps, and serializes.
  Three engines wrap the existing offline trackers:

  - :class:`StreamingPDRTracker` — pedestrian dead reckoning
    (:func:`repro.tracking.dead_reckoning.pdr_track`),
  - :class:`StreamingParticleTracker` — the map-constrained particle
    filter (:class:`repro.tracking.ParticleFilterTracker`), with one
    independent RNG stream per session,
  - :class:`StreamingNobleTracker` — the learned hop-by-hop tracker
    (:class:`repro.tracking.OnlineTracker` over a fitted NObLe net).

* :class:`SessionManager` — owns the per-user
  :class:`TrackingSession` table: create on first scan (explicit
  :meth:`~SessionManager.start_session`, a ``start_resolver`` hook, or
  warm restore from a checkpoint), idle-TTL eviction, explicit
  :meth:`~SessionManager.end_session`, and micro-batched stepping
  *across users per time step* (:meth:`~SessionManager.step_batch`).

* :class:`TrackingFrontend` — a :class:`ServingFrontend` whose
  ``submit(user_id, scan, imu)`` enqueues one IMU tick per call; the
  drain path decodes each batch and hands it to the manager, so all of
  the point tier's queueing, deadline, backpressure, admission, and
  deterministic-shutdown semantics apply unchanged to session traffic.

Batched-across-users parity
---------------------------
The serving claim that makes sessions testable: stepping N sessions
together is **bitwise identical** to stepping each session alone — the
"offline single-session oracle" (:func:`solo_trajectory`).  Two design
rules buy this:

1. Per-session arithmetic uses only that session's rows and (for the
   particle filter) that session's own RNG; the across-user
   vectorization batches row-independent work (heading integration,
   step detection, the ``segment_distances`` map scan, the NObLe
   network forward) where each output row depends only on its input row.
2. The streaming step detector replicates the offline loops exactly.
   Gyro headings chain the running ``cumsum`` fold across chunks (the
   carried partial sum is the *last fold value*, so every addition
   happens in the same order as one big ``np.cumsum``), and a two-sample
   tail carries the chunk boundary: the offline loops skip ``t = 0`` and
   ``t = len-1``, so a boundary sample becomes processable exactly when
   its successor arrives.  Consequently the estimate after tick *k*
   equals running the offline tracker on the concatenation of the first
   *k* segments — the parity oracle needs no special streaming mode.

Checkpointing
-------------
Session state persists through the PR 5 :class:`ModelStore` directory
as versioned ``repro-session/1`` artifacts (same ``.npz`` + JSON
envelope idiom and atomic ``mkstemp``/``os.replace`` writes as the
estimator artifacts, addressed by ``store.path_for("session-<kind>",
namespace, user_id)``).  Snapshots are taken every
``checkpoint_every`` ticks, on idle eviction, and at ``close()``; a
fresh manager over the same store warm-restores a user's track on
first contact, with a per-user in-flight guard so a restart stampede
loads each checkpoint exactly once.  Corrupt or foreign artifacts are
quarantined (``*.corrupt``) with a warning and the track restarts
fresh — a bad file must never take down the serving path.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro.data.gait import GRAVITY, IMUConfig
from repro.data.paths import featurize_segment
from repro.geometry.segments import segment_distances
from repro.serving.frontend import ServingFrontend
from repro.serving.registry import Prediction
from repro.utils.rng import ensure_rng

#: Version tag baked into every session checkpoint artifact.
SESSION_SCHEMA = "repro-session/1"

#: Step-detection constants shared with the offline trackers.
_STEP_THRESHOLD = 1.0
_MIN_STEP_INTERVAL_S = 0.35


class UnknownSessionError(KeyError):
    """A tick arrived for a user with no session, checkpoint, or resolver."""


def _json_blob(payload: dict) -> np.ndarray:
    """A JSON payload as a uint8 array (npz archives hold arrays only)."""
    import json

    return np.frombuffer(json.dumps(payload).encode("utf-8"), dtype=np.uint8)


def _json_unblob(array: np.ndarray) -> dict:
    import json

    return json.loads(bytes(bytearray(array)).decode("utf-8"))


# ===================================================================== engines
class SessionTracker:
    """Protocol for streaming trackers behind :class:`SessionManager`.

    One engine serves every session of its kind; per-user filter state
    lives in state objects the engine hands out.  ``step_many`` is the
    vectorize-across-users entrypoint: it must be bitwise equivalent to
    stepping each state alone (the parity contract the property suite
    pins).
    """

    #: Artifact/engine discriminator ("pdr", "particle", "noble").
    kind: str = "abstract"

    def new_state(self, start_position, start_heading: float, seed):
        """Fresh per-session state at a known start pose."""
        raise NotImplementedError

    def step_many(self, states: list, segments: np.ndarray) -> np.ndarray:
        """Advance every state by its (T, 6) IMU segment; (N, 2) estimates.

        ``segments`` is (N, T, 6) — one chunk per state, equal lengths
        within the call.  States are mutated in place.
        """
        raise NotImplementedError

    def estimate(self, state) -> np.ndarray:
        """Current (2,) position estimate without consuming data."""
        raise NotImplementedError

    def state_arrays(self, state) -> "dict[str, np.ndarray]":
        """Checkpointable array view of ``state``."""
        raise NotImplementedError

    def state_meta(self, state) -> dict:
        """JSON-serializable non-array state (e.g. RNG state)."""
        return {}

    def restore_state(self, arrays: dict, meta: dict):
        """Rebuild a state object from :meth:`state_arrays` output."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable config digest; a checkpoint from a differently
        configured engine is ignored rather than silently continued."""
        raise NotImplementedError

    def _check_segments(self, states, segments) -> np.ndarray:
        segments = np.asarray(segments, dtype=float)
        if segments.ndim != 3 or segments.shape[2] != 6:
            raise ValueError(
                f"segments must be (N, T, 6), got {segments.shape}"
            )
        if len(segments) != len(states):
            raise ValueError(
                f"{len(states)} states but {len(segments)} segments"
            )
        return segments


class _StepperState:
    """Streaming step-detector state shared by the PDR/particle engines.

    ``fold`` is the running left-fold of gyro-z samples (the exact
    partial ``cumsum`` value), ``count`` the samples consumed, and the
    two tails hold the trailing (vertical, heading) samples whose peak
    test needs the not-yet-arrived successor.
    """

    __slots__ = (
        "initial_heading", "fold", "count", "last_step", "tail_v", "tail_h"
    )

    def __init__(self, initial_heading: float, min_gap: int):
        self.initial_heading = float(initial_heading)
        self.fold = 0.0
        self.count = 0
        self.last_step = -min_gap
        self.tail_v = np.empty(0)
        self.tail_h = np.empty(0)


def _extend_stream(states, segments, dt):
    """Extend each session's stream by one chunk; return peak-scan arrays.

    All states must share one tail length (callers group by it).
    Returns ``(ext_v, ext_h, abs_offset)`` — the vertical / heading
    series covering the carried tail plus the new chunk, and each row's
    absolute sample index of ``ext[:, 0]``.  Stream bookkeeping (fold,
    count, tails) is advanced here; step firing only touches tracker
    state.  Chaining the fold through ``np.cumsum`` keeps every
    addition in the same order as one offline cumsum over the full
    stream, so headings match the offline tracker bitwise.
    """
    gyro = segments[:, :, 5]
    folds = np.array([s.fold for s in states])
    run = np.cumsum(np.concatenate([folds[:, None], gyro], axis=1), axis=1)[:, 1:]
    inits = np.array([s.initial_heading for s in states])
    h_chunk = inits[:, None] + run * dt
    v_chunk = segments[:, :, 2] - GRAVITY
    tail_len = len(states[0].tail_v)
    if tail_len:
        ext_v = np.concatenate([np.stack([s.tail_v for s in states]), v_chunk], axis=1)
        ext_h = np.concatenate([np.stack([s.tail_h for s in states]), h_chunk], axis=1)
    else:
        ext_v, ext_h = v_chunk, h_chunk
    abs_offset = np.array([s.count - tail_len for s in states], dtype=int)
    chunk_len = segments.shape[1]
    keep = min(2, ext_v.shape[1])
    for i, state in enumerate(states):
        state.fold = float(run[i, -1])
        state.count += chunk_len
        state.tail_v = ext_v[i, -keep:].copy()
        state.tail_h = ext_h[i, -keep:].copy()
    return ext_v, ext_h, abs_offset


def _stepper_scalars(state) -> np.ndarray:
    return np.array(
        [
            state.initial_heading,
            state.fold,
            float(state.count),
            float(state.last_step),
        ]
    )


def _load_stepper_scalars(state, scalars) -> None:
    state.initial_heading = float(scalars[0])
    state.fold = float(scalars[1])
    state.count = int(scalars[2])
    state.last_step = int(scalars[3])


class _PDRState(_StepperState):
    __slots__ = ("position",)


class StreamingPDRTracker(SessionTracker):
    """Streaming pedestrian dead reckoning.

    Per-tick replica of :func:`repro.tracking.dead_reckoning.pdr_track`:
    after *k* ticks a session's estimate equals
    ``pdr_track(concat(segments[:k]), ...)[-1]`` bitwise, which is also
    what :class:`~repro.tracking.DeadReckoningTracker` reports for the
    full path — so the served trajectory scores identically under
    :func:`repro.tracking.evaluate_tracker`.
    """

    kind = "pdr"

    def __init__(
        self,
        config: "IMUConfig | None" = None,
        stride_length: "float | None" = None,
        step_threshold: float = _STEP_THRESHOLD,
        min_step_interval_s: float = _MIN_STEP_INTERVAL_S,
    ):
        self.config = config or IMUConfig()
        self.stride = (
            self.config.speed_mps / self.config.step_frequency_hz
            if stride_length is None
            else float(stride_length)
        )
        self.step_threshold = float(step_threshold)
        self.dt = 1.0 / self.config.sample_rate_hz
        self.min_gap = max(
            1, int(min_step_interval_s * self.config.sample_rate_hz)
        )

    def fingerprint(self) -> str:
        return repr(
            ("pdr", self.stride, self.step_threshold, self.dt, self.min_gap)
        )

    def new_state(self, start_position, start_heading: float, seed):
        state = _PDRState(start_heading, self.min_gap)
        state.position = np.asarray(start_position, dtype=float).copy()
        if state.position.shape != (2,):
            raise ValueError(
                f"start_position must be (2,), got {state.position.shape}"
            )
        return state

    def estimate(self, state) -> np.ndarray:
        return state.position.copy()

    def step_many(self, states, segments):
        segments = self._check_segments(states, segments)
        out = np.empty((len(states), 2))
        groups: "dict[int, list[int]]" = {}
        for i, state in enumerate(states):
            groups.setdefault(len(state.tail_v), []).append(i)
        for indices in groups.values():
            sub = [states[i] for i in indices]
            ext_v, ext_h, abs_offset = _extend_stream(
                sub, segments[indices], self.dt
            )
            positions = np.stack([s.position for s in sub])
            last_step = np.array([s.last_step for s in sub], dtype=int)
            for idx in range(1, ext_v.shape[1] - 1):
                v = ext_v[:, idx]
                peak = (
                    (v > self.step_threshold)
                    & (v >= ext_v[:, idx - 1])
                    & (v >= ext_v[:, idx + 1])
                )
                if not peak.any():
                    continue
                t_abs = abs_offset + idx
                fire = peak & (t_abs - last_step >= self.min_gap)
                if not fire.any():
                    continue
                last_step[fire] = t_abs[fire]
                h = ext_h[fire, idx]
                positions[fire, 0] += self.stride * np.cos(h)
                positions[fire, 1] += self.stride * np.sin(h)
            for row, i in enumerate(indices):
                states[i].position = positions[row]
                states[i].last_step = int(last_step[row])
                out[i] = positions[row]
        return out

    def state_arrays(self, state):
        return {
            "position": state.position,
            "tail_v": state.tail_v,
            "tail_h": state.tail_h,
            "scalars": _stepper_scalars(state),
        }

    def restore_state(self, arrays, meta):
        state = _PDRState(0.0, self.min_gap)
        _load_stepper_scalars(state, arrays["scalars"])
        state.position = np.asarray(arrays["position"], dtype=float).copy()
        state.tail_v = np.asarray(arrays["tail_v"], dtype=float).copy()
        state.tail_h = np.asarray(arrays["tail_h"], dtype=float).copy()
        return state


class _ParticleState(_StepperState):
    __slots__ = ("positions", "headings", "weights", "last_heading", "rng")


class StreamingParticleTracker(SessionTracker):
    """Streaming map-constrained particle filter.

    Per-event replica of
    :meth:`repro.tracking.ParticleFilterTracker._run_filter` with one
    independent RNG per session (seeded at session creation), so a
    session's end-of-path estimate equals
    ``ParticleFilterTracker(..., seed=<session seed>)
    .predict_coordinates(data, [path])`` bitwise.  ``step_many``
    batches the O(particles x route) map-distance scan across every
    session that stepped at the same sample — the dominant cost — while
    per-session noise draws stay on the session's own generator, which
    is what makes batched == solo exact.
    """

    kind = "particle"

    def __init__(
        self,
        route_segments: np.ndarray,
        config: "IMUConfig | None" = None,
        n_particles: int = 200,
        map_sigma: float = 3.0,
        step_noise: float = 0.15,
        heading_noise: float = 0.05,
    ):
        self.route_segments = np.asarray(route_segments, dtype=float)
        if self.route_segments.ndim != 3:
            raise ValueError("route_segments must be (E, 2, 2)")
        if n_particles < 2:
            raise ValueError(f"n_particles must be >= 2, got {n_particles}")
        if map_sigma <= 0:
            raise ValueError(f"map_sigma must be positive, got {map_sigma}")
        self.config = config or IMUConfig()
        self.n_particles = int(n_particles)
        self.map_sigma = float(map_sigma)
        self.step_noise = float(step_noise)
        self.heading_noise = float(heading_noise)
        self.dt = 1.0 / self.config.sample_rate_hz
        self.stride = self.config.speed_mps / self.config.step_frequency_hz
        self.min_gap = max(1, int(0.35 * self.config.sample_rate_hz))

    def fingerprint(self) -> str:
        return repr(
            (
                "particle",
                self.n_particles,
                self.map_sigma,
                self.step_noise,
                self.heading_noise,
                self.stride,
                self.dt,
                self.route_segments.shape,
            )
        )

    def new_state(self, start_position, start_heading: float, seed):
        start = np.asarray(start_position, dtype=float)
        if start.shape != (2,):
            raise ValueError(f"start_position must be (2,), got {start.shape}")
        state = _ParticleState(start_heading, self.min_gap)
        state.rng = ensure_rng(seed)
        state.positions = np.tile(start, (self.n_particles, 1))
        state.headings = np.full(
            self.n_particles, float(start_heading)
        ) + state.rng.normal(0.0, self.heading_noise, size=self.n_particles)
        state.weights = np.full(self.n_particles, 1.0 / self.n_particles)
        state.last_heading = float(start_heading)
        return state

    def estimate(self, state) -> np.ndarray:
        return np.average(state.positions, axis=0, weights=state.weights)

    def step_many(self, states, segments):
        segments = self._check_segments(states, segments)
        groups: "dict[int, list[int]]" = {}
        for i, state in enumerate(states):
            groups.setdefault(len(state.tail_v), []).append(i)
        for indices in groups.values():
            sub = [states[i] for i in indices]
            ext_v, ext_h, abs_offset = _extend_stream(
                sub, segments[indices], self.dt
            )
            last_step = np.array([s.last_step for s in sub], dtype=int)
            for idx in range(1, ext_v.shape[1] - 1):
                v = ext_v[:, idx]
                peak = (
                    (v > _STEP_THRESHOLD)
                    & (v >= ext_v[:, idx - 1])
                    & (v >= ext_v[:, idx + 1])
                )
                if not peak.any():
                    continue
                t_abs = abs_offset + idx
                fire = peak & (t_abs - last_step >= self.min_gap)
                fired = np.nonzero(fire)[0]
                if not len(fired):
                    continue
                last_step[fired] = t_abs[fired]
                self._propagate(sub, fired, ext_h[:, idx])
            for row, i in enumerate(indices):
                states[i].last_step = int(last_step[row])
        return np.stack([self.estimate(state) for state in states])

    def _propagate(self, states, fired, headings_now) -> None:
        """One step event for the fired sessions (same sample index).

        Noise draws and re-weighting run per session on its own arrays
        and generator (the bitwise-parity contract); the map-distance
        scan — O(particles x route segments), the heavy part — runs as
        one stacked call across all fired sessions.
        """
        n = self.n_particles
        for i in fired:
            state = states[i]
            h_now = float(headings_now[i])
            turn = h_now - state.last_heading
            state.last_heading = h_now
            state.headings += turn + state.rng.normal(
                0.0, self.heading_noise, size=n
            )
            steps = self.stride + state.rng.normal(
                0.0, self.step_noise * self.stride, size=n
            )
            state.positions[:, 0] += steps * np.cos(state.headings)
            state.positions[:, 1] += steps * np.sin(state.headings)
        stacked = np.concatenate([states[i].positions for i in fired], axis=0)
        distances = segment_distances(stacked, self.route_segments)
        for row, i in enumerate(fired):
            state = states[i]
            d = distances[row * n : (row + 1) * n]
            state.weights *= np.exp(-0.5 * (d / self.map_sigma) ** 2)
            total = state.weights.sum()
            if total <= 1e-300:
                state.weights[:] = 1.0 / n
            else:
                state.weights /= total
            effective = 1.0 / np.sum(state.weights**2)
            if effective < n / 2:
                chosen = state.rng.choice(n, size=n, p=state.weights)
                state.positions = state.positions[chosen]
                state.headings = state.headings[chosen] + state.rng.normal(
                    0.0, self.heading_noise / 2, size=n
                )
                state.weights[:] = 1.0 / n

    def state_arrays(self, state):
        return {
            "positions": state.positions,
            "headings": state.headings,
            "weights": state.weights,
            "tail_v": state.tail_v,
            "tail_h": state.tail_h,
            "scalars": np.concatenate(
                [_stepper_scalars(state), [state.last_heading]]
            ),
        }

    def state_meta(self, state):
        return {"rng_state": state.rng.bit_generator.state}

    def restore_state(self, arrays, meta):
        positions = np.asarray(arrays["positions"], dtype=float).copy()
        if positions.shape != (self.n_particles, 2):
            raise ValueError(
                f"checkpoint has {positions.shape[0]} particles; engine "
                f"runs {self.n_particles}"
            )
        state = _ParticleState(0.0, self.min_gap)
        _load_stepper_scalars(state, arrays["scalars"])
        state.last_heading = float(arrays["scalars"][4])
        state.positions = positions
        state.headings = np.asarray(arrays["headings"], dtype=float).copy()
        state.weights = np.asarray(arrays["weights"], dtype=float).copy()
        state.tail_v = np.asarray(arrays["tail_v"], dtype=float).copy()
        state.tail_h = np.asarray(arrays["tail_h"], dtype=float).copy()
        state.rng = ensure_rng(0)
        saved = meta.get("rng_state")
        if saved is None:
            raise ValueError("particle checkpoint is missing its RNG state")
        if saved.get("bit_generator") != type(state.rng.bit_generator).__name__:
            raise ValueError(
                "checkpoint RNG "
                f"{saved.get('bit_generator')!r} does not match this "
                f"runtime's {type(state.rng.bit_generator).__name__!r}"
            )
        state.rng.bit_generator.state = saved
        return state


class _NobleState:
    __slots__ = ("position", "heading")

    def __init__(self, position, heading: float):
        self.position = np.asarray(position, dtype=float).copy()
        if self.position.shape != (2,):
            raise ValueError(
                f"start_position must be (2,), got {self.position.shape}"
            )
        self.heading = float(heading)


class StreamingNobleTracker(SessionTracker):
    """Streaming hop-by-hop NObLe tracking (the learned engine).

    Per-tick replica of :class:`repro.tracking.OnlineTracker` at
    ``hop=1``: each tick featurizes the raw (T, 6) segment with the same
    ``featurize_segment`` that built the training set, encodes the
    session's current (position, heading) the way ``NObLeTracker._adapt``
    does, and advances position to the predicted class centroid.
    ``step_many`` runs one network forward over all sessions — the
    across-user batching the point tier applies to RSSI rows, applied to
    tracks.
    """

    kind = "noble"

    def __init__(
        self,
        tracker,
        max_length: int,
        feature_dim: int,
        segment_duration: float,
        downsample: int = 16,
    ):
        if getattr(tracker, "network_", None) is None:
            raise ValueError("tracker must be a fitted NObLeTracker")
        self.tracker = tracker
        self.max_length = int(max_length)
        self.feature_dim = int(feature_dim)
        self.segment_duration = float(segment_duration)
        self.downsample = int(downsample)

    @classmethod
    def from_dataset(cls, tracker, data, downsample: int = 16):
        """Engine wired to the dataset geometry the tracker trained on."""
        from repro.tracking.online import OnlineTracker

        return cls(
            tracker,
            max_length=data.max_length,
            feature_dim=data.feature_dim,
            segment_duration=OnlineTracker._segment_duration(data),
            downsample=downsample,
        )

    def fingerprint(self) -> str:
        return repr(
            (
                "noble",
                self.max_length,
                self.feature_dim,
                self.segment_duration,
                self.downsample,
                self.tracker.quantizer_.n_classes,
            )
        )

    def new_state(self, start_position, start_heading: float, seed):
        return _NobleState(start_position, start_heading)

    def estimate(self, state) -> np.ndarray:
        return state.position.copy()

    def step_many(self, states, segments):
        from repro.quantization.labels import multi_hot

        segments = self._check_segments(states, segments)
        tracker = self.tracker
        quantizer = tracker.quantizer_
        n_classes = quantizer.n_classes
        feats = np.stack(
            [featurize_segment(seg, self.downsample) for seg in segments]
        )
        if feats.shape[1] != self.feature_dim:
            raise ValueError(
                f"tick featurizes to width {feats.shape[1]}; the trained "
                f"backbone expects {self.feature_dim} (segment length or "
                "downsample mismatch)"
            )
        # same row layout as OnlineTracker._predict_one: padded features
        # then the start encoding from NObLeTracker._adapt
        x = np.zeros(
            (len(states), self.max_length * self.feature_dim + n_classes + 2)
        )
        x[:, : self.feature_dim] = feats
        offset = self.max_length * self.feature_dim
        for i, state in enumerate(states):
            class_id = quantizer.transform(
                state.position[None, :], strict=False
            )[0]
            x[i, offset : offset + n_classes] = multi_hot(
                np.array([class_id]), n_classes
            )[0]
            x[i, offset + n_classes] = np.cos(state.heading)
            x[i, offset + n_classes + 1] = np.sin(state.heading)
        tracker.network_.eval()
        logits = tracker.network_(x)[:, :n_classes]
        positions = quantizer.inverse_transform(logits.argmax(axis=1))
        # heading advance mirrors OnlineTracker._update_heading (hop=1)
        blocks = self.feature_dim // 6
        gyro_z = feats[:, 5 * blocks :]
        for i, state in enumerate(states):
            state.position = positions[i].astype(float).copy()
            state.heading += (
                float(gyro_z[i].mean()) * self.segment_duration
            )
        return np.stack([state.position for state in states])

    def state_arrays(self, state):
        return {
            "position": state.position,
            "scalars": np.array([state.heading]),
        }

    def restore_state(self, arrays, meta):
        return _NobleState(arrays["position"], float(arrays["scalars"][0]))


def solo_trajectory(
    engine: SessionTracker,
    segments,
    start_position,
    start_heading: float = 0.0,
    seed=0,
) -> np.ndarray:
    """The offline single-session oracle: one session stepped alone.

    Returns the (K, 2) per-tick estimates of a fresh session consuming
    ``segments`` (a sequence of (T, 6) chunks) with no other session in
    the batch — the reference every served trajectory must match
    bitwise.
    """
    state = engine.new_state(start_position, start_heading, seed)
    out = np.empty((len(segments), 2))
    for k, segment in enumerate(segments):
        chunk = np.asarray(segment, dtype=float)
        out[k] = engine.step_many([state], chunk[None])[0]
    return out


# ===================================================================== manager
class TrackingSession:
    """One user's live track: engine state plus lifecycle bookkeeping."""

    __slots__ = (
        "user_id", "seed", "state", "created_at", "last_seen", "ticks",
        "ticks_since_checkpoint", "last_position", "restored",
    )

    def __init__(self, user_id, seed, state, now: float, restored: bool = False):
        self.user_id = user_id
        self.seed = seed
        self.state = state
        self.created_at = now
        self.last_seen = now
        self.ticks = 0
        self.ticks_since_checkpoint = 0
        self.last_position: "np.ndarray | None" = None
        self.restored = restored


@dataclass
class SessionStats:
    """Lifecycle counters exposed by :meth:`SessionManager.stats`."""

    active: int
    created: int
    restored: int
    evicted: int
    ended: int
    ticks: int
    checkpoints: int
    checkpoint_failures: int
    restore_loads: int
    quarantined: int


class _InFlightRestore:
    """Per-user restore rendezvous (the ModelCache in-flight idiom)."""

    __slots__ = ("event", "error")

    def __init__(self):
        self.event = threading.Event()
        self.error: "BaseException | None" = None


class SessionManager:
    """Owns every live :class:`TrackingSession` of one engine.

    Parameters
    ----------
    engine:
        The shared :class:`SessionTracker`.
    store:
        Optional :class:`repro.core.persistence.ModelStore`; enables
        checkpointing and warm restore.  Session artifacts live in the
        store directory under ``session-<kind>`` keys and never collide
        with estimator artifacts.
    namespace:
        Checkpoint keyspace — two managers with different namespaces
        sharing one store directory never see each other's tracks.
    idle_ttl_s:
        Evict (checkpoint + drop) sessions idle this long; swept after
        every :meth:`step_batch` and via :meth:`evict_idle`.  ``None``
        disables eviction.
    checkpoint_every:
        Periodic snapshot cadence in ticks per session (0 = only on
        evict/close).
    clock:
        Monotonic ``() -> seconds``; inject a fake for deterministic
        TTL tests.
    seed:
        Base seed; per-user session seeds derive from it (stable across
        restarts, so restored particle tracks keep their RNG stream).
    start_resolver:
        Optional ``(user_id, scan) -> (start_position, start_heading)``
        hook consulted when a first tick arrives for a user with no
        live session and no checkpoint ("create on first scan").
    """

    def __init__(
        self,
        engine: SessionTracker,
        store=None,
        namespace: str = "default",
        idle_ttl_s: "float | None" = None,
        checkpoint_every: int = 0,
        clock=None,
        seed=0,
        start_resolver=None,
    ):
        if idle_ttl_s is not None and idle_ttl_s <= 0:
            raise ValueError(f"idle_ttl_s must be > 0, got {idle_ttl_s}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.engine = engine
        self.store = store
        self.namespace = str(namespace)
        self.idle_ttl_s = idle_ttl_s
        self.checkpoint_every = int(checkpoint_every)
        self.seed = seed
        self.start_resolver = start_resolver
        self._clock = time.monotonic if clock is None else clock
        self._lock = threading.RLock()
        self._sessions: "dict[object, TrackingSession]" = {}
        self._restoring: "dict[object, _InFlightRestore]" = {}
        self.n_created = 0
        self.n_restored = 0
        self.n_evicted = 0
        self.n_ended = 0
        self.n_ticks = 0
        self.n_checkpoints = 0
        self.n_checkpoint_failures = 0
        self.n_restore_loads = 0
        self.n_quarantined = 0

    # ------------------------------------------------------------- lifecycle
    def session_seed(self, user_id) -> int:
        """Deterministic per-user seed (stable across restarts)."""
        digest = hashlib.blake2b(
            repr((self.seed, str(user_id))).encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def start_session(
        self, user_id, start_position, start_heading: float = 0.0, seed=None
    ) -> TrackingSession:
        """Explicitly open a session at a known start pose."""
        seed = self.session_seed(user_id) if seed is None else seed
        with self._lock:
            if user_id in self._sessions:
                raise ValueError(f"session for {user_id!r} already exists")
            state = self.engine.new_state(start_position, start_heading, seed)
            session = TrackingSession(user_id, seed, state, self._clock())
            self._sessions[user_id] = session
            self.n_created += 1
            return session

    def ensure_session(self, user_id, scan=None) -> TrackingSession:
        """The session for ``user_id``, creating or restoring on demand.

        Resolution order: live session, then checkpoint warm restore,
        then the ``start_resolver`` hook (handed the first ``scan``).
        A per-user in-flight guard makes a restart stampede — N
        producers hitting one cold user at once — load the checkpoint
        from disk exactly once; the losers wait and share the result.
        """
        with self._lock:
            session = self._sessions.get(user_id)
            if session is not None:
                return session
            guard = self._restoring.get(user_id)
            owner = guard is None
            if owner:
                guard = _InFlightRestore()
                self._restoring[user_id] = guard
        if not owner:
            guard.event.wait()
            if guard.error is not None:
                raise guard.error
            with self._lock:
                session = self._sessions.get(user_id)
            if session is None:
                # the owner's session was ended/evicted already; retry
                return self.ensure_session(user_id, scan)
            return session
        try:
            session = self._restore_from_store(user_id)
            if session is None:
                if self.start_resolver is None:
                    raise UnknownSessionError(
                        f"no live session, checkpoint, or start_resolver "
                        f"for user {user_id!r}"
                    )
                start_position, start_heading = self.start_resolver(
                    user_id, scan
                )
                seed = self.session_seed(user_id)
                state = self.engine.new_state(
                    start_position, start_heading, seed
                )
                session = TrackingSession(user_id, seed, state, self._clock())
                with self._lock:
                    self._sessions[user_id] = session
                    self.n_created += 1
            return session
        except BaseException as error:
            guard.error = error
            raise
        finally:
            guard.event.set()
            with self._lock:
                self._restoring.pop(user_id, None)

    def end_session(self, user_id, checkpoint: bool = False):
        """Close a track; returns its final position estimate (or None).

        The finished track's checkpoint is deleted unless ``checkpoint``
        is True (a deliberate "suspend to disk").  Call after the user's
        outstanding ticks have resolved — an in-flight tick for an ended
        session fails its batch.
        """
        with self._lock:
            session = self._sessions.pop(user_id, None)
            if session is None:
                raise UnknownSessionError(f"no session for user {user_id!r}")
            self.n_ended += 1
            final = self.engine.estimate(session.state)
            if self.store is not None:
                if checkpoint:
                    self._checkpoint_locked(session)
                else:
                    path = self._checkpoint_path(user_id)
                    try:
                        os.unlink(path)
                    except FileNotFoundError:
                        pass
            return final

    def active_users(self) -> list:
        with self._lock:
            return list(self._sessions)

    def stats(self) -> SessionStats:
        with self._lock:
            return SessionStats(
                active=len(self._sessions),
                created=self.n_created,
                restored=self.n_restored,
                evicted=self.n_evicted,
                ended=self.n_ended,
                ticks=self.n_ticks,
                checkpoints=self.n_checkpoints,
                checkpoint_failures=self.n_checkpoint_failures,
                restore_loads=self.n_restore_loads,
                quarantined=self.n_quarantined,
            )

    # -------------------------------------------------------------- stepping
    def step(self, user_id, imu) -> np.ndarray:
        """Advance one session by one tick (convenience wrapper)."""
        return self.step_batch([(user_id, imu)])[0]

    def step_batch(self, items) -> np.ndarray:
        """Serve one micro-batch of ticks; (N, 2) estimates in item order.

        Ticks are scheduled in *waves*: wave *k* holds each user's k-th
        tick of the batch, so per-user order is preserved while every
        wave steps its users through one vectorized
        :meth:`SessionTracker.step_many` call — batching across users
        per time step, never across time within a user.
        """
        prepared = []
        for user_id, imu in items:
            chunk = np.asarray(imu, dtype=float)
            if chunk.ndim != 2 or chunk.shape[1] != 6:
                raise ValueError(
                    f"each tick takes a (T, 6) IMU segment, got {chunk.shape}"
                )
            prepared.append((user_id, chunk))
        out = np.empty((len(prepared), 2))
        with self._lock:
            waves: "list[list[tuple[int, object, np.ndarray]]]" = []
            seen: "dict[object, int]" = {}
            for index, (user_id, chunk) in enumerate(prepared):
                k = seen.get(user_id, 0)
                seen[user_id] = k + 1
                if k == len(waves):
                    waves.append([])
                waves[k].append((index, user_id, chunk))
            now = self._clock()
            for wave in waves:
                lengths = {chunk.shape[0] for _, _, chunk in wave}
                if len(lengths) > 1:
                    raise ValueError(
                        "ticks batched together must share one segment "
                        f"length, got {sorted(lengths)}"
                    )
                sessions = [
                    self._session_for_step(user_id) for _, user_id, _ in wave
                ]
                stacked = np.stack([chunk for _, _, chunk in wave])
                estimates = self.engine.step_many(
                    [s.state for s in sessions], stacked
                )
                for row, (index, _, _) in enumerate(wave):
                    session = sessions[row]
                    session.ticks += 1
                    session.ticks_since_checkpoint += 1
                    session.last_seen = now
                    session.last_position = estimates[row].copy()
                    out[index] = estimates[row]
                    self.n_ticks += 1
            if self.store is not None and self.checkpoint_every:
                for user_id in seen:
                    session = self._sessions.get(user_id)
                    if (
                        session is not None
                        and session.ticks_since_checkpoint
                        >= self.checkpoint_every
                    ):
                        self._checkpoint_locked(session)
            self._evict_idle_locked(now)
        return out

    def _session_for_step(self, user_id) -> TrackingSession:
        session = self._sessions.get(user_id)
        if session is not None:
            return session
        # direct manager use (no frontend ensure) still warm-restores
        session = self._restore_from_store(user_id)
        if session is None:
            raise UnknownSessionError(
                f"no live session or checkpoint for user {user_id!r}"
            )
        return session

    # ---------------------------------------------------------- checkpointing
    def _checkpoint_path(self, user_id) -> str:
        return self.store.path_for(
            f"session-{self.engine.kind}", self.namespace, str(user_id)
        )

    def checkpoint(self, user_id) -> "str | None":
        """Snapshot one session now; returns the artifact path."""
        with self._lock:
            session = self._sessions.get(user_id)
            if session is None:
                raise UnknownSessionError(f"no session for user {user_id!r}")
            return self._checkpoint_locked(session)

    def checkpoint_all(self) -> int:
        """Snapshot every live session; returns how many were written."""
        with self._lock:
            written = 0
            for session in self._sessions.values():
                if self._checkpoint_locked(session) is not None:
                    written += 1
            return written

    def _checkpoint_locked(self, session: TrackingSession) -> "str | None":
        if self.store is None:
            return None
        path = self._checkpoint_path(session.user_id)
        envelope = {
            "schema": SESSION_SCHEMA,
            "kind": self.engine.kind,
            "engine_fingerprint": self.engine.fingerprint(),
            "namespace": self.namespace,
            "user_id": str(session.user_id),
            "seed": session.seed,
            "ticks": session.ticks,
            "state_meta": self.engine.state_meta(session.state),
        }
        arrays = dict(self.engine.state_arrays(session.state))
        arrays["session_json"] = _json_blob(envelope)
        base = os.path.basename(path)[: -len(".npz")]
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.store.directory, prefix=base + ".tmp-", suffix=".npz"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.savez_compressed(handle, **arrays)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as error:
            # a full/failing disk must degrade checkpoint coverage, not
            # take down the serving path
            self.n_checkpoint_failures += 1
            warnings.warn(
                f"session checkpoint for {session.user_id!r} failed: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        session.ticks_since_checkpoint = 0
        self.n_checkpoints += 1
        return path

    def _restore_from_store(self, user_id) -> "TrackingSession | None":
        if self.store is None:
            return None
        path = self._checkpoint_path(user_id)
        if not os.path.exists(path):
            return None
        with self._lock:
            self.n_restore_loads += 1
        try:
            with np.load(path, allow_pickle=False) as archive:
                arrays = {name: archive[name] for name in archive.files}
            envelope = _json_unblob(arrays.pop("session_json"))
            if envelope.get("schema") != SESSION_SCHEMA:
                raise ValueError(
                    f"checkpoint schema {envelope.get('schema')!r}; this "
                    f"build reads {SESSION_SCHEMA!r}"
                )
            if (
                envelope.get("kind") != self.engine.kind
                or envelope.get("namespace") != self.namespace
                or envelope.get("user_id") != str(user_id)
            ):
                raise ValueError(
                    "checkpoint identity mismatch (foreign or hand-copied "
                    "artifact)"
                )
            if envelope.get("engine_fingerprint") != self.engine.fingerprint():
                # a reconfigured engine cannot continue this state; start
                # fresh rather than silently diverge
                warnings.warn(
                    f"session checkpoint for {user_id!r} was written by a "
                    "differently configured engine; ignoring it",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return None
            state = self.engine.restore_state(
                arrays, envelope.get("state_meta") or {}
            )
        except (ValueError, KeyError, OSError, EOFError) as error:
            quarantine = path + ".corrupt"
            try:
                os.replace(path, quarantine)
            except OSError:
                quarantine = "<unmovable>"
            with self._lock:
                self.n_quarantined += 1
            warnings.warn(
                f"corrupt session checkpoint for {user_id!r} quarantined to "
                f"{quarantine}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        with self._lock:
            session = TrackingSession(
                user_id,
                envelope.get("seed"),
                state,
                self._clock(),
                restored=True,
            )
            session.ticks = int(envelope.get("ticks") or 0)
            session.last_position = self.engine.estimate(state)
            self._sessions[user_id] = session
            self.n_restored += 1
            return session

    # -------------------------------------------------------------- eviction
    def evict_idle(self) -> list:
        """Checkpoint + drop every session idle past ``idle_ttl_s``."""
        with self._lock:
            return self._evict_idle_locked(self._clock())

    def _evict_idle_locked(self, now: float) -> list:
        if self.idle_ttl_s is None:
            return []
        evicted = []
        for user_id, session in list(self._sessions.items()):
            if now - session.last_seen > self.idle_ttl_s:
                self._checkpoint_locked(session)
                del self._sessions[user_id]
                self.n_evicted += 1
                evicted.append(user_id)
        return evicted

    def close(self) -> None:
        """Checkpoint every live session and drop the table (idempotent)."""
        with self._lock:
            self.checkpoint_all()
            self._sessions.clear()


# ==================================================================== frontend
class SessionExecutor:
    """Batch executor bridging the front end's drain path to a manager.

    Each front-end batch row is one encoded tick:
    ``[user_slot, imu.ravel()]``; ``predict`` decodes the rows and serves
    them through :meth:`SessionManager.step_batch`, so one front-end
    batch = one across-users wave schedule.  Slots (not raw user ids)
    ride in the float row so arbitrary hashable user ids survive the
    numeric queue encoding.
    """

    def __init__(self, manager: SessionManager):
        self.manager = manager
        self.n_batches = 0
        self._slots: "dict[object, int]" = {}
        self._users: list = []
        self._slot_lock = threading.Lock()

    def slot_for(self, user_id) -> int:
        with self._slot_lock:
            slot = self._slots.get(user_id)
            if slot is None:
                slot = len(self._users)
                self._slots[user_id] = slot
                self._users.append(user_id)
            return slot

    def predict(self, signals: np.ndarray) -> Prediction:
        width = signals.shape[1] - 1
        if width <= 0 or width % 6:
            raise ValueError(
                f"encoded tick width {signals.shape[1]} is not 1 + T*6"
            )
        samples = width // 6
        with self._slot_lock:
            users = [self._users[int(row[0])] for row in signals]
        items = [
            (user, signals[i, 1:].reshape(samples, 6))
            for i, user in enumerate(users)
        ]
        coordinates = self.manager.step_batch(items)
        self.n_batches += 1
        return Prediction(coordinates=coordinates)

    def close(self) -> None:
        self.manager.close()


class TrackingFrontend(ServingFrontend):
    """A :class:`ServingFrontend` serving session ticks instead of scans.

    ``submit(user_id, scan, imu)`` ensures the user's session exists
    (live, warm-restored, or created from the first ``scan`` via the
    manager's ``start_resolver``) and enqueues the tick; everything else
    — deadline flush, backpressure, admission, per-request timeouts,
    deterministic ``close`` — is inherited.  Each user is their own
    admission tenant, so per-tenant fairness stats come for free.

    Ticks of one user resolve in submission order: the queue drains
    FIFO through a single drain path, and the manager's wave schedule
    preserves per-user order inside a batch.
    """

    def __init__(
        self,
        manager: SessionManager,
        samples_per_tick: "int | None" = None,
        **frontend_kwargs,
    ):
        if samples_per_tick is not None and samples_per_tick < 1:
            raise ValueError(
                f"samples_per_tick must be >= 1, got {samples_per_tick}"
            )
        self.manager = manager
        self.samples_per_tick = (
            None if samples_per_tick is None else int(samples_per_tick)
        )
        executor = SessionExecutor(manager)
        super().__init__(executor=executor, **frontend_kwargs)

    def submit(  # noqa: D402 — intentionally narrows the base signature
        self,
        user_id,
        scan=None,
        imu=None,
        deadline_ms: "float | None" = None,
        timeout_ms: "float | None" = None,
    ):
        """Enqueue one IMU tick for ``user_id``; returns the ticket.

        ``scan`` is only consulted when this is the user's first
        contact (session creation / warm restore happens here,
        synchronously, so the queued tick always finds its session).
        """
        if imu is None:
            raise ValueError("submit requires an imu=(T, 6) segment")
        chunk = np.asarray(imu, dtype=float)
        if chunk.ndim != 2 or chunk.shape[1] != 6:
            raise ValueError(
                f"imu must be a (T, 6) segment, got {chunk.shape}"
            )
        if (
            self.samples_per_tick is not None
            and chunk.shape[0] != self.samples_per_tick
        ):
            raise ValueError(
                f"tick has {chunk.shape[0]} samples; this front end serves "
                f"{self.samples_per_tick} samples per tick"
            )
        self.manager.ensure_session(user_id, scan=scan)
        row = np.empty(1 + chunk.size)
        row[0] = self._executor.slot_for(user_id)
        row[1:] = chunk.ravel()
        return super().submit(
            row,
            deadline_ms=deadline_ms,
            timeout_ms=timeout_ms,
            tenant=str(user_id),
        )

    def end_session(self, user_id, checkpoint: bool = False):
        """Close one track (see :meth:`SessionManager.end_session`)."""
        return self.manager.end_session(user_id, checkpoint=checkpoint)
