"""LRU model/index cache for the serving layer.

Fitting a localization model — training the NObLe network, or even just
building the brute-force kNN index — dominates request latency.  The
cache keys a fitted estimator by (registry name, dataset fingerprint,
hyperparameters) so repeated requests against the same radio map never
re-fit or re-index:

    cache = ModelCache(capacity=8)
    est = cache.get_or_fit("knn", dataset, k=3)   # miss: fits
    est = cache.get_or_fit("knn", dataset, k=3)   # hit: cached instance

The dataset fingerprint is a content digest of the arrays themselves, so
two structurally identical datasets hit the same entry and any mutation
(new survey points, relabeled floors) transparently misses.

The cache is thread-safe: lookups and LRU bookkeeping run under one
lock (a hit stays lock-cheap — a dict probe plus ``move_to_end``), and
a per-key in-flight guard ensures that when many threads miss the same
key at once exactly one of them fits while the rest wait and then share
the fitted instance (a waiter counts as a hit).

With a spill tier (``store=``, a
:class:`repro.core.persistence.ModelStore`), fitted models are written
through to disk on insert and a miss consults the store before
re-fitting::

    cache = ModelCache(capacity=8, store=ModelStore("models/"))
    est = cache.get_or_fit("noble", dataset)  # first process: fits + spills
    # ... process restarts ...
    est = cache.get_or_fit("noble", dataset)  # disk hit: restores, no fit

Disk restores are counted as ``disk_hits`` in :meth:`ModelCache.stats`
and run under the same per-key in-flight guard, so a restart stampede
loads each artifact exactly once.  Store keys are the same (backend,
dataset fingerprint, hyperparameters) triple as memory keys, so a stale
artifact can never serve a changed radio map — new data means a new
fingerprint, which simply misses.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

from repro.data.ujiindoor import FingerprintDataset, content_digest
from repro.serving.registry import Estimator, create, params_key

#: Every live cache, so the fork hook below can reach them; weak so the
#: registry never keeps a discarded cache alive.
_LIVE_CACHES: "weakref.WeakSet[ModelCache]" = weakref.WeakSet()
_FORK_HOOK_INSTALLED = False


def _reset_caches_after_fork() -> None:
    """Repair every cache in a freshly forked child.

    A fork can happen while some thread holds a cache's lock or owns an
    in-flight fit; the child inherits the lock *locked* and the
    ``_InFlightFit`` events *unset*, with no thread left alive to ever
    release or set them — the first child thread to touch the cache
    would deadlock.  Fresh lock, empty in-flight table (fitted entries
    are plain data and stay valid; an interrupted owner's fit simply
    re-runs in the child on demand).
    """
    for cache in list(_LIVE_CACHES):
        cache._lock = threading.Lock()
        cache._inflight = {}


def _install_fork_hook() -> None:
    global _FORK_HOOK_INSTALLED
    if _FORK_HOOK_INSTALLED or not hasattr(os, "register_at_fork"):
        return
    os.register_at_fork(after_in_child=_reset_caches_after_fork)
    _FORK_HOOK_INSTALLED = True


def dataset_fingerprint(dataset: FingerprintDataset) -> str:
    """Stable content digest of a fingerprint dataset.

    Hashes shape, dtype, and bytes of every array the models consume
    (rssi, coordinates, floor, building); the optional floor plan and
    spot ids do not affect any estimator and are excluded.  Delegates to
    :meth:`FingerprintDataset.content_fingerprint`, which memoizes the
    digest (datasets are immutable), so only the first call per dataset
    pays the hashing cost; plain objects with the same four array
    attributes hash the slow way.
    """
    fingerprint = getattr(dataset, "content_fingerprint", None)
    if fingerprint is not None:
        return fingerprint()
    return content_digest(
        (dataset.rssi, dataset.coordinates, dataset.floor, dataset.building)
    )


#: Canonical hyperparameter key (shared with ModelStore via the registry).
_params_key = params_key


@dataclass
class CacheStats:
    """Counters exposed by :meth:`ModelCache.stats`.

    ``disk_hits`` counts memory-tier misses resolved by restoring an
    artifact from the spill store instead of re-fitting; they are not
    included in ``hits`` (which stay memory-only) or ``misses`` (which
    mean a fit actually ran).
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    disk_hits: int = 0
    #: Write-throughs that failed even after retries (fit kept serving).
    spill_failures: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses + self.disk_hits
        return (self.hits + self.disk_hits) / total if total else 0.0


class _InFlightFit:
    """Rendezvous for threads that missed the same key concurrently."""

    __slots__ = ("done", "error")

    def __init__(self):
        self.done = threading.Event()
        self.error: "BaseException | None" = None


class ModelCache:
    """Thread-safe LRU cache of fitted estimators.

    Parameters
    ----------
    capacity:
        Maximum number of fitted models held; least-recently-used
        entries are evicted beyond it.
    store:
        Optional :class:`repro.core.persistence.ModelStore` spill tier.
        Freshly fitted models are written through on insert (so a later
        process can warm-start), and a memory miss is resolved from disk
        before re-fitting.  Disk-tier eviction is the operator's
        business — the store is a directory, not an LRU.

    Concurrency: safe to share across threads.  A hit takes one short
    lock (dict probe + LRU bump — no hashing, no fitting, well under
    the ~0.1 ms memoized-fingerprint budget).  Concurrent misses of the
    *same* key are collapsed by a per-key in-flight guard: one thread
    fits — or restores from the store — while the others block until
    the result lands and then share the instance (counted as hits).  If
    the owning fit raises, every waiter sees that error.  Misses of
    *different* keys fit in parallel — the lock is never held across
    ``fit`` or disk I/O.

    Fork-safe: a child forked while another thread held the lock (or
    owned an in-flight fit) gets a fresh lock and an empty in-flight
    table via an ``os.register_at_fork`` hook, so touching an inherited
    cache can never deadlock — the orphaned fit simply re-runs in the
    child on demand.  (The multi-process serving tier itself uses the
    spawn start method and never inherits caches; the hook protects
    code that forks around a live cache.)
    """

    def __init__(self, capacity: int = 8, store=None, spill_retry=None):
        from repro.serving.resilience import RetryPolicy

        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.store = store
        # transient spill failures (NFS hiccup, briefly full disk) get a
        # small bounded retry before the write-through is abandoned
        self.spill_retry = (
            RetryPolicy(attempts=3, base_delay_s=0.01, max_delay_s=0.1)
            if spill_retry is None
            else spill_retry
        )
        self._entries: "OrderedDict[tuple, Estimator]" = OrderedDict()
        self._lock = threading.Lock()
        self._inflight: "dict[tuple, _InFlightFit]" = {}
        # forked children inherit the lock/in-flight state of whatever
        # instant the fork hit; the at-fork hook resets both (see
        # _reset_caches_after_fork) so a child can always make progress
        _LIVE_CACHES.add(self)
        _install_fork_hook()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.spill_failures = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_fit(
        self,
        name: str,
        dataset: FingerprintDataset,
        fingerprint: "str | None" = None,
        **hyperparams,
    ) -> Estimator:
        """Return a fitted estimator, fitting (and caching) on first use.

        ``fingerprint`` skips re-hashing the dataset on the hit path —
        pass :func:`dataset_fingerprint`'s output, computed once, when
        serving many requests against the same (immutable) radio map;
        hashing a UJIIndoorLoc-scale dataset costs more than a kNN query.

        Under a concurrent stampede on one key, exactly one caller fits
        (or restores from the spill store); the rest wait on the
        in-flight fit and share its result.
        """
        # key on the estimator's canonicalized params, not the raw kwargs,
        # so omitted defaults / equivalent spellings (k=5 vs k=5.0) dedupe;
        # construction is cheap — adapters only store params until fit()
        estimator = create(name, **hyperparams)
        if fingerprint is None:
            # hash outside the lock: memoized after the first call, and a
            # benign first-call race just computes the same digest twice
            fingerprint = dataset_fingerprint(dataset)
        key = (name, fingerprint, _params_key(estimator.params))
        while True:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self.hits += 1
                    self._entries.move_to_end(key)
                    return cached
                flight = self._inflight.get(key)
                if flight is None:
                    flight = self._inflight[key] = _InFlightFit()
                    break  # this thread owns the fit
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            # the fit landed; loop to take it as a hit (or, if it was
            # already evicted by unrelated churn, become the new owner)
        restored = None
        try:
            if self.store is not None:
                # disk probe before the fit, outside the lock; under a
                # restart stampede only this owner thread reaches here,
                # so the artifact is loaded exactly once
                restored = self.store.get(name, fingerprint, key[2])
            if restored is None:
                estimator.fit(dataset)
                if self.store is not None:
                    # spill failures (disk full, permissions) must not
                    # discard a successful fit: transient errors get a
                    # bounded retry, then the memory tier keeps serving
                    # and only the warm-start coverage degrades
                    try:
                        self.spill_retry.call(
                            lambda: self.store.put(
                                name, fingerprint, key[2], estimator
                            ),
                            retry_on=(OSError,),
                        )
                    except Exception as spill_error:
                        import warnings

                        with self._lock:
                            self.spill_failures += 1
                        warnings.warn(
                            f"model store write-through failed for "
                            f"{name!r}: {spill_error}",
                            RuntimeWarning,
                            stacklevel=2,
                        )
        except BaseException as error:
            flight.error = error
            with self._lock:
                self.misses += 1
                self._inflight.pop(key, None)
            flight.done.set()
            raise
        if restored is not None:
            estimator = restored
        with self._lock:
            if restored is not None:
                self.disk_hits += 1
            else:
                self.misses += 1
            self._entries[key] = estimator
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._inflight.pop(key, None)
        flight.done.set()
        return estimator

    def stats(self) -> CacheStats:
        """Current hit/miss/eviction counters and occupancy."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                size=len(self._entries),
                capacity=self.capacity,
                disk_hits=self.disk_hits,
                spill_failures=self.spill_failures,
            )

    def clear(self) -> None:
        """Drop all cached models and reset the counters.

        In-flight fits are unaffected: they land in the cleared cache
        when they finish.  The spill store is untouched — dropping disk
        artifacts is :meth:`repro.core.persistence.ModelStore.clear`.
        """
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = self.disk_hits = 0
            self.spill_failures = 0
