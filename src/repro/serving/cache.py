"""LRU model/index cache for the serving layer.

Fitting a localization model — training the NObLe network, or even just
building the brute-force kNN index — dominates request latency.  The
cache keys a fitted estimator by (registry name, dataset fingerprint,
hyperparameters) so repeated requests against the same radio map never
re-fit or re-index:

    cache = ModelCache(capacity=8)
    est = cache.get_or_fit("knn", dataset, k=3)   # miss: fits
    est = cache.get_or_fit("knn", dataset, k=3)   # hit: cached instance

The dataset fingerprint is a content digest of the arrays themselves, so
two structurally identical datasets hit the same entry and any mutation
(new survey points, relabeled floors) transparently misses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.data.ujiindoor import FingerprintDataset, content_digest
from repro.serving.registry import Estimator, create


def dataset_fingerprint(dataset: FingerprintDataset) -> str:
    """Stable content digest of a fingerprint dataset.

    Hashes shape, dtype, and bytes of every array the models consume
    (rssi, coordinates, floor, building); the optional floor plan and
    spot ids do not affect any estimator and are excluded.  Delegates to
    :meth:`FingerprintDataset.content_fingerprint`, which memoizes the
    digest (datasets are immutable), so only the first call per dataset
    pays the hashing cost; plain objects with the same four array
    attributes hash the slow way.
    """
    fingerprint = getattr(dataset, "content_fingerprint", None)
    if fingerprint is not None:
        return fingerprint()
    return content_digest(
        (dataset.rssi, dataset.coordinates, dataset.floor, dataset.building)
    )


def _params_key(hyperparams: dict) -> str:
    return repr(sorted(hyperparams.items()))


@dataclass
class CacheStats:
    """Counters exposed by :meth:`ModelCache.stats`."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ModelCache:
    """LRU cache of fitted estimators.

    Parameters
    ----------
    capacity:
        Maximum number of fitted models held; least-recently-used
        entries are evicted beyond it.
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[tuple, Estimator]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_fit(
        self,
        name: str,
        dataset: FingerprintDataset,
        fingerprint: "str | None" = None,
        **hyperparams,
    ) -> Estimator:
        """Return a fitted estimator, fitting (and caching) on first use.

        ``fingerprint`` skips re-hashing the dataset on the hit path —
        pass :func:`dataset_fingerprint`'s output, computed once, when
        serving many requests against the same (immutable) radio map;
        hashing a UJIIndoorLoc-scale dataset costs more than a kNN query.
        """
        # key on the estimator's canonicalized params, not the raw kwargs,
        # so omitted defaults / equivalent spellings (k=5 vs k=5.0) dedupe;
        # construction is cheap — adapters only store params until fit()
        estimator = create(name, **hyperparams)
        if fingerprint is None:
            fingerprint = dataset_fingerprint(dataset)
        key = (name, fingerprint, _params_key(estimator.params))
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        estimator.fit(dataset)
        self._entries[key] = estimator
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return estimator

    def stats(self) -> CacheStats:
        """Current hit/miss/eviction counters and occupancy."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )

    def clear(self) -> None:
        """Drop all cached models and reset the counters."""
        self._entries.clear()
        self.hits = self.misses = self.evictions = 0
