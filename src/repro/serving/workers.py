"""Process-backed shard workers: the serving tier that escapes the GIL.

Every throughput number before this module was single-core — the
:class:`~repro.serving.frontend.ServingFrontend` and the in-process
:class:`~repro.sharding.ShardedKNNIndex` fan out over *threads*, and
the GIL serializes the numpy-adjacent glue between kernel calls.  This
module moves the shard scans into real processes:

* :class:`ShardWorkerPool` partitions the shards of a fitted sharded
  ``knn`` estimator across N worker processes.  Each worker
  **warm-starts** by restoring the estimator from the
  :class:`~repro.core.persistence.ModelStore` (PR 5 artifacts carry the
  finished ``shard_state``, so a restore skips the partition fit and
  costs milliseconds plus interpreter startup) and then serves scan
  requests over the shared-memory rings of :mod:`repro.serving.shm` —
  query matrix in, per-shard top-k candidates out, no pickling on the
  hot path.
* The parent scatters each micro-batch to every worker, gathers the
  per-worker candidates, and merges them with the same exact
  ``argpartition`` top-k the in-process fan-out uses
  (:func:`repro.sharding.index._global_top_k`), then computes
  predictions from the merged neighbor sets in-process
  (:meth:`~repro.localization.knn.KNNFingerprinting.predict_from_neighbors`).
  Results are bit-compatible with the thread path's.
* **Crash recovery**: a worker that dies (or stops heartbeating) is
  detected during dispatch/gather, respawned from the same store
  artifact, and the in-flight batch is re-dispatched.  Stale results
  from the pre-crash incarnation are discarded by batch-id stamping.

Spawn-vs-fork policy: workers use the **spawn** context (see
:mod:`repro.serving` for the rationale); the worker entrypoint
:func:`_worker_main` is module-level and takes only picklable scalars.

:class:`WorkerPoolExecutor` adapts a pool to the front end's executor
seam, so ``ServingFrontend(executor=WorkerPoolExecutor(pool))`` keeps
the exact ``submit()``/``AsyncTicket``/deadline semantics while batches
execute across processes.  :func:`make_worker_frontend` wires the whole
stack with graceful fallback to the thread path when ``workers=0`` or
shared memory is unavailable.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time

import numpy as np

from repro.serving.registry import Prediction
from repro.serving.shm import (
    CORRUPT_SLOT,
    RingSpec,
    WorkerChannel,
    _spin,
    shm_available,
)

#: Worker processes always use the spawn start method (fresh
#: interpreter, no inherited locks); see the package docstring.
WORKER_START_METHOD = "spawn"


class WorkerPoolError(RuntimeError):
    """The worker pool cannot serve: spawn failed, or a batch was lost."""


def _worker_main(
    worker_id: int,
    channel_name: str,
    spec_tuple: "tuple[int, int, int, int]",
    store_dir: str,
    backend: str,
    fingerprint: str,
    params_key: str,
    shard_ids: "list[int]",
) -> None:
    """Entry point of one spawned shard worker.

    Attaches the shared channel, warm-starts the estimator from the
    model store, then serves: pop a normalized query batch, scan the
    owned shards, push the local top-k (padded to the ring's ``k``
    columns with ``inf``/``-1`` so slot shapes stay fixed), heartbeat,
    repeat until the stop flag.
    """
    channel = WorkerChannel(RingSpec(*spec_tuple), name=channel_name)
    try:
        from repro.core.persistence import ModelStore

        estimator = ModelStore(store_dir).get(backend, fingerprint, params_key)
        if estimator is None:
            channel.set_ready(ok=False)
            return
        index = estimator.model_.index_
        k_slot = channel.spec.k
        channel.set_ready()
        while not channel.stop_requested():
            channel.bump_heartbeat()
            item = channel.queries.pop(
                timeout=0.05, abort=channel.stop_requested
            )
            if item is None:
                continue
            if item is CORRUPT_SLOT:
                continue  # corrupted query slot: parent re-dispatches
            batch_id, n_rows, k, queries = item
            distances, indices = index.scan_shards(
                shard_ids, queries, min(k, k_slot)
            )
            if distances.shape[1] < k_slot:
                pad = k_slot - distances.shape[1]
                distances = np.pad(
                    distances, ((0, 0), (0, pad)), constant_values=np.inf
                )
                indices = np.pad(
                    indices, ((0, 0), (0, pad)), constant_values=-1
                )
            channel.results.push(
                batch_id, n_rows, distances, indices, extra=k,
                abort=channel.stop_requested,
            )
            channel.bump_heartbeat()
    except KeyboardInterrupt:
        pass
    finally:
        channel.close()


class _WorkerHandle:
    """Parent-side state of one worker: process, channel, shard slice."""

    __slots__ = ("worker_id", "shard_ids", "channel", "process",
                 "last_heartbeat", "last_beat_at", "consecutive_respawns")

    def __init__(self, worker_id, shard_ids, channel):
        self.worker_id = worker_id
        self.shard_ids = shard_ids
        self.channel = channel
        self.process = None
        self.last_heartbeat = -1
        self.last_beat_at = 0.0
        self.consecutive_respawns = 0


def _partition_shards(sizes: "list[int]", n_workers: int) -> "list[list[int]]":
    """Balanced shard→worker assignment: largest shards first, greedily
    onto the lightest worker, so per-worker scan work stays even."""
    buckets = [[] for _ in range(n_workers)]
    loads = [0] * n_workers
    for shard in sorted(range(len(sizes)), key=lambda s: -sizes[s]):
        lightest = loads.index(min(loads))
        buckets[lightest].append(shard)
        loads[lightest] += sizes[shard]
    return [sorted(bucket) for bucket in buckets]


class ShardWorkerPool:
    """N shard-worker processes serving exact top-k over shared memory.

    Parameters
    ----------
    estimator:
        A **fitted** ``knn`` registry estimator with a sharded index
        (``shards > 1``); its shards are partitioned across the
        workers.
    store:
        :class:`~repro.core.persistence.ModelStore` the workers
        warm-start from.  The estimator's artifact is written through
        on construction if the store does not already hold it.
    fingerprint:
        Dataset fingerprint of the radio map the estimator was fitted
        on (:func:`repro.serving.dataset_fingerprint`) — the store-key
        component that ties workers to the parent's exact model.
    n_workers:
        Worker process count; clamped to the shard count (an idle
        worker with zero shards would add spawn cost for nothing).
    max_rows:
        Largest query batch shipped in one ring slot; larger matrices
        are chunked transparently by :meth:`query`.
    n_slots:
        Ring depth per direction.
    spawn_timeout_s / batch_timeout_s:
        Bounds on worker warm-start and on one batch's round trip
        (after respawn attempts) before :class:`WorkerPoolError`.
    heartbeat_timeout_s:
        A worker whose heartbeat stalls this long mid-gather is
        declared dead and respawned even if the process object still
        reports alive (wedged child).
    respawn_budget / respawn_window_s:
        Token bucket bounding respawn storms: at most ``respawn_budget``
        respawns per rolling ``respawn_window_s`` window; past the
        budget :class:`WorkerPoolError` is raised instead of respawning
        (the tier is unhealthy — let a circuit breaker degrade).
    respawn_backoff_s / respawn_backoff_cap_s:
        Capped exponential backoff (with seeded jitter) between
        consecutive respawns of the *same* worker, so a crash-looping
        child does not hot-spin the spawn path.
    dispatch_retries:
        Bound on re-dispatches of one in-flight batch to a respawned
        worker before the batch fails with :class:`WorkerPoolError`.
    """

    def __init__(
        self,
        estimator,
        store,
        fingerprint: str,
        n_workers: int,
        max_rows: int = 256,
        n_slots: int = 4,
        spawn_timeout_s: float = 60.0,
        batch_timeout_s: float = 60.0,
        heartbeat_timeout_s: float = 10.0,
        respawn_budget: int = 8,
        respawn_window_s: float = 60.0,
        respawn_backoff_s: float = 0.05,
        respawn_backoff_cap_s: float = 2.0,
        dispatch_retries: int = 3,
        seed: int = 0,
    ):
        from repro.serving.registry import params_key as canonical_params_key
        from repro.sharding.index import ShardedKNNIndex

        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        # timeouts first, before any estimator probing: a non-positive
        # timeout used to construct silently and disable wedge detection
        if spawn_timeout_s <= 0:
            raise ValueError(
                f"spawn_timeout_s must be > 0, got {spawn_timeout_s}"
            )
        if batch_timeout_s <= 0:
            raise ValueError(
                f"batch_timeout_s must be > 0, got {batch_timeout_s}"
            )
        if heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0, got {heartbeat_timeout_s}"
            )
        if respawn_budget < 1:
            raise ValueError(
                f"respawn_budget must be >= 1, got {respawn_budget}"
            )
        if respawn_window_s <= 0:
            raise ValueError(
                f"respawn_window_s must be > 0, got {respawn_window_s}"
            )
        if respawn_backoff_s < 0:
            raise ValueError(
                f"respawn_backoff_s must be >= 0, got {respawn_backoff_s}"
            )
        if respawn_backoff_cap_s < respawn_backoff_s:
            raise ValueError(
                "respawn_backoff_cap_s must be >= respawn_backoff_s, got "
                f"{respawn_backoff_cap_s}"
            )
        if dispatch_retries < 0:
            raise ValueError(
                f"dispatch_retries must be >= 0, got {dispatch_retries}"
            )
        if getattr(estimator, "registry_name", None) != "knn":
            raise WorkerPoolError(
                "ShardWorkerPool serves the 'knn' backend; got "
                f"{getattr(estimator, 'registry_name', type(estimator).__name__)!r}"
            )
        model = getattr(estimator, "model_", None)
        if model is None:
            raise WorkerPoolError("estimator must be fitted before pooling")
        if not isinstance(model.index_, ShardedKNNIndex):
            raise WorkerPoolError(
                "the fitted index is monolithic; fit with shards > 1 so "
                "workers have shard subsets to own"
            )
        if not shm_available():
            raise WorkerPoolError(
                "shared memory is unavailable on this system; use the "
                "thread front end instead (workers=0)"
            )
        self.estimator = estimator
        self.model = model
        self.index = model.index_
        self.store = store
        self.fingerprint = str(fingerprint)
        self.params_key = canonical_params_key(estimator.params)
        self.backend = estimator.registry_name
        self.k = int(model.k)
        self.n_workers = min(int(n_workers), self.index.n_shards)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.batch_timeout_s = float(batch_timeout_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.respawn_budget = int(respawn_budget)
        self.respawn_window_s = float(respawn_window_s)
        self.respawn_backoff_s = float(respawn_backoff_s)
        self.respawn_backoff_cap_s = float(respawn_backoff_cap_s)
        self.dispatch_retries = int(dispatch_retries)
        self._rng = random.Random(seed)
        self._respawn_tokens = float(respawn_budget)
        self._respawn_refill_at = time.monotonic()
        self.spec = RingSpec(
            n_slots=n_slots,
            max_rows=max_rows,
            width=self.index.points.shape[1],
            k=self.k,
        )
        self._context = multiprocessing.get_context(WORKER_START_METHOD)
        self._batch_counter = 0
        self.respawns = 0
        self.n_batches = 0
        self.n_corrupt_slots = 0
        self.n_store_heals = 0
        self._closed = False

        # the workers restore from disk: make sure the artifact exists
        # before any of them race to read it
        path = store.path_for(self.backend, self.fingerprint, self.params_key)
        if not os.path.exists(path):
            store.put(self.backend, self.fingerprint, self.params_key, estimator)

        assignment = _partition_shards(self.index.shard_sizes, self.n_workers)
        self.workers = [
            _WorkerHandle(i, shard_ids, WorkerChannel(self.spec, create=True))
            for i, shard_ids in enumerate(assignment)
        ]
        try:
            for handle in self.workers:
                self._spawn(handle)
            for handle in self.workers:
                self._wait_ready(handle)
        except BaseException:
            self.close()
            raise

    # ----------------------------------------------------------- lifecycle
    def _spawn(self, handle: _WorkerHandle) -> None:
        handle.channel.reset()
        handle.process = self._context.Process(
            target=_worker_main,
            args=(
                handle.worker_id,
                handle.channel.name,
                self.spec.as_tuple(),
                os.fspath(self.store.directory),
                self.backend,
                self.fingerprint,
                self.params_key,
                list(handle.shard_ids),
            ),
            name=f"shard-worker-{handle.worker_id}",
            daemon=True,
        )
        handle.process.start()
        handle.last_heartbeat = -1
        handle.last_beat_at = time.monotonic()

    def _wait_ready(self, handle: _WorkerHandle) -> None:
        state = _spin(
            handle.channel.ready_state,
            lambda s: s != 0,
            timeout=self.spawn_timeout_s,
            abort=lambda: not handle.process.is_alive(),
        )
        if state != 1:
            detail = (
                "could not warm-start from the model store (artifact "
                "missing or unreadable)"
                if state == -1
                else "did not become ready "
                     f"(alive={handle.process.is_alive()})"
            )
            raise WorkerPoolError(
                f"shard worker {handle.worker_id} {detail}"
            )

    def _spend_respawn_token(self) -> None:
        """Charge the respawn token bucket; raise when the budget is dry.

        Tokens refill continuously at ``respawn_budget`` per
        ``respawn_window_s`` — a steady trickle of crashes is absorbed,
        a storm exhausts the bucket and turns into
        :class:`WorkerPoolError` so a circuit breaker above can degrade
        to the thread path instead of respawning forever.
        """
        now = time.monotonic()
        elapsed = now - self._respawn_refill_at
        if elapsed > 0:
            self._respawn_tokens = min(
                float(self.respawn_budget),
                self._respawn_tokens
                + elapsed * self.respawn_budget / self.respawn_window_s,
            )
        self._respawn_refill_at = now
        if self._respawn_tokens < 1.0:
            raise WorkerPoolError(
                f"respawn budget exhausted ({self.respawn_budget} per "
                f"{self.respawn_window_s:.0f}s window); worker tier is "
                "unhealthy"
            )
        self._respawn_tokens -= 1.0

    def _reap(self, handle: _WorkerHandle) -> None:
        """Make sure a worker process is really gone before respawning.

        SIGTERM is never delivered to a SIGSTOPped child, so a wedged
        (stopped) worker must be escalated to SIGKILL — which stopped
        processes cannot block — before its rings are reset.
        """
        process = handle.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
        process.join(timeout=1.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)

    def _spawn_ready(self, handle: _WorkerHandle) -> None:
        """Spawn + warm-start, self-healing a quarantined artifact once.

        A worker that cannot restore usually means the on-disk artifact
        was corrupted (and quarantined by the store on read).  The
        parent still holds the fitted estimator, so re-write the
        artifact and retry once before declaring the tier unhealthy.
        """
        self._spawn(handle)
        try:
            self._wait_ready(handle)
        except WorkerPoolError:
            self.store.put(
                self.backend, self.fingerprint, self.params_key, self.estimator
            )
            self.n_store_heals += 1
            self._reap(handle)
            self._spawn(handle)
            self._wait_ready(handle)

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Replace a dead/wedged worker; its rings are reset, so any
        in-flight batch must be re-dispatched by the caller.

        Bounded by the pool-wide token bucket (respawn storms raise
        :class:`WorkerPoolError`) and paced by capped exponential
        backoff per worker, with seeded jitter so several crash-looping
        workers do not respawn in lockstep.
        """
        self._spend_respawn_token()
        self._reap(handle)
        if self.respawn_backoff_s and handle.consecutive_respawns:
            backoff = min(
                self.respawn_backoff_cap_s,
                self.respawn_backoff_s
                * (2.0 ** (handle.consecutive_respawns - 1)),
            )
            time.sleep(backoff * (1.0 + 0.25 * self._rng.random()))
        handle.consecutive_respawns += 1
        self.respawns += 1
        self._spawn_ready(handle)

    def _dead(self, handle: _WorkerHandle) -> bool:
        """Crash/wedge detection: the heartbeat slot plus liveness."""
        if not handle.process.is_alive():
            return True
        beat = handle.channel.heartbeat()
        now = time.monotonic()
        if beat != handle.last_heartbeat:
            handle.last_heartbeat = beat
            handle.last_beat_at = now
            return False
        return now - handle.last_beat_at > self.heartbeat_timeout_s

    def close(self) -> None:
        """Stop workers, join them, and unlink every segment. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for handle in self.workers:
            handle.channel.request_stop()
        for handle in self.workers:
            if handle.process is not None:
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
                if handle.process.is_alive():
                    # a SIGSTOPped child ignores SIGTERM; SIGKILL does not
                    handle.process.kill()
                    handle.process.join(timeout=5.0)
        for handle in self.workers:
            handle.channel.close()
            handle.channel.unlink()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # --------------------------------------------------------------- serving
    def query(
        self, queries: np.ndarray, k: "int | None" = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact global ``(distances, indices)`` over all shards.

        ``queries`` are **normalized** signal rows (the space the index
        was built in).  Matrices wider than one ring slot are chunked.
        Equivalent to ``index.query(queries, k)`` up to neighbor
        identity within exact distance ties.
        """
        if self._closed:
            raise WorkerPoolError("query on a closed worker pool")
        queries = np.ascontiguousarray(queries, dtype=float)
        if queries.ndim != 2 or queries.shape[1] != self.spec.width:
            raise ValueError(
                f"queries must be (M, {self.spec.width}), got shape "
                f"{queries.shape}"
            )
        k = self.k if k is None else int(k)
        if not 1 <= k <= self.spec.k:
            raise ValueError(
                f"k must be in [1, {self.spec.k}] for this pool, got {k}"
            )
        if len(queries) == 0:
            eff_k = min(k, len(self.index.points))
            return (
                np.empty((0, eff_k)), np.empty((0, eff_k), dtype=int)
            )
        parts = [
            self._run_chunk(queries[start : start + self.spec.max_rows], k)
            for start in range(0, len(queries), self.spec.max_rows)
        ]
        if len(parts) == 1:
            return parts[0]
        return (
            np.concatenate([d for d, _ in parts]),
            np.concatenate([i for _, i in parts]),
        )

    def _run_chunk(self, queries, k):
        """Scatter one ≤max_rows batch to every worker, gather, merge."""
        from repro.sharding.index import _global_top_k

        self._batch_counter += 1
        batch_id = self._batch_counter
        for handle in self.workers:
            self._dispatch(handle, batch_id, queries, k)
        gathered = [
            self._gather(handle, batch_id, queries, k)
            for handle in self.workers
        ]
        self.n_batches += 1
        cand_d = np.concatenate([d for d, _ in gathered], axis=1)
        cand_i = np.concatenate([i for _, i in gathered], axis=1)
        eff_k = min(k, len(self.index.points))
        return _global_top_k(cand_d, cand_i, eff_k)

    def _dispatch(self, handle, batch_id, queries, k) -> None:
        deadline = time.monotonic() + self.batch_timeout_s
        while True:
            if handle.channel.queries.try_push(
                batch_id, len(queries), queries, extra=k
            ):
                return
            if self._dead(handle):
                self._respawn(handle)  # resets the rings: retry the push
                continue
            if time.monotonic() >= deadline:
                raise WorkerPoolError(
                    f"shard worker {handle.worker_id} did not accept batch "
                    f"{batch_id} within {self.batch_timeout_s:.0f}s"
                )
            time.sleep(5e-5)

    def _gather(self, handle, batch_id, queries, k):
        """One worker's ``(distances, indices)`` for ``batch_id``.

        Discards stale slots from pre-respawn incarnations; a worker
        that dies mid-batch is respawned and the batch re-dispatched —
        at most ``dispatch_retries`` times (each retry spends a respawn
        token when the worker is dead) before the batch fails with
        :class:`WorkerPoolError`.  A checksum-failed result slot
        (:data:`~repro.serving.shm.CORRUPT_SLOT`) is counted and the
        batch re-dispatched to the (healthy) worker — never merged.
        """
        deadline = time.monotonic() + self.batch_timeout_s
        redispatches = 0
        while True:
            item = handle.channel.results.try_pop()
            if item is CORRUPT_SLOT:
                # payload failed its checksum: the data is gone but the
                # worker is healthy — recompute instead of respawn
                self.n_corrupt_slots += 1
                redispatches += 1
                if redispatches > self.dispatch_retries:
                    raise WorkerPoolError(
                        f"shard worker {handle.worker_id} failed batch "
                        f"{batch_id} after {self.dispatch_retries} "
                        "re-dispatches (corrupt result slots)"
                    )
                self._dispatch(handle, batch_id, queries, k)
                continue
            if item is not None:
                result_id, _n_rows, _extra, distances, indices = item
                if result_id == batch_id:
                    handle.consecutive_respawns = 0
                    return distances, indices
                continue  # stale batch from before a crash: drop it
            if self._dead(handle):
                redispatches += 1
                if redispatches > self.dispatch_retries:
                    raise WorkerPoolError(
                        f"shard worker {handle.worker_id} lost batch "
                        f"{batch_id} after {self.dispatch_retries} "
                        "re-dispatches"
                    )
                self._respawn(handle)
                self._dispatch(handle, batch_id, queries, k)
                continue
            if time.monotonic() >= deadline:
                raise WorkerPoolError(
                    f"shard worker {handle.worker_id} lost batch {batch_id} "
                    f"({self.batch_timeout_s:.0f}s timeout)"
                )
            time.sleep(5e-5)

    def predict(self, signals: np.ndarray) -> Prediction:
        """Serve raw RSSI rows end to end: featurize in the parent
        (normalize, plus the model's learned embedding when it has
        one), scan across the workers, reduce to a :class:`Prediction`."""
        featurized = self.model._signals(self.estimator._as_dataset(signals))
        distances, indices = self.query(featurized, k=self.k)
        coordinates, building, floor = self.model.predict_from_neighbors(
            distances, indices
        )
        return Prediction(
            coordinates=coordinates, building=building, floor=floor
        )

    def heartbeats(self) -> "list[int]":
        """Current heartbeat counters, one per worker (observability)."""
        return [handle.channel.heartbeat() for handle in self.workers]


class WorkerPoolExecutor:
    """Adapter: a :class:`ShardWorkerPool` behind the front end's
    executor seam (``predict(signals) -> Prediction`` + ``n_batches``).

    ``close_pool=True`` hands pool ownership to the front end (its
    ``close()`` tears the workers down); the default leaves the pool
    alive so several front ends (or bench repeats) can share it.
    """

    def __init__(self, pool: ShardWorkerPool, close_pool: bool = False):
        self.pool = pool
        self._close_pool = bool(close_pool)
        # counted here, not delegated to the pool: several executors can
        # share one pool (e.g. bench repeats) and each front end's
        # batch counters must cover only its own traffic
        self.n_batches = 0

    def predict(self, signals: np.ndarray) -> Prediction:
        prediction = self.pool.predict(signals)
        self.n_batches += 1
        return prediction

    def close(self) -> None:
        if self._close_pool:
            self.pool.close()


def make_worker_frontend(
    estimator,
    store,
    fingerprint: str,
    workers: int,
    max_rows: "int | None" = None,
    **frontend_kwargs,
):
    """A :class:`~repro.serving.ServingFrontend` over ``workers``
    shard processes, falling back to the thread path gracefully.

    ``workers == 0`` — or shared memory being unavailable — returns the
    plain thread front end over ``estimator``; otherwise the pool is
    built (spawn + warm-start from ``store``), owned by the returned
    front end, and torn down by its ``close()``.
    """
    from repro.serving.frontend import ServingFrontend

    if workers and shm_available():
        batch_size = frontend_kwargs.get("batch_size", 64)
        pool = ShardWorkerPool(
            estimator,
            store,
            fingerprint=fingerprint,
            n_workers=workers,
            max_rows=max_rows if max_rows is not None else batch_size,
        )
        return ServingFrontend(
            executor=WorkerPoolExecutor(pool, close_pool=True),
            **frontend_kwargs,
        )
    return ServingFrontend(estimator, **frontend_kwargs)
