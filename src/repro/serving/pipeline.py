"""The feature-space pipeline seam shared by the serving backends.

Historically every adapter in :mod:`repro.serving.registry` re-plumbed
the same four hyperparameters — ``shards``, ``partitioner``,
``quantize_bins``, ``dtype`` — through its own constructor, each
re-implementing the canonicalization rules that keep
:class:`~repro.serving.cache.ModelCache` /
:class:`~repro.core.persistence.ModelStore` keys stable.  This module
is the one shared seam: a validated **embedder → binner → index**
chain (:class:`FeaturePipeline`) that every kNN-family backend
resolves its configuration through, plus the canonical-param helpers
the rest of the registry keys with.

Two spellings construct the same pipeline::

    create("knn", shards=4, quantize_bins=16)                  # legacy kwargs
    create("knn", transform={"shard": 4, "bin": 16})           # transform= chain

and mixing them for the *same* stage is an error rather than a silent
override.  The learned-embedding stage (``"embed"``) is only available
on backends that declare it (the ``"embed-knn"`` backend); everywhere
else it fails at construction with a pointer to the right backend.

Cache-key stability is the load-bearing invariant: every stage is
**absent-by-default** in the canonical params (``shards=1``,
``quantize_bins=None``, ``dtype=None`` produce no key at all), so
pre-existing ``describe()`` strings, cache keys, and on-disk
:class:`ModelStore` artifacts resolve unchanged.
"""

from __future__ import annotations

import numpy as np

#: Stage names, in hot-path application order.
PIPELINE_STAGES = ("embed", "bin", "shard")


def _canonical_seed(seed):
    """Collapse equivalent integer seed spellings for stable cache keys."""
    return int(seed) if isinstance(seed, (bool, int, np.integer)) else seed


def _dtype_param(dtype) -> dict:
    """Canonical ``dtype`` entry for an adapter's params.

    Returns ``{}`` for ``None`` (the float64 default) so pre-existing
    describe() strings and :class:`repro.serving.cache.ModelCache` keys
    are untouched; otherwise the dtype's canonical string
    (``"float32"``/``"float64"``), so equivalent spellings
    (``np.float32`` vs ``"float32"``) share one cache entry and the two
    precisions never alias each other.
    """
    if dtype is None:
        return {}
    from repro.nn.dtypes import resolve_dtype

    return {"dtype": str(resolve_dtype(dtype))}


def _quantize_param(quantize_bins) -> dict:
    """Canonical ``quantize_bins`` entry for an adapter's params.

    Returns ``{}`` for ``None`` (the raw-float default) so pre-existing
    describe() strings and :class:`repro.serving.cache.ModelCache` keys
    are untouched; a set value is validated here so a bad bin count
    fails at construction, before any fit work happens.
    """
    if quantize_bins is None:
        return {}
    from repro.quantization.binning import MAX_BINS

    bins = int(quantize_bins)
    if not 2 <= bins <= MAX_BINS:
        raise ValueError(
            f"quantize_bins must be in [2, {MAX_BINS}], got {bins}"
        )
    return {"quantize_bins": bins}


def _sharding_params(shards, partitioner=None) -> dict:
    """Canonical ``shards``/``partitioner`` entries for an adapter's params.

    Returns ``{}`` for the unsharded default so existing describe()
    strings and :class:`repro.serving.cache.ModelCache` keys are
    untouched — ``shards=1`` is behaviorally identical to omitting it.
    A partitioner instance is keyed by its canonical ``describe()``
    string, so differing policies never share a cache entry.
    """
    shards = int(shards)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if (
        partitioner is not None
        and hasattr(partitioner, "n_shards")
        and partitioner.n_shards != shards
    ):
        raise ValueError(
            f"shards={shards} conflicts with the partitioner's "
            f"n_shards={partitioner.n_shards}"
        )
    if shards == 1:
        return {}
    params = {"shards": shards}
    if partitioner is not None:
        params["partitioner"] = (
            partitioner.describe()
            if hasattr(partitioner, "describe")
            else str(partitioner)
        )
    return params


class FeaturePipeline:
    """A validated embedder → binner → sharded-index configuration.

    Backends construct one through :meth:`resolve` (which merges the
    ``transform=`` spelling with the legacy per-stage kwargs), then key
    themselves with :meth:`canonical_params` and build the hot-path
    stages with :meth:`build_embedder` / the raw ``partitioner`` /
    ``quantize_bins`` attributes.

    Parameters
    ----------
    backend:
        Registry name of the owning backend — only used in error
        messages.
    stages:
        The stages this backend supports, a subset of
        :data:`PIPELINE_STAGES`.  Configuring an unsupported stage is a
        construction-time error.
    embedder / embed_params:
        Learned-embedding stage: an embedder kind from
        :data:`repro.embedding.EMBEDDER_KINDS` plus its constructor
        kwargs.
    shards / partitioner:
        Index-sharding stage (the raw partitioner spec is kept for
        fit; its canonical ``describe()`` string goes into the key).
    quantize_bins:
        uint8 radio-map quantization stage.
    dtype:
        Compute precision, canonicalized like the nn backends.
    """

    def __init__(
        self,
        *,
        backend: str = "?",
        stages: tuple = ("bin", "shard"),
        embedder: "str | None" = None,
        embed_params: "dict | None" = None,
        shards: int = 1,
        partitioner=None,
        quantize_bins: "int | None" = None,
        dtype=None,
    ):
        unknown = set(stages) - set(PIPELINE_STAGES)
        if unknown:
            raise ValueError(
                f"unknown pipeline stages {sorted(unknown)}; "
                f"available: {', '.join(PIPELINE_STAGES)}"
            )
        self.backend = backend
        self.stages = tuple(stages)
        if embedder is not None:
            if "embed" not in self.stages:
                raise ValueError(
                    f"backend {backend!r} has no learned-embedding stage; "
                    "use the 'embed-knn' backend for embedded serving"
                )
            from repro.embedding import EMBEDDER_KINDS

            if embedder not in EMBEDDER_KINDS:
                raise ValueError(
                    f"unknown embedder kind {embedder!r}; available: "
                    f"{', '.join(EMBEDDER_KINDS)}"
                )
        elif embed_params:
            raise ValueError("embed_params given without an embedder kind")
        if quantize_bins is not None and "bin" not in self.stages:
            raise ValueError(
                f"backend {backend!r} has no quantization stage"
            )
        if int(shards) != 1 and "shard" not in self.stages:
            raise ValueError(f"backend {backend!r} has no sharding stage")
        self.embedder_kind = embedder
        self.embed_params = dict(embed_params or {})
        self.shards = int(shards)
        self.partitioner = partitioner
        self.quantize_bins = quantize_bins
        self.dtype = dtype
        # validate eagerly: a bad configuration must fail at
        # construction, not at fit time deep inside a cache miss
        self.canonical_params()

    @classmethod
    def resolve(
        cls,
        transform=None,
        *,
        backend: str = "?",
        stages: tuple = ("bin", "shard"),
        embedder: "str | None" = None,
        embed_params: "dict | None" = None,
        shards: int = 1,
        partitioner=None,
        quantize_bins: "int | None" = None,
        dtype=None,
    ) -> "FeaturePipeline":
        """Merge the ``transform=`` spelling with the legacy kwargs.

        ``transform`` is ``None``, an existing :class:`FeaturePipeline`
        (re-validated against this backend's stages), or a dict with
        keys from ``{"embed", "bin", "shard", "dtype"}``::

            {"embed": "mlp"}                           # kind, default params
            {"embed": {"kind": "mlp", "epochs": 20}}   # kind + params
            {"bin": 16}                                # quantize_bins
            {"shard": 4}                               # shards
            {"shard": {"shards": 4, "partitioner": p}} # + partitioner
            {"dtype": "float32"}

        Setting the same stage through both spellings raises — silent
        override would make two different-looking configurations alias
        one cache key.
        """
        if transform is None:
            return cls(
                backend=backend,
                stages=stages,
                embedder=embedder,
                embed_params=embed_params,
                shards=shards,
                partitioner=partitioner,
                quantize_bins=quantize_bins,
                dtype=dtype,
            )
        if isinstance(transform, FeaturePipeline):
            spec = transform.spec()
        elif isinstance(transform, dict):
            spec = dict(transform)
        else:
            raise TypeError(
                "transform must be a dict or FeaturePipeline, got "
                f"{type(transform).__name__}"
            )
        unknown = set(spec) - {"embed", "bin", "shard", "dtype"}
        if unknown:
            raise ValueError(
                f"unknown transform stages {sorted(unknown)}; allowed: "
                "embed, bin, shard, dtype"
            )

        def conflict(stage, legacy_name):
            raise ValueError(
                f"transform sets the {stage!r} stage but the legacy "
                f"{legacy_name} kwarg is also set; use one spelling"
            )

        if "embed" in spec:
            if embedder is not None:
                conflict("embed", "embedder=")
            embed_spec = spec["embed"]
            if isinstance(embed_spec, str):
                embedder, embed_params = embed_spec, {}
            elif isinstance(embed_spec, dict):
                embed_spec = dict(embed_spec)
                try:
                    embedder = embed_spec.pop("kind")
                except KeyError:
                    raise ValueError(
                        "transform embed stage needs a 'kind' entry"
                    ) from None
                embed_params = embed_spec
            else:
                raise TypeError(
                    "transform embed stage must be a kind string or a "
                    f"dict, got {type(embed_spec).__name__}"
                )
        if "bin" in spec:
            if quantize_bins is not None:
                conflict("bin", "quantize_bins=")
            quantize_bins = spec["bin"]
        if "shard" in spec:
            if int(shards) != 1:
                conflict("shard", "shards=")
            shard_spec = spec["shard"]
            if isinstance(shard_spec, dict):
                shard_spec = dict(shard_spec)
                shards = shard_spec.pop("shards")
                # an omitted partitioner keeps the backend's default
                partitioner = shard_spec.pop("partitioner", partitioner)
                if shard_spec:
                    raise ValueError(
                        "transform shard stage allows only 'shards' and "
                        f"'partitioner', got extras {sorted(shard_spec)}"
                    )
            else:
                shards = shard_spec
        if "dtype" in spec:
            if dtype is not None:
                conflict("dtype", "dtype=")
            dtype = spec["dtype"]
        return cls(
            backend=backend,
            stages=stages,
            embedder=embedder,
            embed_params=embed_params,
            shards=shards,
            partitioner=partitioner,
            quantize_bins=quantize_bins,
            dtype=dtype,
        )

    def spec(self) -> dict:
        """This pipeline as a ``transform=`` dict (resolve's inverse)."""
        spec: dict = {}
        if self.embedder_kind is not None:
            spec["embed"] = {"kind": self.embedder_kind, **self.embed_params}
        if self.quantize_bins is not None:
            spec["bin"] = self.quantize_bins
        if self.shards != 1:
            spec["shard"] = {
                "shards": self.shards, "partitioner": self.partitioner
            }
        if self.dtype is not None:
            spec["dtype"] = self.dtype
        return spec

    def build_embedder(self):
        """A fresh (unfitted) embedder instance, or None without one."""
        if self.embedder_kind is None:
            return None
        from repro.embedding import make_embedder

        return make_embedder(self.embedder_kind, **self.embed_params)

    def canonical_params(self) -> dict:
        """The pipeline's contribution to the owning estimator's params.

        Every stage is absent-by-default (see the module docstring), so
        legacy configurations key exactly as before this seam existed.
        The embed stage keys as ``embedder`` (the kind) plus
        ``embed_params`` — the embedder's *canonicalized* constructor
        kwargs (defaults filled in, seed spellings collapsed), the same
        convention the ensemble backend uses for its children.
        """
        params: dict = {}
        if self.embedder_kind is not None:
            embed_params = dict(self.build_embedder().params)
            embed_params["seed"] = _canonical_seed(embed_params.get("seed", 0))
            params["embedder"] = self.embedder_kind
            params["embed_params"] = dict(sorted(embed_params.items()))
        params.update(_sharding_params(self.shards, self.partitioner))
        params.update(_quantize_param(self.quantize_bins))
        params.update(_dtype_param(self.dtype))
        return params
