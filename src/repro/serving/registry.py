"""Unified estimator protocol and registry.

Every localization model in the repo — classic kNN fingerprinting, the
paper's NObLe network, the CNNLoc baseline, and the generic ml
regressors — historically exposed a slightly different fit/predict
surface.  The serving layer flattens them behind one contract:

    estimator = create("knn", k=3)
    estimator.fit(dataset)                      # FingerprintDataset
    prediction = estimator.predict_batch(raw)   # (N, W) raw RSSI rows

``predict_batch`` always takes **raw** RSSI matrices in UJIIndoorLoc
conventions (``NOT_DETECTED`` = +100 for unheard WAPs, dBm otherwise)
and always returns a :class:`Prediction`; normalization happens inside
the adapter so a request never has to know which backend serves it.

Registering a new backend is one decorator::

    @register("my-model")
    class MyEstimator(Estimator):
        ...
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.data.ujiindoor import FingerprintDataset
from repro.serving.pipeline import (
    FeaturePipeline,
    _canonical_seed,
    _sharding_params,
)
from repro.utils.validation import check_2d, check_fitted

#: name -> Estimator subclass; populated by :func:`register`.
_REGISTRY: "dict[str, type]" = {}


@dataclass
class Prediction:
    """Uniform output of :meth:`Estimator.predict_batch`.

    Attributes
    ----------
    coordinates:
        (N, 2) predicted positions in meters.
    building, floor:
        (N,) integer labels, or None when the backend has no such head.
    """

    coordinates: np.ndarray
    building: "np.ndarray | None" = None
    floor: "np.ndarray | None" = None

    def __len__(self) -> int:
        return len(self.coordinates)

    def take(self, indices) -> "Prediction":
        """A new Prediction restricted to ``indices`` (rows)."""
        return Prediction(
            coordinates=self.coordinates[indices],
            building=None if self.building is None else self.building[indices],
            floor=None if self.floor is None else self.floor[indices],
        )


def concatenate(predictions: "list[Prediction]") -> Prediction:
    """Stack per-batch predictions back into one (label heads must agree).

    Raises ``ValueError`` when some predictions carry a building/floor
    head and others do not — silently dropping valid labels would hide a
    backend mismatch.
    """
    if not predictions:
        return Prediction(coordinates=np.empty((0, 2)))
    heads = {}
    for name in ("building", "floor"):
        present = [getattr(p, name) is not None for p in predictions]
        if any(present) and not all(present):
            raise ValueError(
                f"cannot concatenate predictions with mixed {name} heads"
            )
        heads[name] = (
            np.concatenate([getattr(p, name) for p in predictions])
            if all(present)
            else None
        )
    return Prediction(
        coordinates=np.vstack([p.coordinates for p in predictions]),
        building=heads["building"],
        floor=heads["floor"],
    )


class Estimator:
    """Base class of the serving protocol.

    Subclasses implement :meth:`fit` on a :class:`FingerprintDataset`
    and :meth:`predict_batch` on a raw (N, W) RSSI matrix, and call
    ``super().__init__(**hyperparams)`` so :attr:`params` (used for
    cache keys and ``describe()``) reflects their configuration.
    """

    def __init__(self, **params):
        self.params = dict(params)

    def fit(self, dataset: FingerprintDataset) -> "Estimator":
        """Train on a fingerprint dataset; returns self."""
        raise NotImplementedError

    def predict_batch(self, signals: np.ndarray) -> Prediction:
        """Predict one vectorized batch of raw RSSI rows."""
        raise NotImplementedError

    def describe(self) -> str:
        """Canonical ``name(key=value, ...)`` string (stable param order)."""
        name = getattr(self, "registry_name", type(self).__name__)
        inner = ", ".join(f"{k}={self.params[k]!r}" for k in sorted(self.params))
        return f"{name}({inner})"

    @staticmethod
    def _as_dataset(signals: np.ndarray) -> FingerprintDataset:
        """Wrap raw RSSI rows so backends normalize them like training data."""
        signals = check_2d(signals, "signals")
        n = len(signals)
        return FingerprintDataset(
            rssi=signals,
            coordinates=np.zeros((n, 2)),
            floor=np.zeros(n, dtype=int),
            building=np.zeros(n, dtype=int),
        )

    #: Adapters without a kNN index to shard set this True so a
    #: ``shards`` hyperparameter fans the *query batch* out instead.
    #: Only safe when ``predict_fn`` is row-wise AND thread-safe (pure
    #: reads of the fitted state); models that mutate shared state
    #: during forward passes need their own replica per thread instead
    #: (see :meth:`NObLeWifiEstimator.predict_batch`).
    fanout_shards = False

    def _shard_predictions(self, signals: np.ndarray, predict_fn) -> Prediction:
        """Serve one batch, fanning chunks across threads when sharded."""
        shards = int(self.params.get("shards", 1))
        if not type(self).fanout_shards or shards <= 1 or len(signals) < 2:
            return predict_fn(signals)
        from repro.sharding import fanout_map

        return concatenate(fanout_map(predict_fn, signals, shards))


def register(name: str):
    """Class decorator adding an :class:`Estimator` subclass to the registry."""

    def decorator(cls):
        if not issubclass(cls, Estimator):
            raise TypeError(f"{cls.__name__} must subclass Estimator")
        if name in _REGISTRY:
            raise ValueError(f"estimator {name!r} already registered")
        cls.registry_name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def available() -> "tuple[str, ...]":
    """Registered estimator names, sorted."""
    return tuple(sorted(_REGISTRY))


def get(name: str) -> type:
    """The Estimator subclass registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown estimator {name!r}; available: {', '.join(available())}"
        ) from None


def create(name: str, **hyperparams) -> Estimator:
    """Instantiate a registered estimator with ``hyperparams``."""
    return get(name)(**hyperparams)


def params_key(hyperparams: dict) -> str:
    """Canonical string form of an estimator's hyperparameters.

    The single definition both :class:`repro.serving.cache.ModelCache`
    and :class:`repro.core.persistence.ModelStore` key through, so an
    in-memory entry and its on-disk artifact can never disagree about
    which configuration they hold.  Assumes ``hyperparams`` is already
    canonicalized (i.e. an :class:`Estimator`'s ``params``).
    """
    return repr(sorted(hyperparams.items()))


# The canonical-param helpers (_canonical_seed, _dtype_param,
# _quantize_param, _sharding_params) moved to repro.serving.pipeline —
# the shared feature-space seam; the ones adapters still call are
# re-imported above.

# --------------------------------------------------------------------- adapters
@register("knn")
class KNNFingerprintingEstimator(Estimator):
    """Classic weighted-kNN fingerprinting behind the serving protocol.

    ``shards > 1`` serves from an exact sharded radio-map index
    (:class:`repro.sharding.ShardedKNNIndex`): neighbor distances are
    identical to the monolithic configuration, so predictions match
    except on maps where distinct-coordinate fingerprints tie *exactly*
    at the k-th neighbor distance — there, which tied twin is kept is
    unspecified in both configurations (argpartition order), and either
    answer is a valid k-NN estimate.
    """

    def __init__(
        self,
        k: int = 5,
        weighted: bool = True,
        shards: int = 1,
        partitioner="auto",
        quantize_bins: "int | None" = None,
        transform=None,
    ):
        self._pipeline = FeaturePipeline.resolve(
            transform,
            backend="knn",
            stages=("bin", "shard"),
            shards=shards,
            partitioner=partitioner,
            quantize_bins=quantize_bins,
        )
        self._partitioner = self._pipeline.partitioner
        super().__init__(
            k=int(k),
            weighted=bool(weighted),
            **self._pipeline.canonical_params(),
        )
        self.model_ = None

    def fit(self, dataset: FingerprintDataset) -> "KNNFingerprintingEstimator":
        from repro.localization.knn import KNNFingerprinting

        kwargs = dict(self.params)
        if "partitioner" in kwargs:
            # the model needs the raw spec, not the cache-key string
            kwargs["partitioner"] = self._partitioner
        self.model_ = KNNFingerprinting(**kwargs).fit(dataset)
        return self

    def predict_batch(self, signals: np.ndarray) -> Prediction:
        check_fitted(self, "model_")
        coordinates, building, floor = self.model_.predict_full(
            self._as_dataset(signals)
        )
        return Prediction(coordinates=coordinates, building=building, floor=floor)


@register("embed-knn")
class EmbeddedKNNEstimator(Estimator):
    """kNN fingerprinting in a learned embedding space.

    The full feature-space pipeline: a learned embedder (§III-C — an
    NCA metric learner or an AE-pretrained MLP from
    :mod:`repro.embedding`) maps the radio map into a compact space at
    fit, the existing sharded/quantized kNN index stack is built on the
    *embedded* points, and query batches are embedded on the hot path
    before the neighbor scan.  Distances shrink from the raw WAP count
    to ``n_components``, so the scan is faster *and* — because the
    embedding pulls same-location fingerprints together — typically
    more accurate than raw-RSSI kNN (``python -m repro.cli
    embed-bench`` pins both claims).

    ``embedder`` picks the learner (``"mlp"`` default, or
    ``"metric"``); ``embed_params`` are its constructor kwargs.  The
    ``transform=`` spelling configures the same chain explicitly::

        create("embed-knn", transform={
            "embed": {"kind": "mlp", "n_components": 16},
            "bin": 16,
            "shard": 4,
        })
    """

    def __init__(
        self,
        k: int = 5,
        weighted: bool = True,
        embedder: "str | None" = None,
        embed_params: "dict | None" = None,
        shards: int = 1,
        partitioner="auto",
        quantize_bins: "int | None" = None,
        transform=None,
    ):
        transform_embeds = (
            isinstance(transform, dict) and "embed" in transform
        ) or (
            isinstance(transform, FeaturePipeline)
            and transform.embedder_kind is not None
        )
        if embedder is None and not transform_embeds:
            # an embedded backend always embeds: default to the MLP
            embedder = "mlp"
        pipeline = FeaturePipeline.resolve(
            transform,
            backend="embed-knn",
            stages=("embed", "bin", "shard"),
            embedder=embedder,
            embed_params=embed_params,
            shards=shards,
            partitioner=partitioner,
            quantize_bins=quantize_bins,
        )
        self._pipeline = pipeline
        self._partitioner = pipeline.partitioner
        super().__init__(
            k=int(k),
            weighted=bool(weighted),
            **pipeline.canonical_params(),
        )
        self.model_ = None

    def fit(self, dataset: FingerprintDataset) -> "EmbeddedKNNEstimator":
        from repro.embedding import fit_embedder
        from repro.localization.knn import KNNFingerprinting

        embedder = fit_embedder(self._pipeline.build_embedder(), dataset)
        kwargs = {
            key: value
            for key, value in self.params.items()
            if key not in ("embedder", "embed_params")
        }
        if "partitioner" in kwargs:
            # the model needs the raw spec, not the cache-key string
            kwargs["partitioner"] = self._partitioner
        self.model_ = KNNFingerprinting(embedder=embedder, **kwargs).fit(
            dataset
        )
        return self

    def predict_batch(self, signals: np.ndarray) -> Prediction:
        check_fitted(self, "model_")
        coordinates, building, floor = self.model_.predict_full(
            self._as_dataset(signals)
        )
        return Prediction(coordinates=coordinates, building=building, floor=floor)


@register("noble")
class NObLeWifiEstimator(Estimator):
    """The paper's NObLe Wi-Fi network behind the serving protocol.

    ``dtype="float32"`` selects the fused float32 training fast path
    (~3-4x faster cold fits at parity-checked accuracy); it is a
    cache-keyed hyperparameter, so float32 and float64 fits never share
    a :class:`repro.serving.cache.ModelCache` entry.
    """

    def __init__(
        self,
        tau: float = 0.2,
        coarse: float = 4.0,
        hidden: int = 128,
        adjacency_weight: float = 0.3,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
        val_fraction: float = 0.0,
        seed=0,
        shards: int = 1,
        dtype=None,
        quantize_bins: "int | None" = None,
        transform=None,
    ):
        self._pipeline = FeaturePipeline.resolve(
            transform,
            backend="noble",
            stages=("bin", "shard"),
            shards=shards,
            quantize_bins=quantize_bins,
            dtype=dtype,
        )
        super().__init__(
            tau=float(tau),
            coarse=float(coarse),
            hidden=int(hidden),
            adjacency_weight=float(adjacency_weight),
            epochs=int(epochs),
            batch_size=int(batch_size),
            lr=float(lr),
            val_fraction=float(val_fraction),
            seed=_canonical_seed(seed),
            **self._pipeline.canonical_params(),
        )
        self.model_ = None
        self._replicas_: list = []

    def fit(self, dataset: FingerprintDataset) -> "NObLeWifiEstimator":
        from repro.localization.noble import NObLeWifi

        kwargs = {k: v for k, v in self.params.items() if k != "shards"}
        self.model_ = NObLeWifi(**kwargs).fit(dataset)
        self._replicas_ = []
        return self

    def predict_batch(self, signals: np.ndarray) -> Prediction:
        check_fitted(self, "model_")
        signals = check_2d(signals, "signals")
        shards = int(self.params.get("shards", 1))
        if shards <= 1 or len(signals) < 2:
            return self._predict_with(self.model_, signals)
        # the numpy nn caches activations on its modules for backward(),
        # so one network must never serve two chunks concurrently: fan
        # the batch out over per-thread replicas of the fitted model.
        # Chunks beyond the core count can't run concurrently anyway, so
        # cap there — it bounds the replicas held in memory too.
        shards = min(shards, os.cpu_count() or 1)
        if shards <= 1:
            return self._predict_with(self.model_, signals)
        from concurrent.futures import ThreadPoolExecutor

        from repro.sharding import fanout_slices

        slices = fanout_slices(len(signals), shards)
        models = self._predict_replicas(len(slices))
        workers = len(slices)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            parts = list(
                pool.map(
                    lambda job: self._predict_with(job[0], signals[job[1]]),
                    zip(models, slices),
                )
            )
        return concatenate(parts)

    def _predict_replicas(self, count: int) -> list:
        """The fitted model plus ``count - 1`` deep copies, cached.

        Replicas are built lazily on the first sharded predict and
        reused across calls (``fit`` invalidates them), so steady-state
        serving pays no copy cost.
        """
        import copy

        while len(self._replicas_) < count - 1:
            self._replicas_.append(copy.deepcopy(self.model_))
        return [self.model_] + self._replicas_[: count - 1]

    def _predict_with(self, model, signals: np.ndarray) -> Prediction:
        detail = model.predict(self._as_dataset(signals))
        return Prediction(
            coordinates=detail.coordinates,
            building=detail.building,
            floor=detail.floor,
        )


@register("cnnloc")
class CNNLocEstimator(Estimator):
    """CNNLoc (SAE + 1-D CNN) baseline behind the serving protocol.

    ``dtype="float32"`` selects the fused float32 training fast path; a
    cache-keyed hyperparameter like on the ``noble`` backend.
    ``quantize_bins`` trains and serves on the uint8-quantized radio
    map (same semantics as the kNN/NObLe backends).
    """

    def __init__(
        self,
        encoder_sizes: tuple = (128, 64),
        conv_channels: tuple = (8, 16),
        pretrain_epochs: int = 20,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed=0,
        dtype=None,
        quantize_bins: "int | None" = None,
        transform=None,
    ):
        self._pipeline = FeaturePipeline.resolve(
            transform,
            backend="cnnloc",
            stages=("bin",),
            quantize_bins=quantize_bins,
            dtype=dtype,
        )
        super().__init__(
            encoder_sizes=tuple(int(s) for s in encoder_sizes),
            conv_channels=tuple(int(c) for c in conv_channels),
            pretrain_epochs=int(pretrain_epochs),
            epochs=int(epochs),
            batch_size=int(batch_size),
            lr=float(lr),
            seed=_canonical_seed(seed),
            **self._pipeline.canonical_params(),
        )
        self.model_ = None

    def fit(self, dataset: FingerprintDataset) -> "CNNLocEstimator":
        from repro.localization.cnnloc import CNNLocWifi

        self.model_ = CNNLocWifi(**self.params).fit(dataset)
        return self

    def predict_batch(self, signals: np.ndarray) -> Prediction:
        check_fitted(self, "model_")
        coordinates, building, floor = self.model_.predict_full(
            self._as_dataset(signals)
        )
        return Prediction(coordinates=coordinates, building=building, floor=floor)


class _RegressorEstimator(Estimator):
    """Shared adapter for coordinate-only regressors on normalized signals."""

    def _build(self):
        raise NotImplementedError

    def fit(self, dataset: FingerprintDataset) -> "_RegressorEstimator":
        self.model_ = self._build()
        self.model_.fit(dataset.normalized_signals(), dataset.coordinates)
        return self

    def predict_batch(self, signals: np.ndarray) -> Prediction:
        check_fitted(self, "model_")
        normalized = self._as_dataset(signals).normalized_signals()
        return self._shard_predictions(
            normalized,
            lambda chunk: Prediction(coordinates=self.model_.predict(chunk)),
        )


@register("knn-regressor")
class KNNRegressorEstimator(_RegressorEstimator):
    """Generic kNN regression (signals → coordinates) for serving.

    ``shards > 1`` shards the underlying index (exact merge), so the
    served coordinates equal the monolithic configuration's.
    """

    def __init__(
        self,
        k: int = 5,
        weights: str = "uniform",
        shards: int = 1,
        partitioner="kmeans",
        quantize_bins: "int | None" = None,
        transform=None,
    ):
        self._pipeline = FeaturePipeline.resolve(
            transform,
            backend="knn-regressor",
            stages=("bin", "shard"),
            shards=shards,
            partitioner=partitioner,
            quantize_bins=quantize_bins,
        )
        self._partitioner = self._pipeline.partitioner
        super().__init__(
            k=int(k),
            weights=weights,
            **self._pipeline.canonical_params(),
        )
        self.model_ = None

    def _build(self):
        from repro.ml.knn_regressor import KNNRegressor

        kwargs = dict(self.params)
        if "partitioner" in kwargs:
            kwargs["partitioner"] = self._partitioner
        return KNNRegressor(**kwargs)


@register("ensemble")
class EnsembleEstimator(Estimator):
    """Primary backend with a kNN fallback for out-of-distribution scans.

    The ROADMAP's multi-backend ensemble: serve the paper's NObLe
    network for scans that look like the radio map it was trained on,
    and fall back to classic kNN fingerprinting — which can never
    extrapolate off the map — for scans that do not.  A scan is ruled
    out-of-distribution when its nearest-neighbor distance to the
    training fingerprints (in normalized signal space) exceeds the
    ``ood_quantile`` quantile of the training set's own leave-one-out
    nearest-neighbor distances.

    Routing is strictly row-wise (each scan's gate depends only on that
    scan), so batched predictions equal per-query predictions and the
    micro-batcher/front-end parity guarantees carry over unchanged.
    Building/floor heads are served only when *both* sides produce them
    (probed once at fit time) — otherwise every prediction drops them,
    so head presence never depends on how a batch happened to route and
    :func:`repro.serving.concatenate` always sees a consistent shape.

    ``primary`` / ``fallback`` name any two registered backends;
    ``primary_params`` / ``fallback_params`` are forwarded to them and
    canonicalized into this estimator's cache key, so two spellings of
    the same child configuration share one
    :class:`repro.serving.cache.ModelCache` entry.  ``routes_`` counts
    how many rows each side served since ``fit`` (observability for the
    front end's multiplexing).
    """

    def __init__(
        self,
        primary: str = "noble",
        fallback: str = "knn",
        ood_quantile: float = 0.99,
        primary_params: "dict | None" = None,
        fallback_params: "dict | None" = None,
        quantize_bins: "int | None" = None,
        transform=None,
    ):
        if "ensemble" in (primary, fallback):
            raise ValueError("ensemble backends cannot nest")
        if not 0.0 <= float(ood_quantile) <= 1.0:
            raise ValueError(
                f"ood_quantile must be in [0, 1], got {ood_quantile}"
            )
        # the ensemble's own pipeline covers the OOD gate index; the
        # children configure theirs via primary_params/fallback_params
        self._pipeline = FeaturePipeline.resolve(
            transform,
            backend="ensemble",
            stages=("bin",),
            quantize_bins=quantize_bins,
        )
        self._primary = create(primary, **dict(primary_params or {}))
        self._fallback = create(fallback, **dict(fallback_params or {}))
        super().__init__(
            primary=primary,
            fallback=fallback,
            ood_quantile=float(ood_quantile),
            # children canonicalize their own params (defaults filled,
            # spellings collapsed), so the cache key inherits that
            primary_params=dict(sorted(self._primary.params.items())),
            fallback_params=dict(sorted(self._fallback.params.items())),
            **self._pipeline.canonical_params(),
        )
        self.ood_threshold_: "float | None" = None
        self.routes_ = {"primary": 0, "fallback": 0}

    def fit(self, dataset: FingerprintDataset) -> "EnsembleEstimator":
        from repro.manifold.neighbors import KNNIndex

        self._primary.fit(dataset)
        self._fallback.fit(dataset)
        signals = dataset.normalized_signals()
        self._ood_index = KNNIndex(
            signals, method="brute", binner=self._fit_gate_binner(signals)
        )
        if len(signals) > 1:
            distances, _ = self._ood_index.query(
                signals, k=1, exclude_self=True, on_excess="clamp"
            )
            self.ood_threshold_ = float(
                np.quantile(distances[:, 0], self.params["ood_quantile"])
            )
        else:
            # a single-point map has no leave-one-out distances: nothing
            # is ever ruled out-of-distribution
            self.ood_threshold_ = float("inf")
        # probe with one real row: heads are served only when both sides
        # have them, so presence never depends on batch routing
        probe = dataset.rssi[:1]
        probed = [
            child.predict_batch(probe)
            for child in (self._primary, self._fallback)
        ]
        self._heads_ok = all(
            p.building is not None and p.floor is not None for p in probed
        )
        self.routes_ = {"primary": 0, "fallback": 0}
        return self

    def _fit_gate_binner(self, signals: np.ndarray):
        """uint8 quantizer for the OOD gate index when ``quantize_bins`` set.

        Mirrors the kNN backends: the gate's stored fingerprints are
        binned, queries stay raw (asymmetric distance), so the gate's
        memory footprint quantizes like the serving indexes do.
        """
        if "quantize_bins" not in self.params:
            return None
        from repro.quantization import FeatureBinner

        return FeatureBinner(n_bins=self.params["quantize_bins"]).fit(signals)

    def predict_batch(self, signals: np.ndarray) -> Prediction:
        check_fitted(self, "ood_threshold_")
        signals = check_2d(signals, "signals")
        if len(signals) == 0:
            return self._strip(self._primary.predict_batch(signals))
        normalized = self._as_dataset(signals).normalized_signals()
        distances, _ = self._ood_index.query(normalized, k=1)
        ood = distances[:, 0] > self.ood_threshold_
        self.routes_["primary"] += int((~ood).sum())
        self.routes_["fallback"] += int(ood.sum())
        if not ood.any():
            return self._strip(self._primary.predict_batch(signals))
        if ood.all():
            return self._strip(self._fallback.predict_batch(signals))
        return self._strip(
            self._merge(
                ood,
                self._primary.predict_batch(signals[~ood]),
                self._fallback.predict_batch(signals[ood]),
            )
        )

    def _strip(self, prediction: Prediction) -> Prediction:
        """Drop label heads unless both children serve them (see class doc)."""
        if self._heads_ok:
            return prediction
        return Prediction(coordinates=prediction.coordinates)

    @staticmethod
    def _merge(
        ood: np.ndarray, primary: Prediction, fallback: Prediction
    ) -> Prediction:
        """Interleave the two routed predictions back into request order."""
        n = len(ood)
        coordinates = np.empty((n, 2), dtype=float)
        coordinates[~ood] = primary.coordinates
        coordinates[ood] = fallback.coordinates
        heads = {}
        for name in ("building", "floor"):
            a, b = getattr(primary, name), getattr(fallback, name)
            if a is None or b is None:
                # a head only survives when both sides can fill it
                heads[name] = None
            else:
                merged = np.empty(n, dtype=np.asarray(a).dtype)
                merged[~ood] = a
                merged[ood] = b
                heads[name] = merged
        return Prediction(coordinates=coordinates, **heads)


@register("forest")
class RandomForestEstimator(_RegressorEstimator):
    """Random-forest regression (signals → coordinates) for serving."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: "int | None" = 8,
        min_samples_leaf: int = 1,
        seed=0,
        shards: int = 1,
    ):
        super().__init__(
            n_estimators=int(n_estimators),
            max_depth=None if max_depth is None else int(max_depth),
            min_samples_leaf=int(min_samples_leaf),
            seed=_canonical_seed(seed),
            **_sharding_params(shards),
        )
        self.model_ = None

    fanout_shards = True  # trees predict row-wise: fan the batch out

    def _build(self):
        from repro.ml.forest import RandomForestRegressor

        params = {
            k: v for k, v in self.params.items() if k != "shards"
        }
        params["rng"] = params.pop("seed")
        return RandomForestRegressor(**params)
