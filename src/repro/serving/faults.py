"""Deterministic fault injection for the serving tier (chaos harness).

The resilience layer (:mod:`repro.serving.resilience`) claims the
serving tier stays available while workers die, heartbeats stall, shm
slots rot, store artifacts corrupt, and models run slow.  This module
*makes those things happen*, reproducibly: a :class:`FaultInjector`
draws every decision from one seeded :class:`numpy.random.Generator`
stream, so two injectors with the same seed plan the same fault
sequence — the chaos bench (``python -m repro.cli chaos-bench``) and
the respawn-storm tests replay identical storms.

Fault surface:

* :meth:`FaultInjector.kill_worker` — SIGKILL one worker process of a
  :class:`~repro.serving.workers.ShardWorkerPool` (crash-recovery /
  respawn-budget path);
* :meth:`FaultInjector.stall_worker` — SIGSTOP a worker for
  ``stall_s`` (wedged-child path: the process is alive, the heartbeat
  is not), with :meth:`resume_stalled` issuing the SIGCONTs;
* :meth:`FaultInjector.corrupt_result_slot` — flip payload bytes in a
  worker's result ring; the slot checksum
  (:mod:`repro.serving.shm`) turns this into a detected
  :data:`~repro.serving.shm.CORRUPT_SLOT` instead of a wrong answer;
* :meth:`FaultInjector.corrupt_store_artifact` — overwrite bytes in
  the middle of a random :class:`~repro.core.persistence.ModelStore`
  artifact (quarantine + self-heal path);
* :class:`DelayedEstimator` — wraps an estimator so a seeded fraction
  of batches serve slowly (deadline/timeout pressure without changing
  any prediction).

All mutators are best-effort by design: a kill aimed at an
already-dead worker, or a slot corruption landing on an empty ring,
simply does nothing — chaos does not get to crash the harness.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np


class DelayedEstimator:
    """Estimator proxy that sleeps before a seeded fraction of batches.

    Predictions are untouched — only latency is injected — so every
    parity assertion downstream still holds.  ``rate`` is the
    per-``predict_batch`` probability of a ``delay_s`` stall, drawn
    from a seeded generator for reproducibility.
    """

    def __init__(self, estimator, rate: float = 0.1, delay_s: float = 0.05,
                 seed: int = 0):
        if not 0 <= rate <= 1:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self._estimator = estimator
        self.rate = float(rate)
        self.delay_s = float(delay_s)
        self._rng = np.random.default_rng(seed)
        self.n_delays = 0

    def __getattr__(self, name):
        return getattr(self._estimator, name)

    def predict_batch(self, signals):
        if self.rate and self._rng.random() < self.rate:
            self.n_delays += 1
            time.sleep(self.delay_s)
        return self._estimator.predict_batch(signals)


class FaultInjector:
    """Seeded fault source for pools, channels, and model stores.

    One injector owns one ``numpy`` generator; every targeted fault
    (which worker, which slot, which artifact, which bytes) is drawn
    from it, so a seed fully determines the storm.  Counters
    (``kills``, ``stalls``, ``slot_corruptions``, ``store_corruptions``)
    record what actually landed — a fault aimed at a target that no
    longer exists is a no-op and is *not* counted.
    """

    def __init__(self, seed: int = 0, stall_s: float = 0.5):
        if stall_s < 0:
            raise ValueError(f"stall_s must be >= 0, got {stall_s}")
        self.seed = int(seed)
        self.stall_s = float(stall_s)
        self._rng = np.random.default_rng(seed)
        self._stalled: "list[tuple[int, float]]" = []  # (pid, resume_at)
        self.kills = 0
        self.stalls = 0
        self.slot_corruptions = 0
        self.store_corruptions = 0

    # ------------------------------------------------------------ processes
    def _pick_worker(self, pool):
        alive = [
            handle
            for handle in pool.workers
            if handle.process is not None and handle.process.is_alive()
        ]
        if not alive:
            return None
        return alive[int(self._rng.integers(0, len(alive)))]

    def kill_worker(self, pool) -> bool:
        """SIGKILL one live worker; True when a kill landed."""
        handle = self._pick_worker(pool)
        if handle is None:
            return False
        handle.process.kill()
        self.kills += 1
        return True

    def stall_worker(self, pool) -> bool:
        """SIGSTOP one live worker for ``stall_s`` (heartbeat freeze).

        The worker stays alive but stops heartbeating — the pool's
        wedge detection must notice.  :meth:`resume_stalled` (call it
        periodically, and once at teardown) sends the matching
        SIGCONT after ``stall_s``; a stopped process that got respawned
        away in the meantime is skipped.
        """
        handle = self._pick_worker(pool)
        if handle is None:
            return False
        pid = handle.process.pid
        try:
            os.kill(pid, signal.SIGSTOP)
        except (ProcessLookupError, PermissionError):
            return False
        self._stalled.append((pid, time.monotonic() + self.stall_s))
        self.stalls += 1
        return True

    def resume_stalled(self, force: bool = False) -> int:
        """SIGCONT every stalled worker whose stall elapsed; returns count.

        ``force=True`` resumes everything immediately (teardown), so a
        stopped process can never outlive the chaos run.
        """
        now = time.monotonic()
        keep, resumed = [], 0
        for pid, resume_at in self._stalled:
            if force or now >= resume_at:
                try:
                    os.kill(pid, signal.SIGCONT)
                except (ProcessLookupError, PermissionError):
                    pass
                resumed += 1
            else:
                keep.append((pid, resume_at))
        self._stalled = keep
        return resumed

    # --------------------------------------------------------- shared memory
    def corrupt_result_slot(self, pool) -> bool:
        """Smash bytes into one worker's result-ring payload.

        Whatever the ring's consumer later pops from that slot fails
        checksum verification and comes back as
        :data:`~repro.serving.shm.CORRUPT_SLOT` — the recovery path
        under test.  Corrupting a slot that is currently unpublished is
        harmless (the next push rewrites payload, header, and checksum
        from scratch); only the attempt is counted.
        """
        if not pool.workers:
            return False
        handle = pool.workers[int(self._rng.integers(0, len(pool.workers)))]
        ring = handle.channel.results
        if ring is None:  # channel already closed
            return False
        slot = int(self._rng.integers(0, ring.n_slots))
        payload = ring._payloads[0]
        noise = self._rng.integers(
            1, 2**31, size=payload.shape[1:], dtype=np.int64
        )
        payload[slot] = noise.view(np.float64)
        self.slot_corruptions += 1
        return True

    # ----------------------------------------------------------------- store
    def corrupt_store_artifact(self, store) -> "str | None":
        """Overwrite bytes mid-file in one random store artifact.

        Returns the corrupted path (None when the store is empty).  The
        artifact keeps its name and size, so only content validation —
        the quarantine path — can catch it.
        """
        paths = store.paths()
        if not paths:
            return None
        path = paths[int(self._rng.integers(0, len(paths)))]
        size = os.path.getsize(path)
        if size == 0:
            return None
        start = int(self._rng.integers(0, max(size // 2, 1)))
        blob = self._rng.integers(0, 256, size=min(512, size), dtype=np.uint8)
        with open(path, "r+b") as handle:
            handle.seek(start)
            handle.write(blob.tobytes())
        self.store_corruptions += 1
        return path
