"""Micro-batching prediction engine.

Production localization traffic arrives as single-query requests (one
phone, one RSSI scan), but every backend in the registry is vectorized:
one ``predict_batch`` over 64 rows costs barely more than over 1.  The
:class:`MicroBatcher` bridges the two — it accumulates submitted
queries into fixed-size micro-batches and runs each batch through one
vectorized model call:

    batcher = MicroBatcher(estimator, batch_size=64)
    ticket = batcher.submit(rssi_row)    # returns immediately
    ...
    batcher.flush()                      # drain the partial batch
    position = ticket.result().coordinates[0]

A full batch flushes automatically inside :meth:`submit`; ``flush()``
drains whatever remains.  :meth:`predict_many` is the convenience path
for an already-materialized query matrix.

Thread safety: every mutating operation (``submit`` / ``flush`` /
``discard_pending`` / ``predict_many``) serializes on one reentrant
lock, so concurrent producers can share a batcher without losing or
duplicating tickets — an auto-flush triggered by one thread's submit
runs to completion before any other thread's submit interleaves.  The
lock is held across the model call inside ``flush``, which serializes
batches by design (one vectorized call at a time is the whole point).
For deadline-driven serving, wrap the batcher in
:class:`repro.serving.ServingFrontend`, which owns it single-writer.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.serving.registry import Estimator, Prediction, concatenate


class Ticket:
    """Handle for one submitted query; resolved by the next flush."""

    __slots__ = ("_prediction",)

    def __init__(self):
        self._prediction: "Prediction | None" = None

    @property
    def ready(self) -> bool:
        return self._prediction is not None

    def result(self) -> Prediction:
        """The single-row :class:`Prediction` for this query.

        Raises ``RuntimeError`` if the query's batch has not run yet —
        call :meth:`MicroBatcher.flush` first.
        """
        if self._prediction is None:
            raise RuntimeError("prediction pending — flush() the batcher first")
        return self._prediction


class MicroBatcher:
    """Accumulate single queries into vectorized micro-batches.

    Parameters
    ----------
    estimator:
        A fitted :class:`repro.serving.Estimator`.
    batch_size:
        Queries per vectorized model call; a partial final batch is run
        by :meth:`flush`.
    """

    def __init__(self, estimator: Estimator, batch_size: int = 64):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.estimator = estimator
        self.batch_size = int(batch_size)
        self._pending_signals: "list[np.ndarray]" = []
        self._pending_tickets: "list[Ticket]" = []
        self.n_requests = 0
        self.n_batches = 0
        # reentrant: submit auto-flushes while already holding the lock
        self._lock = threading.RLock()

    @property
    def n_pending(self) -> int:
        """Queries submitted but not yet run through the model."""
        with self._lock:
            return len(self._pending_tickets)

    def submit(self, signal: np.ndarray) -> Ticket:
        """Enqueue one raw RSSI row; auto-flushes when the batch fills."""
        signal = np.asarray(signal, dtype=float)
        if signal.ndim != 1:
            raise ValueError(
                f"submit takes a single (W,) signal row, got shape {signal.shape}"
            )
        with self._lock:
            if (
                self._pending_signals
                and signal.shape != self._pending_signals[0].shape
            ):
                raise ValueError(
                    f"signal width {signal.shape[0]} does not match the pending "
                    f"batch width {self._pending_signals[0].shape[0]}"
                )
            ticket = Ticket()
            self._pending_signals.append(signal)
            self._pending_tickets.append(ticket)
            self.n_requests += 1
            if len(self._pending_tickets) >= self.batch_size:
                try:
                    self.flush()
                except Exception:
                    # the caller never receives this ticket when submit
                    # raises — undo the enqueue so the query can be
                    # resubmitted without duplication (earlier queries
                    # keep their held tickets)
                    self._pending_signals.pop()
                    self._pending_tickets.pop()
                    self.n_requests -= 1
                    raise
            return ticket

    def discard_pending(self) -> int:
        """Drop all pending queries without running them; returns the count.

        The recovery path when a queued query poisons the batch (e.g. a
        wrong-width first row that makes every :meth:`flush` raise):
        discarded tickets stay permanently unresolved and their queries
        must be resubmitted.
        """
        with self._lock:
            dropped = len(self._pending_tickets)
            self._pending_signals = []
            self._pending_tickets = []
            return dropped

    def flush(self) -> int:
        """Run pending queries in one model call; returns how many ran.

        If the model call raises, the pending queue is left intact so the
        batch can be retried (or inspected) instead of silently dropped.
        """
        with self._lock:
            if not self._pending_tickets:
                return 0
            signals = np.vstack(self._pending_signals)
            prediction = self.estimator.predict_batch(signals)
            tickets = self._pending_tickets
            self._pending_signals = []
            self._pending_tickets = []
            self.n_batches += 1
            # resolve before releasing the lock: a concurrent producer
            # whose flush() returns 0 (queue already swapped empty) must
            # find its ticket resolved, not in a half-flushed limbo
            for i, ticket in enumerate(tickets):
                ticket._prediction = prediction.take(slice(i, i + 1))
        return len(tickets)

    def predict_many(self, signals: np.ndarray) -> Prediction:
        """Predict a whole query matrix through fixed-size micro-batches.

        Equivalent to submitting every row and flushing, but returns the
        reassembled :class:`Prediction` directly (row order preserved).
        Queries still pending from earlier :meth:`submit` calls are
        flushed first so their tickets resolve too.
        """
        signals = np.asarray(signals, dtype=float)
        if signals.ndim != 2:
            raise ValueError(f"signals must be 2-D, got shape {signals.shape}")
        with self._lock:
            self.flush()
            if len(signals) == 0:
                # one empty model call, so label heads survive for concatenate()
                return self.estimator.predict_batch(signals)
            batches = []
            for start in range(0, len(signals), self.batch_size):
                batch = signals[start : start + self.batch_size]
                batches.append(self.estimator.predict_batch(batch))
                self.n_batches += 1
                self.n_requests += len(batch)
        return concatenate(batches)
