"""Self-protection primitives for the serving tier.

The front end and the worker pool can each fail in ways the other must
survive: a hot tenant can flood the bounded queue and starve everyone
else, a crashing worker can eat the whole respawn budget in a storm,
and a transient store hiccup can cascade into a refit stampede.  This
module holds the policies that bound those failures:

* **Admission policies** — pluggable load-shedding strategies for
  :class:`~repro.serving.frontend.ServingFrontend`.  The legacy
  ``overflow="block"|"reject"`` behaviors are :class:`BlockAdmission`
  and :class:`RejectAdmission`; :class:`FairShedAdmission` adds
  per-tenant weighted-fair shedding (one hot radio map cannot starve
  the rest) and deadline-aware early reject (work that cannot meet its
  timeout given the measured in-queue latency is refused at the door
  instead of timing out after consuming a queue slot).
* **CircuitBreaker** — a closed/open/half-open breaker with a
  token-bucket failure budget and capped exponential cooldown, used by
  :class:`FallbackExecutor` to take an unhealthy worker-process tier
  out of the serving path and probe it back in.
* **RetryPolicy** — bounded attempts with capped exponential backoff
  and deterministic seeded jitter, shared by the store write-through
  retry and the worker re-dispatch path.
* **FallbackExecutor** — the degradation seam: a primary executor (the
  multi-process :class:`~repro.serving.workers.WorkerPoolExecutor`)
  circuit-broken over an always-available fallback (the in-process
  thread path over the same estimator).  A batch that the primary
  fails is *re-served* by the fallback — no request is ever lost to a
  worker-tier failure — and once the breaker's cooldown elapses a
  single half-open probe batch decides whether the primary returns.

Everything here is deterministic under an injected ``clock`` and seeded
``random`` stream, so the property tests never sleep.
"""

from __future__ import annotations

import random
import threading
import time


# --------------------------------------------------------------------------
# admission control
# --------------------------------------------------------------------------

#: Decision verbs an admission policy may return (first tuple element).
ADMIT = "admit"
BLOCK = "block"
SHED = "shed"
EVICT = "evict"


class AdmissionPolicy:
    """Decides what happens to each arriving request.

    :meth:`decide` runs under the front end's lock on every ``submit``
    and must stay allocation-light.  It returns ``(verb, victim)``:

    - ``("admit", None)`` — enqueue the request;
    - ``("block", None)`` — the producer waits for queue space, then
      the policy is asked again;
    - ``("shed", None)`` — refuse the arriving request with
      :class:`~repro.serving.frontend.ShedError`;
    - ``("evict", request)`` — shed ``request`` (a currently queued
      :class:`_Request` obtained from the view) to make room, then
      admit the arrival.
    """

    def decide(self, view, tenant: str, timeout_s: "float | None"):
        raise NotImplementedError


class BlockAdmission(AdmissionPolicy):
    """Legacy ``overflow="block"``: wait for space at the bound."""

    def decide(self, view, tenant, timeout_s):
        if view.pending < view.max_pending:
            return (ADMIT, None)
        return (BLOCK, None)


class RejectAdmission(AdmissionPolicy):
    """Legacy ``overflow="reject"``: refuse arrivals at the bound."""

    def decide(self, view, tenant, timeout_s):
        if view.pending < view.max_pending:
            return (ADMIT, None)
        return (SHED, None)


class FairShedAdmission(AdmissionPolicy):
    """Weighted-fair shedding with deadline-aware early reject.

    Each tenant (radio map / backend key — any string label) owns a
    weighted fair share of the bounded queue.  Below the bound every
    request is admitted; *at* the bound the most-over-share tenant
    pays: if the arriving tenant is itself the most loaded (normalized
    by weight) its request is shed, otherwise the newest queued request
    of the most loaded tenant is evicted to make room.  A tenant at 10x
    offered load therefore absorbs almost all of the shedding while
    light tenants keep their fair share of slots.

    ``early_reject`` additionally refuses requests that cannot meet
    their own timeout: when the measured per-request service time (the
    front end's EWMA, or the ``service_time_s`` override) predicts an
    in-queue wait beyond ``margin`` times the request's timeout budget,
    the request is shed immediately instead of occupying a slot it is
    doomed to time out in.

    Parameters
    ----------
    weights:
        Optional ``{tenant: weight}`` map; heavier tenants own more of
        the queue.  Unknown tenants get ``default_weight``.
    early_reject:
        Enable the deadline-aware reject (default True; it is inert
        for requests without a timeout).
    margin:
        Early-reject tolerance: shed when predicted wait exceeds
        ``margin * timeout``.  1.0 is exact; larger values shed later.
    service_time_s:
        Fixed per-request service-time estimate overriding the front
        end's measured EWMA (deterministic tests; None = measured).
    """

    def __init__(
        self,
        weights: "dict[str, float] | None" = None,
        default_weight: float = 1.0,
        early_reject: bool = True,
        margin: float = 1.0,
        service_time_s: "float | None" = None,
    ):
        if default_weight <= 0:
            raise ValueError(
                f"default_weight must be > 0, got {default_weight}"
            )
        if margin <= 0:
            raise ValueError(f"margin must be > 0, got {margin}")
        if service_time_s is not None and service_time_s < 0:
            raise ValueError(
                f"service_time_s must be >= 0, got {service_time_s}"
            )
        self.weights = dict(weights or {})
        for name, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(
                    f"tenant weight must be > 0, got {name!r}: {weight}"
                )
        self.default_weight = float(default_weight)
        self.early_reject = bool(early_reject)
        self.margin = float(margin)
        self.service_time_s = service_time_s

    def _weight(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def decide(self, view, tenant, timeout_s):
        if self.early_reject and timeout_s is not None:
            per_request = (
                self.service_time_s
                if self.service_time_s is not None
                else view.service_estimate_s
            )
            if per_request is not None:
                predicted_wait = view.pending * per_request
                if predicted_wait > timeout_s * self.margin:
                    return (SHED, None)
        if view.pending < view.max_pending:
            return (ADMIT, None)
        # at the bound: the most over-share tenant (by weighted pending
        # occupancy) pays for the slot
        load = view.tenant_pending.get(tenant, 0) / self._weight(tenant)
        hottest, hottest_load = None, load
        for name, pending in view.tenant_pending.items():
            if pending <= 0 or name == tenant:
                continue
            normalized = pending / self._weight(name)
            if normalized > hottest_load:
                hottest, hottest_load = name, normalized
        if hottest is None:
            # the arrival belongs to the (tied-)hottest tenant already
            return (SHED, None)
        victim = view.newest_request_of(hottest)
        if victim is None:  # raced away; shed the arrival
            return (SHED, None)
        return (EVICT, victim)


# --------------------------------------------------------------------------
# circuit breaker
# --------------------------------------------------------------------------


class CircuitBreaker:
    """Closed/open/half-open breaker with a token-bucket failure budget.

    Failures spend tokens from a bucket of ``failure_budget`` that
    refills continuously over ``window_s`` (a steady trickle of
    failures is absorbed; a burst trips).  When the bucket runs dry the
    breaker **opens** for a cooldown that starts at ``cooldown_s`` and
    doubles on every consecutive trip up to ``cooldown_cap_s`` (capped
    exponential backoff, with deterministic seeded jitter so a fleet of
    breakers does not probe in lockstep).  After the cooldown a single
    probe is allowed through (**half-open**); its success closes the
    breaker and refills the bucket, its failure re-opens with the next
    longer cooldown.

    Thread-safe; all time arithmetic uses the injected ``clock``.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_budget: int = 5,
        window_s: float = 30.0,
        cooldown_s: float = 1.0,
        cooldown_cap_s: float = 30.0,
        jitter: float = 0.1,
        clock=None,
        seed: int = 0,
    ):
        if failure_budget < 1:
            raise ValueError(
                f"failure_budget must be >= 1, got {failure_budget}"
            )
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        if cooldown_cap_s < cooldown_s:
            raise ValueError(
                f"cooldown_cap_s must be >= cooldown_s, got {cooldown_cap_s}"
            )
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.failure_budget = int(failure_budget)
        self.window_s = float(window_s)
        self.cooldown_s = float(cooldown_s)
        self.cooldown_cap_s = float(cooldown_cap_s)
        self.jitter = float(jitter)
        self._clock = time.monotonic if clock is None else clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._tokens = float(self.failure_budget)
        self._refill_at = self._clock()
        self._opened_at = 0.0
        self._current_cooldown = 0.0
        self._consecutive_trips = 0
        self._probe_inflight = False
        self.n_trips = 0
        self.n_failures = 0
        self.n_successes = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._advance_locked(self._clock())
            return self._state

    def _refill_locked(self, now: float) -> None:
        elapsed = now - self._refill_at
        if elapsed > 0:
            self._tokens = min(
                float(self.failure_budget),
                self._tokens + elapsed * self.failure_budget / self.window_s,
            )
        self._refill_at = now

    def _advance_locked(self, now: float) -> None:
        if (
            self._state == self.OPEN
            and not self._probe_inflight
            and now - self._opened_at >= self._current_cooldown
        ):
            self._state = self.HALF_OPEN

    def _trip_locked(self, now: float) -> None:
        cooldown = min(
            self.cooldown_cap_s,
            self.cooldown_s * (2.0 ** self._consecutive_trips),
        )
        if self.jitter:
            cooldown *= 1.0 + self.jitter * self._rng.random()
        self._state = self.OPEN
        self._opened_at = now
        self._current_cooldown = cooldown
        self._consecutive_trips += 1
        self.n_trips += 1

    def allow(self) -> bool:
        """Whether the protected call may run right now.

        Closed: always.  Open: no, until the cooldown elapses.
        Half-open: exactly one caller gets True (the probe) until its
        outcome is recorded.
        """
        with self._lock:
            now = self._clock()
            self._advance_locked(now)
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN:
                # hand out one probe: go (internally) back to OPEN with
                # the same cooldown so concurrent callers are refused
                # until record_success / record_failure settles it
                self._state = self.OPEN
                self._opened_at = now
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        """The protected call succeeded; a probe success closes."""
        with self._lock:
            self.n_successes += 1
            if self._probe_inflight:
                self._probe_inflight = False
                self._state = self.CLOSED
                self._tokens = float(self.failure_budget)
                self._refill_at = self._clock()
                self._consecutive_trips = 0

    def record_failure(self) -> None:
        """The protected call failed; may trip the breaker."""
        with self._lock:
            now = self._clock()
            self.n_failures += 1
            if self._probe_inflight:
                # failed probe: straight back to open, longer cooldown
                self._probe_inflight = False
                self._trip_locked(now)
                return
            if self._state != self.CLOSED:
                return
            self._refill_locked(now)
            self._tokens -= 1.0
            if self._tokens < 1.0:
                self._trip_locked(now)


# --------------------------------------------------------------------------
# retry policy
# --------------------------------------------------------------------------


class RetryPolicy:
    """Bounded retries with capped exponential backoff + seeded jitter.

    ``attempts`` is the total number of tries (1 = no retry).  Delay
    before retry ``i`` (1-based) is ``min(max_delay_s, base_delay_s *
    2**(i-1))`` stretched by up to ``jitter`` fraction, drawn from a
    seeded :class:`random.Random` so sequences are reproducible.
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay_s: float = 0.01,
        max_delay_s: float = 0.25,
        jitter: float = 0.5,
        seed: int = 0,
    ):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if base_delay_s < 0:
            raise ValueError(f"base_delay_s must be >= 0, got {base_delay_s}")
        if max_delay_s < base_delay_s:
            raise ValueError(
                f"max_delay_s must be >= base_delay_s, got {max_delay_s}"
            )
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.attempts = int(attempts)
        self.base_delay_s = float(base_delay_s)
        self.max_delay_s = float(max_delay_s)
        self.jitter = float(jitter)
        self._rng = random.Random(seed)

    def delay(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (1-based)."""
        if retry_index < 1:
            raise ValueError(f"retry_index must be >= 1, got {retry_index}")
        delay = min(
            self.max_delay_s, self.base_delay_s * (2.0 ** (retry_index - 1))
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * self._rng.random()
        return delay

    def call(self, fn, retry_on=(OSError,), sleep=time.sleep):
        """Run ``fn`` with bounded retries on ``retry_on`` exceptions.

        Returns ``fn``'s result; re-raises the last exception once the
        attempt budget is spent.  Exceptions outside ``retry_on``
        propagate immediately.
        """
        for attempt in range(1, self.attempts + 1):
            try:
                return fn()
            except retry_on:
                if attempt == self.attempts:
                    raise
                sleep(self.delay(attempt))


# --------------------------------------------------------------------------
# circuit-broken executor with graceful degradation
# --------------------------------------------------------------------------


class FallbackExecutor:
    """Primary executor circuit-broken over an in-process fallback.

    The degradation seam of the serving tier: batches run on
    ``primary`` (normally a
    :class:`~repro.serving.workers.WorkerPoolExecutor`) while its
    breaker is closed; a failure both records against the breaker *and*
    re-serves the same batch on ``fallback`` (normally the thread path
    over the same estimator), so the requests in flight during a
    worker-tier failure still get answers — never an error, never a
    stale result.  While the breaker is open every batch goes straight
    to the fallback; after the cooldown one probe batch tries the
    primary again and its outcome closes or re-opens the breaker.

    ``failure_types`` bounds what counts as a *tier* failure (default:
    :class:`~repro.serving.workers.WorkerPoolError`).  Model-level
    errors (bad input width etc.) are not tier failures; they propagate
    and fail only their batch, exactly as on a plain executor.
    """

    def __init__(self, primary, fallback, breaker=None, failure_types=None):
        if failure_types is None:
            from repro.serving.workers import WorkerPoolError

            failure_types = (WorkerPoolError,)
        self.primary = primary
        self.fallback = fallback
        self.breaker = CircuitBreaker() if breaker is None else breaker
        self.failure_types = tuple(failure_types)
        self.n_batches = 0
        self.n_failovers = 0
        self.n_fallback_batches = 0
        self.n_primary_batches = 0

    @property
    def respawns(self) -> int:
        """Respawn count of the primary's pool (0 when not pool-backed)."""
        pool = getattr(self.primary, "pool", None)
        return int(getattr(pool, "respawns", 0))

    def predict(self, signals):
        self.n_batches += 1
        if self.breaker.allow():
            try:
                prediction = self.primary.predict(signals)
            except self.failure_types:
                self.breaker.record_failure()
                self.n_failovers += 1
            else:
                self.breaker.record_success()
                self.n_primary_batches += 1
                return prediction
        self.n_fallback_batches += 1
        return self.fallback.predict(signals)

    def close(self) -> None:
        try:
            self.primary.close()
        finally:
            self.fallback.close()
