"""Deadline-driven asynchronous serving front end.

:class:`repro.serving.MicroBatcher` only drains when a batch fills or
someone calls ``flush()`` — fine for offline evaluation, wrong for a
production front end where the last few requests of a lull would wait
forever.  :class:`ServingFrontend` wraps the batcher in a worker thread
with the four properties a real serving tier needs:

* **deadline-based flush** — every request carries a latency budget
  (``deadline_ms``); a partial batch drains as soon as its *oldest*
  request's budget expires, not only when the batch fills.
* **bounded-queue backpressure** — at most ``max_pending`` requests may
  be queued; beyond that ``submit`` either blocks until the worker
  drains (``overflow="block"``) or rejects immediately with
  :class:`QueueFullError` (``overflow="reject"``).
* **per-request timeouts** — a request still queued when its
  ``timeout_ms`` elapses fails with :class:`RequestTimeoutError`
  instead of being served stale.
* **deterministic shutdown** — ``close(drain=True)`` serves everything
  still queued, ``close(drain=False)`` fails it with
  :class:`FrontendClosedError`; either way every ticket ever returned
  by ``submit`` is resolved when ``close`` returns.

Typical use::

    with ServingFrontend(estimator, batch_size=64, deadline_ms=50) as fe:
        tickets = [fe.submit(scan) for scan in incoming]
        positions = [t.result().coordinates[0] for t in tickets]

Concurrency contract: ``submit`` is safe from any number of producer
threads.  The wrapped :class:`MicroBatcher` is owned exclusively by the
front end's drain path (a single-writer contract — the worker thread,
or the caller of :meth:`pump` in manual mode); nothing else may touch
it.  The batcher itself is also internally locked, so even an aliased
handle cannot corrupt the queue — the contract exists so batch
composition stays deterministic.

Execution is pluggable: by default batches run through an in-process
:class:`MicroBatcher` over the given estimator (the *thread path*), but
``executor=`` accepts any object with ``predict(signals) ->
Prediction``, an ``n_batches`` counter, and ``close()`` — notably
:class:`repro.serving.workers.WorkerPoolExecutor`, which scatters each
batch across shard worker *processes*.  Queueing, deadlines,
backpressure, and ticket semantics are identical either way; only the
batch execution engine changes.

Determinism for tests: pass ``clock=`` (any monotonic ``() -> seconds``
callable) and ``start=False`` to get a *manual* front end with no
worker thread; drive it by advancing the fake clock and calling
:meth:`pump`.  All deadline/timeout semantics are expressed against the
injected clock, so the property suite in
``tests/serving/test_deadline_properties.py`` runs without a single
``time.sleep``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.serving.batcher import MicroBatcher
from repro.serving.registry import Estimator, Prediction
from repro.serving.resilience import (
    ADMIT,
    BLOCK,
    EVICT,
    SHED,
    AdmissionPolicy,
    BlockAdmission,
    RejectAdmission,
)


class QueueFullError(RuntimeError):
    """``submit`` rejected: the bounded queue is at ``max_pending``."""


class ShedError(QueueFullError):
    """The admission policy shed this request (clean load shedding).

    Subclasses :class:`QueueFullError` so callers handling the legacy
    reject path keep working; raised both for arrivals refused at the
    door and for queued requests evicted by a fairness policy.
    """


class FrontendClosedError(RuntimeError):
    """The front end is closed: submission refused or ticket cancelled."""


class RequestTimeoutError(TimeoutError):
    """A queued request outlived its ``timeout_ms`` and was dropped."""


class AsyncTicket:
    """Future-like handle for one request submitted to the front end.

    Resolved exactly once — either with a single-row
    :class:`repro.serving.Prediction` or with an error
    (:class:`RequestTimeoutError`, :class:`FrontendClosedError`, or
    whatever the model raised).  ``result()`` blocks until then.

    Tickets are deliberately lighter than ``threading.Event``-per-ticket
    futures: all tickets of one front end share its resolution
    condition, which the drain path notifies once per *batch*.  Under
    the GIL, ``_done`` is written last in ``_resolve``/``_fail``, so the
    lock-free fast path in :meth:`result` can never observe a
    half-resolved ticket.
    """

    __slots__ = ("_cond", "_done", "_prediction", "_error", "_submitted_at",
                 "_resolved_at")

    def __init__(self, cond: threading.Condition, submitted_at: float):
        self._cond = cond
        self._done = False
        self._prediction: "Prediction | None" = None
        self._error: "BaseException | None" = None
        self._submitted_at = submitted_at
        self._resolved_at: "float | None" = None

    @property
    def done(self) -> bool:
        """True once the ticket carries a prediction or an error."""
        return self._done

    @property
    def latency_s(self) -> "float | None":
        """Submit-to-resolve time on the front end's clock, once done."""
        if self._resolved_at is None:
            return None
        return self._resolved_at - self._submitted_at

    def _wait(self, timeout: "float | None") -> None:
        if self._done:
            return
        with self._cond:
            if not self._cond.wait_for(lambda: self._done, timeout):
                raise TimeoutError("ticket not resolved within the wait timeout")

    def result(self, timeout: "float | None" = None) -> Prediction:
        """Block until resolved; return the prediction or raise the error.

        ``timeout`` bounds the *wait* (real seconds) and raises plain
        ``TimeoutError`` when it expires — distinct from
        :class:`RequestTimeoutError`, which means the request itself
        expired inside the queue.
        """
        self._wait(timeout)
        if self._error is not None:
            raise self._error
        return self._prediction

    def exception(self, timeout: "float | None" = None) -> "BaseException | None":
        """Block until resolved; return the recorded error (or None)."""
        self._wait(timeout)
        return self._error

    def _resolve(self, prediction: Prediction, at: float) -> None:
        self._prediction = prediction
        self._resolved_at = at
        self._done = True

    def _fail(self, error: BaseException, at: float) -> None:
        self._error = error
        self._resolved_at = at
        self._done = True


class _BatcherExecutor:
    """Default executor: an in-process :class:`MicroBatcher`.

    The thread path.  ``predict`` delegates to
    :meth:`MicroBatcher.predict_many`, which serves one front-end batch
    as one vectorized model call (the front end never hands over more
    than ``batch_size`` rows at a time).
    """

    __slots__ = ("batcher",)

    def __init__(self, batcher: MicroBatcher):
        self.batcher = batcher

    @property
    def n_batches(self) -> int:
        return self.batcher.n_batches

    def predict(self, signals: np.ndarray) -> Prediction:
        return self.batcher.predict_many(signals)

    def close(self) -> None:
        pass


class _Request:
    """One queued query: its signal, ticket, and clock bookkeeping."""

    __slots__ = ("signal", "ticket", "due", "expires", "tenant")

    def __init__(self, signal, ticket, due, expires, tenant):
        self.signal = signal
        self.ticket = ticket
        self.due = due          # oldest-request flush trigger
        self.expires = expires  # per-request timeout, or None
        self.tenant = tenant    # admission-policy fairness label


class _AdmissionView:
    """Read surface handed to admission policies (under the lock).

    Policies see queue occupancy, per-tenant pending counts, and the
    measured per-request service-time estimate — enough for fairness
    and deadline-aware decisions without touching front-end internals.
    """

    __slots__ = ("_frontend",)

    def __init__(self, frontend: "ServingFrontend"):
        self._frontend = frontend

    @property
    def pending(self) -> int:
        return len(self._frontend._queue)

    @property
    def max_pending(self) -> int:
        return self._frontend.max_pending

    @property
    def tenant_pending(self) -> "dict[str, int]":
        return self._frontend._tenant_pending

    @property
    def service_estimate_s(self) -> "float | None":
        """EWMA seconds-per-request through the executor (None = cold)."""
        return self._frontend._service_ewma_s

    def newest_request_of(self, tenant: str):
        """The most recently queued request of ``tenant`` (or None)."""
        queue = self._frontend._queue
        for request in reversed(queue):
            if request.tenant == tenant:
                return request
        return None


@dataclass
class TenantPane:
    """Per-tenant admission counters inside :class:`FrontendStats`.

    Typed replacement for the ad-hoc ``{"pending": .., "admitted": ..,
    "shed": ..}`` dicts the pane used to hold.  Mapping-style access
    (``pane["shed"]``) and :meth:`to_dict` keep the exact keys the
    dict era exposed, so existing dashboards and tests read it
    unchanged.
    """

    #: Requests of this tenant currently queued.
    pending: int = 0
    #: Requests admitted past the admission policy since startup.
    admitted: int = 0
    #: Requests shed (refused at arrival or evicted for fairness).
    shed: int = 0

    def __getitem__(self, key: str) -> int:
        try:
            return self.to_dict()[key]
        except KeyError:
            raise KeyError(key) from None

    def to_dict(self) -> "dict[str, int]":
        """The pane as the historical plain-dict shape (stable keys)."""
        return {
            "pending": self.pending,
            "admitted": self.admitted,
            "shed": self.shed,
        }


@dataclass
class FrontendStats:
    """Counters exposed by :meth:`ServingFrontend.stats`.

    The one operator pane: besides the front end's own lifecycle
    counters it surfaces the degradation state of everything behind it
    — worker-pool ``respawns``, the circuit ``breaker_state`` and
    ``failovers`` of a resilient executor, and the attached model
    cache's ``disk_hits`` / ``spill_failures`` — so nobody has to poke
    three objects to know whether the tier is healthy.  :meth:`to_dict`
    renders the whole pane as JSON-ready plain dicts with the same keys
    every field has always had.
    """

    submitted: int
    served: int
    timeouts: int
    rejected: int
    cancelled: int
    pending: int
    batches: int
    #: Total requests shed by the admission policy (refused arrivals
    #: plus queued requests evicted for fairness).
    shed: int = 0
    #: Per-tenant :class:`TenantPane` counters (mapping access keeps
    #: the historical ``tenants[t]["shed"]`` spelling working).
    tenants: "dict[str, TenantPane]" = field(default_factory=dict)
    #: EWMA per-request service time through the executor, in ms
    #: (None until the first batch lands).
    service_estimate_ms: "float | None" = None
    #: Worker-process respawns behind the executor (0 on the thread path).
    respawns: int = 0
    #: Circuit-breaker state of a resilient executor (None without one).
    breaker_state: "str | None" = None
    #: Batches failed over from the primary executor to its fallback.
    failovers: int = 0
    #: Disk-tier restores of the attached model cache (``cache=``).
    disk_hits: int = 0
    #: Failed store write-throughs of the attached model cache.
    spill_failures: int = 0

    @property
    def mean_batch_fill(self) -> float:
        """Average queries per model call (batch efficiency)."""
        return self.served / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        """The pane as JSON-ready plain dicts (stable historical keys)."""
        from dataclasses import asdict

        return asdict(self)


class ServingFrontend:
    """Event-loop front end: deadline flush, backpressure, timeouts.

    Parameters
    ----------
    estimator:
        A fitted :class:`repro.serving.Estimator`; served through a
        privately owned :class:`MicroBatcher`.  Mutually exclusive with
        ``executor`` — pass exactly one.
    executor:
        Alternative batch execution engine: any object exposing
        ``predict(signals) -> Prediction``, ``n_batches``, and
        ``close()``.  The front end owns it — ``close()`` is called at
        shutdown (see :class:`repro.serving.workers.WorkerPoolExecutor`
        for the multi-process tier).
    batch_size:
        Maximum queries per vectorized model call; a full batch drains
        immediately, a partial one when its oldest request's deadline
        expires.
    deadline_ms:
        Default per-request latency budget before a partial batch is
        forced out; ``submit`` can override per request.
    timeout_ms:
        Default per-request expiry: a request still *queued* this long
        after submission fails with :class:`RequestTimeoutError`
        instead of being served.  ``None`` (default) disables expiry.
    max_pending:
        Bound on queued (not yet served) requests — the backpressure
        limit.
    overflow:
        Legacy policy at the bound: ``"block"`` makes ``submit`` wait
        for the worker to drain, ``"reject"`` raises
        :class:`QueueFullError`.  Shorthand for the corresponding
        ``admission`` policy; ignored when ``admission`` is given.
    admission:
        Pluggable :class:`~repro.serving.resilience.AdmissionPolicy`
        consulted on every ``submit`` — e.g.
        :class:`~repro.serving.resilience.FairShedAdmission` for
        per-tenant weighted-fair load shedding with deadline-aware
        early reject.  Default: derived from ``overflow``.
    cache:
        Optional :class:`~repro.serving.ModelCache` whose
        ``disk_hits`` / ``spill_failures`` counters surface in
        :meth:`stats` (observability only; the front end never touches
        it otherwise).
    clock:
        Monotonic ``() -> seconds`` callable; defaults to
        ``time.monotonic``.  Inject a fake for deterministic tests.
    start:
        When True (default) a daemon worker thread drives the queue.
        ``start=False`` creates a *manual* front end: no thread, the
        caller drives it with :meth:`pump` (pairs with a fake clock).
    """

    def __init__(
        self,
        estimator: "Estimator | None" = None,
        batch_size: int = 64,
        deadline_ms: float = 50.0,
        timeout_ms: "float | None" = None,
        max_pending: int = 1024,
        overflow: str = "block",
        clock=None,
        start: bool = True,
        executor=None,
        admission: "AdmissionPolicy | None" = None,
        cache=None,
    ):
        if (estimator is None) == (executor is None):
            raise ValueError(
                "pass exactly one of estimator (thread path) or executor"
            )
        if deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        if timeout_ms is not None and timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be > 0, got {timeout_ms}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if overflow not in ("block", "reject"):
            raise ValueError(
                f"overflow must be 'block' or 'reject', got {overflow!r}"
            )
        if admission is None:
            admission = (
                BlockAdmission() if overflow == "block" else RejectAdmission()
            )
        elif not isinstance(admission, AdmissionPolicy):
            raise ValueError(
                "admission must be an AdmissionPolicy, got "
                f"{type(admission).__name__}"
            )
        if executor is None:
            # MicroBatcher validates batch_size; the front end is its
            # single writer (see module docstring)
            self.batcher = MicroBatcher(estimator, batch_size=batch_size)
            self.batch_size = self.batcher.batch_size
            self._executor = _BatcherExecutor(self.batcher)
        else:
            if int(batch_size) < 1:
                raise ValueError(f"batch_size must be >= 1, got {batch_size}")
            self.batcher = None
            self.batch_size = int(batch_size)
            self._executor = executor
        self.deadline_ms = float(deadline_ms)
        self.timeout_ms = None if timeout_ms is None else float(timeout_ms)
        self.max_pending = int(max_pending)
        self.overflow = overflow
        self.admission = admission
        self.cache = cache
        self._clock = time.monotonic if clock is None else clock
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)   # worker waits here
        self._space = threading.Condition(self._lock)  # blocked producers
        # shared by all tickets; its own lock, always acquired AFTER
        # self._lock (never the reverse), notified once per batch
        self._resolution = threading.Condition()
        self._queue: "deque[_Request]" = deque()
        # cached horizons, kept O(1) on submit and recomputed once per
        # drain cycle: the earliest due time triggers a batch take (a
        # younger request with a shorter per-request deadline can come
        # due before the queue head — the FIFO prefix rides out with
        # it), the earliest expiry only wakes the worker to expire
        self._earliest_due: "float | None" = None
        self._earliest_expiry: "float | None" = None
        self._closed = False
        self.n_submitted = 0
        self.n_served = 0
        self.n_timeouts = 0
        self.n_rejected = 0
        self.n_cancelled = 0
        self.n_shed = 0
        self._tenant_pending: "dict[str, int]" = {}
        self._tenant_stats: "dict[str, dict[str, int]]" = {}
        self._service_ewma_s: "float | None" = None
        self._admission_view = _AdmissionView(self)
        self._worker: "threading.Thread | None" = None
        if start:
            self._worker = threading.Thread(
                target=self._worker_loop, name="serving-frontend", daemon=True
            )
            self._worker.start()

    # ------------------------------------------------------------- producers
    def _tenant_counters_locked(self, tenant: str) -> "dict[str, int]":
        counters = self._tenant_stats.get(tenant)
        if counters is None:
            counters = {"admitted": 0, "shed": 0}
            self._tenant_stats[tenant] = counters
        return counters

    def _drop_tenant_pending_locked(self, tenant: str) -> None:
        remaining = self._tenant_pending.get(tenant, 0) - 1
        if remaining > 0:
            self._tenant_pending[tenant] = remaining
        else:
            self._tenant_pending.pop(tenant, None)

    def _evict_locked(self, victim: _Request) -> None:
        """Shed a queued request so the admission policy can reuse its slot."""
        try:
            self._queue.remove(victim)
        except ValueError:  # raced out of the queue already
            return
        self._drop_tenant_pending_locked(victim.tenant)
        self.n_shed += 1
        self._tenant_counters_locked(victim.tenant)["shed"] += 1
        victim.ticket._fail(
            ShedError(
                "request evicted by the admission policy to admit a "
                "lighter tenant"
            ),
            self._clock(),
        )
        self._recompute_horizons_locked()
        self._notify_resolved()

    def submit(
        self,
        signal: np.ndarray,
        deadline_ms: "float | None" = None,
        timeout_ms: "float | None" = None,
        tenant: str = "default",
    ) -> AsyncTicket:
        """Enqueue one raw RSSI row; returns immediately with a ticket.

        ``deadline_ms`` / ``timeout_ms`` override the front end's
        defaults for this request only; ``tenant`` is the fairness
        label (radio map / backend key) the admission policy sheds by.
        Raises :class:`FrontendClosedError` after :meth:`close`, and —
        per the admission policy — either waits for space at the
        backpressure bound (``BlockAdmission``) or refuses the request
        with :class:`ShedError` (a :class:`QueueFullError` subclass).
        """
        signal = np.asarray(signal, dtype=float)
        if signal.ndim != 1:
            raise ValueError(
                f"submit takes a single (W,) signal row, got shape {signal.shape}"
            )
        deadline = (self.deadline_ms if deadline_ms is None else deadline_ms) / 1e3
        if deadline <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        timeout = self.timeout_ms if timeout_ms is None else timeout_ms
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout_ms must be > 0, got {timeout_ms}")
        timeout_s = None if timeout is None else timeout / 1e3
        with self._lock:
            if self._closed:
                raise FrontendClosedError("submit on a closed front end")
            while True:
                verb, victim = self.admission.decide(
                    self._admission_view, tenant, timeout_s
                )
                if verb == ADMIT:
                    break
                if verb == EVICT:
                    self._evict_locked(victim)
                    break  # the arrival takes the victim's slot
                if verb == SHED:
                    self.n_rejected += 1
                    self.n_shed += 1
                    self._tenant_counters_locked(tenant)["shed"] += 1
                    raise ShedError(
                        f"request shed by {type(self.admission).__name__}: "
                        f"{len(self._queue)} requests pending "
                        f"(max_pending={self.max_pending})"
                    )
                if verb != BLOCK:
                    raise RuntimeError(
                        f"admission policy returned unknown verb {verb!r}"
                    )
                while len(self._queue) >= self.max_pending and not self._closed:
                    self._space.wait()
                if self._closed:
                    raise FrontendClosedError("front end closed while blocked")
                # space opened up (or the policy blocked below the
                # bound); ask it again against the fresh queue state
            now = self._clock()
            ticket = AsyncTicket(self._resolution, submitted_at=now)
            due = now + deadline
            expires = None if timeout is None else now + timeout / 1e3
            self._queue.append(
                _Request(signal, ticket, due=due, expires=expires, tenant=tenant)
            )
            self._tenant_pending[tenant] = self._tenant_pending.get(tenant, 0) + 1
            self._tenant_counters_locked(tenant)["admitted"] += 1
            if expires is not None and (
                self._earliest_expiry is None or expires < self._earliest_expiry
            ):
                self._earliest_expiry = expires
            self.n_submitted += 1
            # wake the worker only when its schedule actually changes: a
            # batch just filled, or this request's deadline/timeout lands
            # before the worker's current wake timer
            wake = len(self._queue) >= self.batch_size
            if self._earliest_due is None or due < self._earliest_due:
                self._earliest_due = due
                wake = True
            if expires is not None and expires == self._earliest_expiry:
                wake = True
            if wake:
                self._work.notify()
        return ticket

    # ---------------------------------------------------------- drain logic
    def _notify_resolved(self) -> None:
        """Wake every thread blocked in ``AsyncTicket.result``."""
        with self._resolution:
            self._resolution.notify_all()

    def _recompute_horizons_locked(self) -> None:
        """Rebuild the cached due/expiry horizons after the queue shrank."""
        self._earliest_due = None
        self._earliest_expiry = None
        for request in self._queue:
            if self._earliest_due is None or request.due < self._earliest_due:
                self._earliest_due = request.due
            if request.expires is not None and (
                self._earliest_expiry is None
                or request.expires < self._earliest_expiry
            ):
                self._earliest_expiry = request.expires

    def _expire_locked(self, now: float) -> None:
        """Fail every queued request whose timeout has elapsed."""
        if self._earliest_expiry is None or now < self._earliest_expiry:
            return
        kept = deque()
        for request in self._queue:
            if request.expires is not None and now >= request.expires:
                self.n_timeouts += 1
                self._drop_tenant_pending_locked(request.tenant)
                request.ticket._fail(
                    RequestTimeoutError("request timed out before it was served"),
                    now,
                )
            else:
                kept.append(request)
        self._queue = kept
        self._recompute_horizons_locked()
        # expiry frees queue slots just like a batch take does: without
        # this, producers blocked at max_pending would hang until an
        # unrelated drain happened to notify them
        self._space.notify_all()
        self._notify_resolved()

    def _take_batch_locked(self, now: float) -> "list[_Request]":
        """Pop the next due batch (empty list when nothing is due yet).

        A batch is due when it is full, when the front end is closed
        (drain), or when *any* queued request's deadline has passed —
        the queue drains FIFO, so an overdue request pulls the whole
        prefix ahead of it into the batch.
        """
        self._expire_locked(now)
        if not self._queue:
            return []
        due = (
            self._closed
            or len(self._queue) >= self.batch_size
            or (self._earliest_due is not None and now >= self._earliest_due)
        )
        if not due:
            return []
        batch = [
            self._queue.popleft()
            for _ in range(min(self.batch_size, len(self._queue)))
        ]
        for request in batch:
            self._drop_tenant_pending_locked(request.tenant)
        self._recompute_horizons_locked()
        return batch

    def _next_wake_locked(self, now: float) -> "float | None":
        """Seconds until the next deadline/timeout event (None = idle)."""
        if not self._queue:
            return None
        horizon = self._earliest_due
        if self._earliest_expiry is not None and self._earliest_expiry < horizon:
            horizon = self._earliest_expiry
        return max(horizon - now, 0.0)

    def _serve_batch(self, batch: "list[_Request]") -> None:
        """Run one batch through the executor (single-writer path).

        The first request fixes the batch's signal width — a later
        request that disagrees fails alone (same contract and message
        the :class:`MicroBatcher` enforces); an executor error fails
        the whole batch, and later batches still serve.
        """
        accepted: "list[_Request]" = []
        width: "int | None" = None
        for request in batch:
            if width is None:
                width = request.signal.shape[0]
            if request.signal.shape[0] != width:
                request.ticket._fail(
                    ValueError(
                        f"signal width {request.signal.shape[0]} does not "
                        f"match the pending batch width {width}"
                    ),
                    self._clock(),
                )
                continue
            accepted.append(request)
        if not accepted:
            self._notify_resolved()
            return
        signals = np.vstack([request.signal for request in accepted])
        started = self._clock()
        try:
            prediction = self._executor.predict(signals)
        except Exception as error:
            now = self._clock()
            for request in accepted:
                request.ticket._fail(error, now)
            self._notify_resolved()
            return
        now = self._clock()
        for i, request in enumerate(accepted):
            request.ticket._resolve(prediction.take([i]), now)
        self._notify_resolved()
        per_request = max(now - started, 0.0) / len(accepted)
        with self._lock:
            self.n_served += len(accepted)
            # EWMA per-request service time feeds the admission policy's
            # deadline-aware early reject (alpha=0.2: smooth but live)
            if self._service_ewma_s is None:
                self._service_ewma_s = per_request
            else:
                self._service_ewma_s += 0.2 * (per_request - self._service_ewma_s)

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while True:
                    if self._closed and not self._queue:
                        return
                    batch = self._take_batch_locked(self._clock())
                    if batch:
                        break
                    self._work.wait(timeout=self._next_wake_locked(self._clock()))
                self._space.notify_all()
            self._serve_batch(batch)

    # ------------------------------------------------------------ manual mode
    def pump(self) -> int:
        """Run one drain cycle against the current clock (manual mode).

        Expires timed-out requests, then — if a batch is due (full, or
        its oldest request's deadline has passed) — serves it.  Returns
        the number of requests taken this cycle.  Only valid on a front
        end built with ``start=False``; threaded front ends drain
        themselves.
        """
        if self._worker is not None:
            raise RuntimeError(
                "pump() is for manual front ends (start=False); "
                "this one has a worker thread"
            )
        with self._lock:
            batch = self._take_batch_locked(self._clock())
            if batch:
                self._space.notify_all()
        if not batch:
            return 0
        self._serve_batch(batch)
        return len(batch)

    # --------------------------------------------------------------- shutdown
    def close(self, drain: bool = True) -> None:
        """Shut down; every outstanding ticket is resolved on return.

        ``drain=True`` serves all queued requests (deadlines no longer
        apply — everything flushes immediately, in FIFO batches);
        ``drain=False`` cancels them with :class:`FrontendClosedError`.
        Idempotent; subsequent :meth:`submit` calls raise
        :class:`FrontendClosedError`.
        """
        with self._lock:
            if not self._closed:
                self._closed = True
                if not drain:
                    now = self._clock()
                    cancelled = bool(self._queue)
                    while self._queue:
                        request = self._queue.popleft()
                        self.n_cancelled += 1
                        request.ticket._fail(
                            FrontendClosedError("cancelled at shutdown"), now
                        )
                    self._tenant_pending.clear()
                    self._earliest_due = None
                    self._earliest_expiry = None
                    if cancelled:
                        self._notify_resolved()
            self._work.notify_all()
            self._space.notify_all()
        # never swap _worker out: concurrent close() calls must all join
        # the same thread (join is idempotent), not race one into the
        # manual-drain branch alongside a still-running worker
        if self._worker is not None:
            self._worker.join()
        else:
            while True:
                with self._lock:
                    batch = self._take_batch_locked(self._clock())
                if not batch:
                    break
                self._serve_batch(batch)
        # the front end owns its executor (worker pools tear down their
        # processes here); both built-in executors close idempotently
        self._executor.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def n_pending(self) -> int:
        """Requests queued but not yet handed to the model."""
        with self._lock:
            return len(self._queue)

    def stats(self) -> FrontendStats:
        """Current lifecycle counters (see :class:`FrontendStats`).

        Besides the front end's own counters this duck-types into the
        executor and the attached cache for the degradation pane:
        ``respawns`` (a worker pool behind the executor),
        ``breaker_state`` / ``failovers`` (a
        :class:`~repro.serving.resilience.FallbackExecutor`), and
        ``disk_hits`` / ``spill_failures`` (the ``cache=``).
        """
        with self._lock:
            executor = self._executor
            breaker = getattr(executor, "breaker", None)
            respawns = getattr(executor, "respawns", None)
            if respawns is None:
                pool = getattr(executor, "pool", None)
                respawns = getattr(pool, "respawns", 0)
            tenants = {
                tenant: TenantPane(
                    pending=self._tenant_pending.get(tenant, 0),
                    admitted=counters["admitted"],
                    shed=counters["shed"],
                )
                for tenant, counters in self._tenant_stats.items()
            }
            ewma = self._service_ewma_s
            return FrontendStats(
                submitted=self.n_submitted,
                served=self.n_served,
                timeouts=self.n_timeouts,
                rejected=self.n_rejected,
                cancelled=self.n_cancelled,
                pending=len(self._queue),
                batches=executor.n_batches,
                shed=self.n_shed,
                tenants=tenants,
                service_estimate_ms=None if ewma is None else ewma * 1e3,
                respawns=int(respawns or 0),
                breaker_state=None if breaker is None else breaker.state,
                failovers=int(getattr(executor, "n_failovers", 0)),
                disk_hits=int(getattr(self.cache, "disk_hits", 0) or 0),
                spill_failures=int(
                    getattr(self.cache, "spill_failures", 0) or 0
                ),
            )

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)
