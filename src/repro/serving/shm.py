"""Shared-memory SPSC ring buffers for the multi-process serving tier.

The process-backed execution tier (:mod:`repro.serving.workers`) moves
query matrices to shard workers and per-shard top-k candidates back
without pickling anything on the hot path.  This module is the
transport: one :class:`WorkerChannel` per worker, a single
``multiprocessing.shared_memory`` segment holding

* a **control block** — stop flag, heartbeat counter, ready flag — the
  parent's crash-detection and shutdown signal surface;
* a **query ring** (parent → worker): per-slot float64 payload of up to
  ``max_rows`` query rows plus an int64 header ``(batch_id, n_rows,
  k)``;
* a **result ring** (worker → parent): per-slot float64 distances and
  int64 global indices, ``(max_rows, k)`` each, same header layout.

Each ring is single-producer/single-consumer with monotonically
increasing ``head``/``tail`` counters (the slot in use is ``counter %
n_slots``).  The producer writes the payload and header *first* and
publishes by bumping ``head`` last; the consumer copies the slot out
and releases it by bumping ``tail`` last.  Every push stamps the slot
with its ``batch_id``, so a consumer can discard stale slots left over
from a batch that was re-dispatched after a worker crash — buffer reuse
can never surface an old batch's rows as a fresh result.  Every push
also stamps a payload **checksum** into the header's fourth word; a pop
whose slot fails verification returns :data:`CORRUPT_SLOT` instead of
corrupted rows, and the caller re-dispatches.

Cross-process visibility relies on each int64 counter store being a
single aligned write (numpy scalar assignment) and on the payload
stores being issued before the ``head`` publish; the Python-level
interpreter overhead between those statements dwarfs any store-buffer
window on the platforms the repo targets.

Blocking variants (:meth:`_Ring.push` / :meth:`_Ring.pop`) spin with a
short backoff sleep — latencies here are sub-millisecond, a condition
variable across processes would cost more than it saves — and honor an
``abort`` predicate so a dead peer never strands the caller.

On Python < 3.13 attaching a :class:`~multiprocessing.shared_memory.
SharedMemory` segment registers it with the ``resource_tracker``, which
unlinks it when *any* attached process exits; a worker detaching must
therefore unregister its attachment (:func:`attach_segment`) so the
parent — the segment's owner — controls the lifetime.
"""

from __future__ import annotations

import time
from multiprocessing import shared_memory

import numpy as np

#: int64 words in the control block (indices below; rest reserved).
_CTRL_WORDS = 8
CTRL_STOP = 0       #: parent sets 1 to request a clean worker exit
CTRL_HEARTBEAT = 1  #: worker increments every serve-loop iteration
CTRL_READY = 2      #: worker sets 1 once warm-started, -1 on a failed start

#: int64 words in a slot header: (batch_id, n_rows, extra, checksum).
_HEADER_WORDS = 4

_INT64 = np.dtype(np.int64)

#: Sentinel returned by ``try_pop``/``pop`` when a published slot fails
#: its payload checksum — the transport detected corruption (cosmic-ray
#: class, or a fault injector) instead of handing back silently wrong
#: rows.  The slot is already released; the caller decides whether to
#: re-dispatch.
CORRUPT_SLOT = object()

_CHECKSUM_MASK = 0x7FFFFFFFFFFFFFFF


def _slot_checksum(batch_id: int, n_rows: int, extra: int, arrays) -> int:
    """Cheap order-sensitive digest of one slot's header + payloads.

    Payload bytes are folded as int64 sums (both ring dtypes are 8-byte,
    so the reinterpreting view is exact and allocation-free); int64
    wraparound is deterministic on both sides of the ring, which is all
    a corruption check needs.  Not cryptographic — it guards against
    bit rot and fault injection, not adversaries.
    """
    total = (batch_id * 1000003 + n_rows * 8191 + extra * 131) & _CHECKSUM_MASK
    for array in arrays:
        if array.size:
            with np.errstate(over="ignore"):
                folded = int(array.view(_INT64).sum(dtype=np.int64))
            total ^= folded & _CHECKSUM_MASK
    return total


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here (probed once).

    Containers occasionally mount ``/dev/shm`` noexec/absent or cap it
    at zero; the serving tier falls back to the thread path rather than
    crash, so the probe failure mode is graceful degradation.
    """
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.close()
            segment.unlink()
            _SHM_AVAILABLE = True
        except Exception:
            _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


_SHM_AVAILABLE: "bool | None" = None


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    The creating process (the pool parent) owns unlink; Python < 3.13
    has no ``track=False``, so without intervention the resource
    tracker would adopt every attachment too and tear the segment down
    when *any* attached process exits.  Registering and unregistering
    after the fact is also wrong — the tracker cache is a set keyed by
    name, so the worker's unregister would erase the parent's
    registration.  Suppress the child-side registration instead.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def register(name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original_register(name, rtype)

    resource_tracker.register = register
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class RingSpec:
    """Fixed geometry shared by both rings of one worker channel."""

    __slots__ = ("n_slots", "max_rows", "width", "k")

    def __init__(self, n_slots: int, max_rows: int, width: int, k: int):
        for field, value in (
            ("n_slots", n_slots), ("max_rows", max_rows),
            ("width", width), ("k", k),
        ):
            if int(value) < 1:
                raise ValueError(f"{field} must be >= 1, got {value}")
        self.n_slots = int(n_slots)
        self.max_rows = int(max_rows)
        self.width = int(width)
        self.k = int(k)

    def as_tuple(self) -> "tuple[int, int, int, int]":
        """Picklable form handed to spawned workers."""
        return (self.n_slots, self.max_rows, self.width, self.k)


class _Ring:
    """One SPSC ring mapped over a slice of a shared buffer.

    ``payloads`` describes the per-slot arrays as ``(dtype,
    trailing_shape)`` pairs; every payload slot holds ``max_rows`` rows
    of that trailing shape and pushes fill the first ``n_rows`` of each.
    """

    def __init__(self, buffer, offset: int, n_slots: int, max_rows: int,
                 payloads):
        self.n_slots = int(n_slots)
        self._counters = np.ndarray(
            (2,), dtype=_INT64, buffer=buffer, offset=offset
        )  # [head, tail]
        offset += self._counters.nbytes
        self._headers = np.ndarray(
            (n_slots, _HEADER_WORDS), dtype=_INT64, buffer=buffer,
            offset=offset,
        )
        offset += self._headers.nbytes
        self._payloads = []
        for dtype, trailing in payloads:
            array = np.ndarray(
                (n_slots, max_rows) + tuple(trailing), dtype=dtype,
                buffer=buffer, offset=offset,
            )
            offset += array.nbytes
            self._payloads.append(array)
        self.end = offset

    @staticmethod
    def nbytes(n_slots: int, max_rows: int, payloads) -> int:
        total = 2 * _INT64.itemsize
        total += n_slots * _HEADER_WORDS * _INT64.itemsize
        for dtype, trailing in payloads:
            per_row = int(np.prod(trailing, dtype=np.int64)) if trailing else 1
            total += n_slots * max_rows * per_row * np.dtype(dtype).itemsize
        return total

    def reset(self) -> None:
        """Zero the ring (only safe with no live peer on the other side)."""
        self._counters[:] = 0
        self._headers[:] = 0

    @property
    def depth(self) -> int:
        return int(self._counters[0]) - int(self._counters[1])

    def try_push(self, batch_id: int, n_rows: int, *arrays, extra: int = 0):
        """Publish one slot; False when the ring is full.

        ``arrays`` must match the ring's payloads, each ``(n_rows,
        ...)``; only the first ``n_rows`` rows of the slot are written.
        """
        head = int(self._counters[0])
        if head - int(self._counters[1]) >= self.n_slots:
            return False
        slot = head % self.n_slots
        for payload, array in zip(self._payloads, arrays):
            payload[slot, :n_rows] = array
        self._headers[slot, 0] = batch_id
        self._headers[slot, 1] = n_rows
        self._headers[slot, 2] = extra
        # digest what actually landed in shared memory, not the source
        # arrays (assignment may have cast them)
        self._headers[slot, 3] = _slot_checksum(
            batch_id, n_rows, extra,
            [payload[slot, :n_rows] for payload in self._payloads],
        )
        self._counters[0] = head + 1  # publish last
        return True

    def try_pop(self):
        """``(batch_id, n_rows, extra, *copies)``, None when empty, or
        :data:`CORRUPT_SLOT` when the slot fails its checksum (the slot
        is released either way)."""
        tail = int(self._counters[1])
        if int(self._counters[0]) - tail <= 0:
            return None
        slot = tail % self.n_slots
        batch_id = int(self._headers[slot, 0])
        n_rows = int(self._headers[slot, 1])
        extra = int(self._headers[slot, 2])
        stored = int(self._headers[slot, 3])
        copies = tuple(payload[slot, :n_rows].copy() for payload in self._payloads)
        self._counters[1] = tail + 1  # release the slot last
        if stored != _slot_checksum(batch_id, n_rows, extra, copies):
            return CORRUPT_SLOT
        return (batch_id, n_rows, extra) + copies

    def push(self, batch_id, n_rows, *arrays, extra=0, timeout=None,
             abort=None) -> bool:
        """Blocking :meth:`try_push`; False on timeout or abort."""
        return _spin(
            lambda: self.try_push(batch_id, n_rows, *arrays, extra=extra),
            lambda done: done,
            timeout=timeout,
            abort=abort,
        )

    def pop(self, timeout=None, abort=None):
        """Blocking :meth:`try_pop`; None on timeout or abort."""
        return _spin(
            self.try_pop,
            lambda item: item is not None,
            timeout=timeout,
            abort=abort,
        )


def _spin(attempt, succeeded, timeout=None, abort=None):
    """Retry ``attempt`` with backoff until success, timeout, or abort."""
    deadline = None if timeout is None else time.monotonic() + timeout
    pause = 0.0
    while True:
        result = attempt()
        if succeeded(result):
            return result
        if abort is not None and abort():
            return result
        if deadline is not None and time.monotonic() >= deadline:
            return result
        time.sleep(pause)
        pause = min(pause + 5e-5, 1e-3)


class WorkerChannel:
    """One worker's shared segment: control block + the two rings.

    The parent constructs with ``create=True`` (owns ``unlink``); the
    worker attaches by name.  Query payload: one float64 ``(max_rows,
    width)`` matrix.  Result payload: float64 distances and int64
    global indices, ``(max_rows, k)`` each.
    """

    def __init__(self, spec: RingSpec, name: "str | None" = None,
                 create: bool = False):
        self.spec = spec
        query_payloads = [(np.float64, (spec.width,))]
        result_payloads = [(np.float64, (spec.k,)), (np.int64, (spec.k,))]
        ctrl_bytes = _CTRL_WORDS * _INT64.itemsize
        total = (
            ctrl_bytes
            + _Ring.nbytes(spec.n_slots, spec.max_rows, query_payloads)
            + _Ring.nbytes(spec.n_slots, spec.max_rows, result_payloads)
        )
        if create:
            self.segment = shared_memory.SharedMemory(create=True, size=total)
        else:
            if name is None:
                raise ValueError("attaching a channel requires its name")
            self.segment = attach_segment(name)
        self._owner = bool(create)
        buffer = self.segment.buf
        self.control = np.ndarray(
            (_CTRL_WORDS,), dtype=_INT64, buffer=buffer
        )
        self.queries = _Ring(
            buffer, ctrl_bytes, spec.n_slots, spec.max_rows, query_payloads
        )
        self.results = _Ring(
            buffer, self.queries.end, spec.n_slots, spec.max_rows,
            result_payloads,
        )
        if create:
            self.reset()

    @property
    def name(self) -> str:
        return self.segment.name

    def reset(self) -> None:
        """Zero control words and both rings (pre-spawn / post-crash)."""
        self.control[:] = 0
        self.queries.reset()
        self.results.reset()

    # ------------------------------------------------------------- control
    def request_stop(self) -> None:
        self.control[CTRL_STOP] = 1

    def stop_requested(self) -> bool:
        return bool(self.control[CTRL_STOP])

    def bump_heartbeat(self) -> None:
        self.control[CTRL_HEARTBEAT] += 1

    def heartbeat(self) -> int:
        return int(self.control[CTRL_HEARTBEAT])

    def set_ready(self, ok: bool = True) -> None:
        self.control[CTRL_READY] = 1 if ok else -1

    def ready_state(self) -> int:
        """0 = warming up, 1 = serving, -1 = failed to start."""
        return int(self.control[CTRL_READY])

    # ------------------------------------------------------------ lifetime
    def close(self) -> None:
        """Drop this process's mapping (views first, then the segment)."""
        self.control = None
        self.queries = None
        self.results = None
        try:
            self.segment.close()
        except BufferError:
            # a stray numpy view still pins the buffer; the mapping dies
            # with the process, and the owner's unlink is unaffected
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (owner only; idempotent)."""
        if not self._owner:
            return
        try:
            self.segment.unlink()
        except FileNotFoundError:
            pass
