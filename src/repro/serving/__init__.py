"""repro.serving — batched, cached model serving behind one protocol.

The production-facing seam of the repo.  Three pieces compose:

``registry``
    :class:`Estimator` protocol (``fit(dataset)`` /
    ``predict_batch(raw_signals) -> Prediction``) plus a name-keyed
    registry adapting every localization backend — ``"knn"``,
    ``"noble"``, ``"cnnloc"``, ``"knn-regressor"``, ``"forest"``.
``cache``
    :class:`ModelCache`, an LRU of fitted models keyed by dataset
    fingerprint + hyperparameters, so repeated requests against the
    same radio map never re-fit or re-index.
``batcher``
    :class:`MicroBatcher`, which accumulates single-query requests into
    fixed-size micro-batches served by one vectorized model call.

Typical serving loop::

    from repro.serving import MicroBatcher, ModelCache

    cache = ModelCache(capacity=8)
    estimator = cache.get_or_fit("knn", radio_map, k=3)
    batcher = MicroBatcher(estimator, batch_size=64)
    tickets = [batcher.submit(scan) for scan in incoming]
    batcher.flush()
    positions = [t.result().coordinates[0] for t in tickets]

``python -m repro.cli serve-bench`` benchmarks this path against naive
per-query serving.
"""

from repro.serving.batcher import MicroBatcher, Ticket
from repro.serving.cache import CacheStats, ModelCache, dataset_fingerprint
from repro.serving.registry import (
    Estimator,
    Prediction,
    available,
    concatenate,
    create,
    get,
    register,
)

__all__ = [
    "Estimator",
    "Prediction",
    "available",
    "concatenate",
    "create",
    "get",
    "register",
    "ModelCache",
    "CacheStats",
    "dataset_fingerprint",
    "MicroBatcher",
    "Ticket",
]
