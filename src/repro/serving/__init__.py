"""repro.serving — batched, cached, deadline-driven model serving.

The production-facing seam of the repo.  Four pieces compose:

``registry``
    :class:`Estimator` protocol (``fit(dataset)`` /
    ``predict_batch(raw_signals) -> Prediction``) plus a name-keyed
    registry adapting every localization backend — ``"knn"``,
    ``"noble"``, ``"cnnloc"``, ``"knn-regressor"``, ``"forest"``,
    ``"embed-knn"`` (kNN in a learned embedding space), and the
    multi-backend ``"ensemble"`` (NObLe primary with a kNN fallback
    for out-of-distribution scans).
``pipeline``
    :class:`FeaturePipeline`, the composable feature-space seam the
    kNN-family backends share: one validated embedder → binner →
    sharded-index chain (``transform=``), with the legacy
    ``shards``/``partitioner``/``quantize_bins``/``dtype`` kwargs kept
    working as shims and every stage absent-by-default so existing
    cache keys and on-disk artifacts resolve unchanged.
``cache``
    :class:`ModelCache`, a thread-safe LRU of fitted models keyed by
    dataset fingerprint + hyperparameters, with a per-key in-flight
    guard so a stampede of identical misses fits exactly once.
``batcher``
    :class:`MicroBatcher`, which accumulates single-query requests into
    fixed-size micro-batches served by one vectorized model call
    (internally locked for concurrent producers).
``frontend``
    :class:`ServingFrontend`, the asynchronous front end: a worker
    thread drains the batcher with deadline-based flush (a partial
    batch goes out when its oldest request's latency budget expires),
    bounded-queue backpressure (``block`` or ``reject``), per-request
    timeouts, and deterministic drain-or-cancel shutdown.
``store`` (re-exported from :mod:`repro.core.persistence`)
    :class:`ModelStore`, the persistent spill tier: versioned on-disk
    artifacts (``save_estimator``/``load_estimator``) keyed like the
    cache, so ``ModelCache(store=ModelStore(dir))`` warm-starts a
    restarted process from disk instead of re-fitting every model.
``workers`` / ``shm``
    The multi-process execution tier: :class:`ShardWorkerPool` scatters
    each micro-batch to N shard-worker processes over shared-memory
    ring buffers and merges their per-shard top-k exactly; plugged into
    the front end via ``executor=`` (:class:`WorkerPoolExecutor`) or
    all at once with :func:`make_worker_frontend`, which falls back to
    the thread path when ``workers=0`` or shared memory is unavailable.
``sessions``
    The stateful streaming tier: :class:`SessionManager` owns one
    :class:`TrackingSession` per user (any :class:`SessionTracker`
    engine — PDR, map-matching particle filter, or NObLe fingerprint
    snapping), micro-batching concurrent ticks *across users per time
    step* so every served estimate stays bitwise equal to the user's
    solo offline trajectory (:func:`solo_trajectory` is the oracle).
    Sessions checkpoint through the :class:`ModelStore`
    (``repro-session/1`` artifacts, periodic + on-evict + shutdown),
    idle-TTL evict, and warm-restore on the next tick after a restart
    — with an in-flight guard so a restore stampede loads exactly
    once.  :class:`TrackingFrontend` puts the deadline front end on
    top: ``submit(user_id, imu=segment)`` returns a ticket for that
    user's next position.  ``python -m repro.cli track-bench`` proves
    throughput, oracle parity, and restart recovery.
``resilience`` / ``faults``
    The self-protection layer and the chaos harness that proves it:
    pluggable :class:`AdmissionPolicy` load shedding on the front end
    (:class:`FairShedAdmission` — per-tenant weighted-fair shedding
    with deadline-aware early reject), :class:`CircuitBreaker` +
    :class:`FallbackExecutor` degrading an unhealthy worker tier to the
    thread path (and probing it back), :class:`RetryPolicy` for
    transient store/dispatch failures, and a seeded
    :class:`FaultInjector` (worker kills, heartbeat stalls, shm slot
    and store-artifact corruption) driving ``python -m repro.cli
    chaos-bench``.

Spawn-vs-fork policy
--------------------
Worker processes are started with the **spawn** method, never fork:

* a forked child inherits every lock, condition variable, and
  in-flight event of the parent at the instant of the fork — with the
  owning threads gone, any of them can deadlock the child.  A spawned
  worker begins from a clean interpreter and warm-starts its model
  from the :class:`ModelStore` artifact instead (milliseconds, since
  PR 5 artifacts carry the finished shard state).
* spawn keeps worker memory disjoint by construction, so the only
  shared state is the explicitly designed shared-memory channel of
  :mod:`repro.serving.shm`.

Code that *does* fork around serving objects (e.g. a preforking web
server holding a :class:`ModelCache`) is still protected where it
matters: the cache registers an ``os.register_at_fork`` hook that
gives children a fresh lock and in-flight table.  Forking a live
:class:`ServingFrontend` or :class:`ShardWorkerPool` is not supported
— create them after the fork.

Typical synchronous loop::

    from repro.serving import MicroBatcher, ModelCache

    cache = ModelCache(capacity=8)
    estimator = cache.get_or_fit("knn", radio_map, k=3)
    batcher = MicroBatcher(estimator, batch_size=64)
    tickets = [batcher.submit(scan) for scan in incoming]
    batcher.flush()
    positions = [t.result().coordinates[0] for t in tickets]

Asynchronous serving under a 50 ms latency budget::

    from repro.serving import ServingFrontend

    with ServingFrontend(estimator, batch_size=64, deadline_ms=50) as fe:
        tickets = [fe.submit(scan) for scan in incoming]
        positions = [t.result().coordinates[0] for t in tickets]

``python -m repro.cli serve-bench`` benchmarks the synchronous path;
``serve-bench --async`` sweeps deadline vs throughput through the
front end — and, with ``--workers N``, through the process-backed
tier — and writes the ``BENCH_serve.json`` trajectory artifact.
"""

from repro.serving.batcher import MicroBatcher, Ticket
from repro.serving.cache import CacheStats, ModelCache, dataset_fingerprint
from repro.serving.faults import DelayedEstimator, FaultInjector
from repro.serving.frontend import (
    AsyncTicket,
    FrontendClosedError,
    FrontendStats,
    QueueFullError,
    RequestTimeoutError,
    ServingFrontend,
    ShedError,
    TenantPane,
)
from repro.serving.pipeline import PIPELINE_STAGES, FeaturePipeline
from repro.serving.resilience import (
    AdmissionPolicy,
    BlockAdmission,
    CircuitBreaker,
    FairShedAdmission,
    FallbackExecutor,
    RejectAdmission,
    RetryPolicy,
)
from repro.serving.registry import (
    Estimator,
    Prediction,
    available,
    concatenate,
    create,
    get,
    params_key,
    register,
)

from repro.serving.sessions import (
    SESSION_SCHEMA,
    SessionManager,
    SessionStats,
    SessionTracker,
    StreamingNobleTracker,
    StreamingParticleTracker,
    StreamingPDRTracker,
    TrackingFrontend,
    TrackingSession,
    UnknownSessionError,
    solo_trajectory,
)
from repro.serving.shm import shm_available
from repro.serving.workers import (
    ShardWorkerPool,
    WorkerPoolError,
    WorkerPoolExecutor,
    make_worker_frontend,
)

# imported last: persistence pulls in the model stacks and reaches back
# into repro.serving.registry, which the lines above fully initialized
from repro.core.persistence import (  # noqa: E402
    ArtifactError,
    ModelStore,
    load_estimator,
    save_estimator,
)

__all__ = [
    "Estimator",
    "Prediction",
    "available",
    "concatenate",
    "create",
    "get",
    "register",
    "params_key",
    "FeaturePipeline",
    "PIPELINE_STAGES",
    "ModelCache",
    "CacheStats",
    "dataset_fingerprint",
    "ModelStore",
    "ArtifactError",
    "save_estimator",
    "load_estimator",
    "MicroBatcher",
    "Ticket",
    "ServingFrontend",
    "AsyncTicket",
    "FrontendStats",
    "TenantPane",
    "QueueFullError",
    "FrontendClosedError",
    "RequestTimeoutError",
    "ShardWorkerPool",
    "WorkerPoolExecutor",
    "WorkerPoolError",
    "make_worker_frontend",
    "shm_available",
    "ShedError",
    "AdmissionPolicy",
    "BlockAdmission",
    "RejectAdmission",
    "FairShedAdmission",
    "CircuitBreaker",
    "RetryPolicy",
    "FallbackExecutor",
    "DelayedEstimator",
    "FaultInjector",
    "SESSION_SCHEMA",
    "SessionManager",
    "SessionStats",
    "SessionTracker",
    "StreamingNobleTracker",
    "StreamingParticleTracker",
    "StreamingPDRTracker",
    "TrackingFrontend",
    "TrackingSession",
    "UnknownSessionError",
    "solo_trajectory",
]
