"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None``.  ``ensure_rng``
normalizes all three into a ``Generator`` so components never touch the
global numpy random state, which keeps experiments reproducible when run
in any order.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a fixed
        seed, or an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Children are created with ``Generator.spawn`` so that streams do not
    overlap; useful when a simulator hands sub-seeds to its components.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return ensure_rng(seed).spawn(n)
