"""Small argument-validation helpers shared across the library.

These raise early with actionable messages instead of letting numpy
broadcast errors surface deep inside a training loop.
"""

from __future__ import annotations

import numpy as np


def check_2d(array: np.ndarray, name: str = "array", dtype=float) -> np.ndarray:
    """Return ``array`` as a float 2-D ndarray or raise ``ValueError``.

    ``dtype=None`` preserves an existing float32/float64 dtype instead of
    force-casting to float64 (non-float inputs are still promoted) — the
    mode the cache-blocked kernels use so a float32 pipeline stays on
    sgemm end to end.
    """
    if dtype is None:
        out = np.asarray(array)
        if out.dtype not in (np.float32, np.float64):
            out = out.astype(float)
    else:
        out = np.asarray(array, dtype=dtype)
    if out.ndim == 1:
        out = out.reshape(-1, 1)
    if out.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {out.shape}")
    return out


def check_lengths_match(a, b, name_a: str = "X", name_b: str = "y") -> None:
    """Raise ``ValueError`` when two containers disagree on sample count."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, "
            f"got {len(a)} and {len(b)}"
        )


def check_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_fitted(obj, attribute: str) -> None:
    """Raise ``RuntimeError`` when ``obj`` lacks a fitted ``attribute``."""
    if getattr(obj, attribute, None) is None:
        raise RuntimeError(
            f"{type(obj).__name__} is not fitted yet; call fit() before using it"
        )
