"""Shared utilities: seeded randomness and argument validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_2d,
    check_fitted,
    check_lengths_match,
    check_positive,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_2d",
    "check_fitted",
    "check_lengths_match",
    "check_positive",
]
