"""Embedding diagnostics for the §III-C manifold-equivalence argument."""

from repro.analysis.embedding import (
    class_scatter_ratio,
    embedding_distance_correlation,
)

__all__ = ["class_scatter_ratio", "embedding_distance_correlation"]
