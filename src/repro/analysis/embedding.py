"""Quantify the paper's §III-C claim on learned embeddings.

The argument: minimizing NObLe's cross-entropy pulls same-class
penultimate-layer embeddings together (||z_i − z_j|| ≤ 2λ) and pushes
different classes apart — "which resembles the objective function of
MDS without considering the distance in the input space".  Two
diagnostics make that measurable:

* :func:`class_scatter_ratio` — mean within-class over mean
  between-class embedding distance (≪ 1 for a structured embedding);
* :func:`embedding_distance_correlation` — Pearson correlation between
  embedding distances and *output-space* (coordinate) distances over
  random pairs: the MDS-ness of the reconstruction.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_2d, check_lengths_match


def class_scatter_ratio(
    embeddings: np.ndarray,
    labels: np.ndarray,
    max_pairs: int = 20_000,
    rng=None,
) -> float:
    """Mean within-class / mean between-class pairwise embedding distance.

    Sampled over ``max_pairs`` random pairs; returns ``nan`` when one of
    the two pair populations is empty (e.g. all-distinct labels).
    """
    embeddings = check_2d(embeddings, "embeddings")
    labels = np.asarray(labels)
    check_lengths_match(embeddings, labels, "embeddings", "labels")
    rng = ensure_rng(rng)
    n = len(embeddings)
    if n < 2:
        raise ValueError("need at least two embeddings")
    i = rng.integers(0, n, size=max_pairs)
    j = rng.integers(0, n, size=max_pairs)
    keep = i != j
    i, j = i[keep], j[keep]
    distances = np.linalg.norm(embeddings[i] - embeddings[j], axis=1)
    same = labels[i] == labels[j]
    if not same.any() or same.all():
        return float("nan")
    return float(distances[same].mean() / distances[~same].mean())


def embedding_distance_correlation(
    embeddings: np.ndarray,
    coordinates: np.ndarray,
    max_pairs: int = 20_000,
    rng=None,
) -> float:
    """Pearson r between embedding and coordinate pairwise distances."""
    embeddings = check_2d(embeddings, "embeddings")
    coordinates = check_2d(coordinates, "coordinates")
    check_lengths_match(embeddings, coordinates, "embeddings", "coordinates")
    rng = ensure_rng(rng)
    n = len(embeddings)
    if n < 3:
        raise ValueError("need at least three samples")
    i = rng.integers(0, n, size=max_pairs)
    j = rng.integers(0, n, size=max_pairs)
    keep = i != j
    i, j = i[keep], j[keep]
    d_emb = np.linalg.norm(embeddings[i] - embeddings[j], axis=1)
    d_out = np.linalg.norm(coordinates[i] - coordinates[j], axis=1)
    if np.std(d_emb) == 0 or np.std(d_out) == 0:
        return float("nan")
    return float(np.corrcoef(d_emb, d_out)[0, 1])
