"""Shallow-MLP fingerprint embedder on the repro.nn substrate.

The nonlinear counterpart to :class:`repro.embedding.NCAEmbedder`:
a stacked-autoencoder-pretrained tanh MLP (the same greedy procedure
CNNLoc uses as its front-end) fine-tuned to *predict coordinates* from
the embedding.  The supervised head forces the bottleneck to organize
by physical position — fingerprints of nearby spots land nearby in
embedding space — then the head is discarded and the encoder alone
serves as the feature map for kNN.

Training reuses the fused float32 optimizers and :class:`Trainer` of
:mod:`repro.nn`, so the embedder benefits from the same fast path the
NObLe/CNNLoc cold fits ride.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    Adam,
    DataLoader,
    Linear,
    MSELoss,
    Sequential,
    Tanh,
    TensorDataset,
    Trainer,
    TrainingHistory,
)
from repro.nn.autoencoder import pretrain_stacked_autoencoder
from repro.nn.dtypes import resolve_dtype
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_2d


class MLPEmbedder:
    """AE-pretrained shallow MLP, fine-tuned on coordinates, head dropped.

    Parameters
    ----------
    n_components:
        Bottleneck width — the embedding dimensionality.
    hidden:
        Widths of the encoder layers in front of the bottleneck.
    pretrain_epochs, epochs, batch_size, lr:
        Greedy AE pretraining epochs, then supervised fine-tune
        schedule.
    dtype / fused:
        Compute precision and the allocation-free trainer fast path —
        same semantics as the other :mod:`repro.nn` models
        (``dtype="float32"``, ``fused=True`` is the fast
        configuration).
    """

    def __init__(
        self,
        n_components: int = 16,
        hidden: tuple = (64,),
        pretrain_epochs: int = 10,
        epochs: int = 40,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed=0,
        dtype=None,
        fused: bool = True,
    ):
        if n_components <= 0:
            raise ValueError(
                f"n_components must be positive, got {n_components}"
            )
        self.n_components = int(n_components)
        self.hidden = tuple(int(h) for h in hidden)
        self.pretrain_epochs = int(pretrain_epochs)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.seed = seed
        self.dtype = dtype
        self._dtype = resolve_dtype(dtype)
        self.fused = bool(fused)
        self.encoder_: "Sequential | None" = None
        self.model_: "Sequential | None" = None
        self.n_features_in_: "int | None" = None
        self.history_: "TrainingHistory | None" = None

    @property
    def params(self) -> dict:
        """Constructor kwargs that rebuild this configuration exactly.

        ``dtype`` is canonicalized to its string spelling (or None) so
        the dict is JSON-serializable for artifact metadata.
        """
        return {
            "n_components": self.n_components,
            "hidden": list(self.hidden),
            "pretrain_epochs": self.pretrain_epochs,
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "lr": self.lr,
            "seed": self.seed,
            "dtype": None if self.dtype is None else str(self._dtype),
            "fused": self.fused,
        }

    def fit(self, data: np.ndarray, coordinates: np.ndarray) -> "MLPEmbedder":
        """Train on (N, D) inputs and their (N, 2) positions in meters."""
        data = check_2d(data, "data")
        coordinates = check_2d(coordinates, "coordinates")
        if len(coordinates) != len(data):
            raise ValueError(
                f"coordinates rows {len(coordinates)} != data rows {len(data)}"
            )
        rng = ensure_rng(self.seed)
        self.n_features_in_ = data.shape[1]
        signals = np.asarray(data).astype(self._dtype, copy=False)
        encoders = pretrain_stacked_autoencoder(
            signals,
            [*self.hidden, self.n_components],
            epochs=self.pretrain_epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            rng=rng,
            dtype=self._dtype,
            fused=self.fused,
        )
        # pretraining disables the input-gradient matmul on every
        # encoder (each fronted its own AE); mid-stack layers of the
        # composed network do need it for backprop to reach the layers
        # beneath them
        for encoder in encoders[1:]:
            encoder.input_grad = True
        self.encoder_, self.model_ = self._build_network(
            self.n_features_in_, rng, encoders=encoders
        )
        mean = coordinates.mean(axis=0)
        std = coordinates.std(axis=0)
        std[std == 0] = 1.0
        targets = ((coordinates - mean) / std).astype(self._dtype, copy=False)
        trainer = Trainer(
            self.model_,
            MSELoss(compat=not self.fused),
            Adam(self.model_.parameters(), lr=self.lr, fused=self.fused),
            fused=self.fused,
        )
        loader = DataLoader(
            TensorDataset(signals, targets),
            batch_size=self.batch_size,
            rng=rng,
            fast_collate=self.fused,
        )
        self.history_ = trainer.fit(loader, epochs=self.epochs)
        return self

    def _build_network(
        self, n_inputs: int, rng, encoders: "list[Linear] | None" = None
    ) -> "tuple[Sequential, Sequential]":
        """(encoder, encoder + coordinate head) sharing the same modules.

        ``encoders`` are the pretrained layers from :meth:`fit`; None
        (the persistence restore path) builds architecturally identical
        fresh layers whose weights the caller overwrites.
        """
        if encoders is None:
            sizes = (int(n_inputs), *self.hidden, self.n_components)
            encoders = [
                Linear(
                    n_in, n_out, rng=rng, dtype=self._dtype,
                    input_grad=index > 0,
                )
                for index, (n_in, n_out) in enumerate(zip(sizes, sizes[1:]))
            ]
        layers: list = []
        for encoder in encoders:
            layers.extend([encoder, Tanh()])
        encoder_net = Sequential(*layers)
        head = Linear(self.n_components, 2, rng=rng, dtype=self._dtype)
        return encoder_net, Sequential(*layers, head)

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Embed (M, D) rows into the learned (M, n_components) space."""
        if self.encoder_ is None:
            raise ValueError("MLPEmbedder is not fitted; call fit() first")
        data = check_2d(data, "data")
        self.encoder_.eval()
        return np.asarray(self.encoder_(np.asarray(data)))

    def fit_transform(
        self, data: np.ndarray, coordinates: np.ndarray
    ) -> np.ndarray:
        return self.fit(data, coordinates).transform(data)
