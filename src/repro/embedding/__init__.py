"""repro.embedding — learned feature spaces for fingerprint kNN.

§III-C of the paper: a metric-structured embedding pulls
same-location fingerprints together and tracks coordinate distance.
This package provides two learners of such spaces, one linear and one
nonlinear, behind a single ``fit``/``transform`` surface:

``"metric"`` → :class:`NCAEmbedder`
    Neighbourhood Components Analysis: a linear map trained by
    gradient ascent on the stochastic-kNN leave-one-out objective,
    with classes taken as distinct survey spots.
``"mlp"`` → :class:`MLPEmbedder`
    A stacked-autoencoder-pretrained tanh MLP fine-tuned to predict
    coordinates (on the fused :mod:`repro.nn` training path), with the
    supervised head discarded after training.

Either embedder slots into the serving tier as the first stage of the
feature-space pipeline (:class:`repro.serving.pipeline.FeaturePipeline`)
behind the ``"embed-knn"`` backend: the radio map is embedded once at
fit, the existing sharded/quantized kNN machinery runs on the embedded
points, and query batches are embedded on the hot path.

Quality is measured by :mod:`repro.analysis.embedding`
(``class_scatter_ratio`` down, ``embedding_distance_correlation`` up —
asserted by the test-suite on synthetic maps).
"""

from __future__ import annotations

import numpy as np

from repro.embedding.metric import NCAEmbedder, nca_objective
from repro.embedding.mlp import MLPEmbedder

#: Registered embedder kinds, in the order the docs list them.
EMBEDDER_KINDS = ("metric", "mlp")


def make_embedder(kind: str, **params):
    """Instantiate an embedder by kind (``"metric"`` or ``"mlp"``)."""
    if kind == "metric":
        return NCAEmbedder(**params)
    if kind == "mlp":
        return MLPEmbedder(**params)
    raise ValueError(
        f"unknown embedder kind {kind!r}; available: "
        f"{', '.join(EMBEDDER_KINDS)}"
    )


def is_fitted(embedder) -> bool:
    """True when ``embedder`` has a learned transform ready to apply."""
    if isinstance(embedder, NCAEmbedder):
        return embedder.components_ is not None
    if isinstance(embedder, MLPEmbedder):
        return embedder.encoder_ is not None
    raise TypeError(f"not an embedder: {type(embedder).__name__}")


def fit_embedder(embedder, dataset):
    """Fit ``embedder`` on a :class:`FingerprintDataset`'s radio map.

    Picks the supervision signal each learner needs: the metric learner
    gets integer classes (one per distinct survey coordinate, the §III-C
    notion of "same location"), the MLP gets the coordinates themselves.
    Returns the fitted embedder.
    """
    signals = dataset.normalized_signals()
    if isinstance(embedder, NCAEmbedder):
        _, labels = np.unique(
            np.asarray(dataset.coordinates), axis=0, return_inverse=True
        )
        return embedder.fit(signals, labels)
    return embedder.fit(signals, dataset.coordinates)


def embedder_state(
    embedder, prefix: str = "embedder."
) -> "tuple[dict, dict]":
    """(arrays, meta) capturing a fitted embedder for an .npz artifact.

    ``meta`` is JSON-serializable (kind + constructor params + shape
    info); ``arrays`` hold the learned state under ``prefix``.  Inverse
    of :func:`restore_embedder` — the round trip is bit-identical, the
    guarantee the serving tier's warm restore relies on.
    """
    if isinstance(embedder, NCAEmbedder):
        if embedder.components_ is None:
            raise ValueError("cannot serialize an unfitted NCAEmbedder")
        arrays = {
            f"{prefix}mean": np.asarray(embedder.mean_),
            f"{prefix}components": np.asarray(embedder.components_),
        }
        return arrays, {"kind": "metric", "params": embedder.params}
    if isinstance(embedder, MLPEmbedder):
        if embedder.encoder_ is None:
            raise ValueError("cannot serialize an unfitted MLPEmbedder")
        from repro.nn.serialization import state_arrays

        arrays = state_arrays(embedder.encoder_, prefix=f"{prefix}net.")
        meta = {
            "kind": "mlp",
            "params": embedder.params,
            "n_features_in": int(embedder.n_features_in_),
        }
        return arrays, meta
    raise TypeError(f"not an embedder: {type(embedder).__name__}")


def restore_embedder(arrays: dict, meta: dict, prefix: str = "embedder."):
    """Rebuild a fitted embedder from :func:`embedder_state` output."""
    kind = meta["kind"]
    embedder = make_embedder(kind, **dict(meta["params"]))
    if kind == "metric":
        embedder.mean_ = np.asarray(arrays[f"{prefix}mean"], dtype=float)
        embedder.components_ = np.asarray(
            arrays[f"{prefix}components"], dtype=float
        )
        return embedder
    from repro.nn.serialization import load_state_arrays
    from repro.utils.rng import ensure_rng

    n_features = int(meta["n_features_in"])
    embedder.encoder_, embedder.model_ = embedder._build_network(
        n_features, ensure_rng(0)
    )
    load_state_arrays(embedder.encoder_, arrays, prefix=f"{prefix}net.")
    embedder.encoder_.eval()
    embedder.model_.eval()
    embedder.n_features_in_ = n_features
    return embedder


__all__ = [
    "EMBEDDER_KINDS",
    "MLPEmbedder",
    "NCAEmbedder",
    "embedder_state",
    "fit_embedder",
    "is_fitted",
    "make_embedder",
    "nca_objective",
    "restore_embedder",
]
