"""NCA-style linear metric learning for fingerprint embeddings.

§III-C of the paper argues that a good localization representation
pulls same-location fingerprints together while keeping the embedding
faithful to physical distance.  Neighbourhood Components Analysis
(Goldberger et al., 2005) optimizes exactly that objective for kNN:
maximize the expected number of points whose *stochastic* nearest
neighbor (softmax over negative squared embedded distances) shares
their class.  The learned transform is linear — ``z = (x - mean) @
A.T`` — so the serving hot path is one matmul and the sharding /
quantization machinery applies unchanged in the lower dimension.

The objective and its exact gradient live in module-level functions so
the test-suite can finite-difference-check the math directly.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_2d


def nca_objective(
    transform: np.ndarray, data: np.ndarray, labels: np.ndarray
) -> "tuple[float, np.ndarray]":
    """NCA objective and its gradient with respect to ``transform``.

    Parameters
    ----------
    transform:
        (d, D) linear map A; rows are embedding directions.
    data:
        (N, D) inputs (assumed centered by the caller).
    labels:
        (N,) integer class per row.

    Returns
    -------
    ``(objective, grad)`` where ``objective = sum_i p_i`` (the expected
    number of correctly-assigned points under the stochastic-neighbor
    rule) and ``grad`` is ``d objective / d transform`` — ascend it.

    Notes
    -----
    With ``p_ij = softmax_j(-||z_i - z_j||^2)`` (diagonal excluded) and
    ``p_i = sum_{j in class(i)} p_ij``, the gradient is

        dF/dA = 2 A · X^T (diag(r) + diag(c) - W - W^T) X

    where ``W_ij = p_i p_ij - p_ij [j in class(i)]`` and ``r``/``c``
    are its row/column sums — the graph-Laplacian form of the pairwise
    outer-product sum, which keeps the whole computation at matmul
    cost instead of materializing N² rank-one updates.
    """
    transform = np.asarray(transform, dtype=float)
    data = np.asarray(data, dtype=float)
    labels = np.asarray(labels)
    if len(data) < 2:
        return 0.0, np.zeros_like(transform)
    embedded = data @ transform.T  # (N, d)
    sq = np.einsum("ij,ij->i", embedded, embedded)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (embedded @ embedded.T)
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, np.inf)
    logits = -d2
    logits -= logits.max(axis=1, keepdims=True)
    p = np.exp(logits)
    np.fill_diagonal(p, 0.0)
    p /= p.sum(axis=1, keepdims=True)
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    p_i = (p * same).sum(axis=1)
    objective = float(p_i.sum())
    weights = p * p_i[:, None] - p * same
    row = weights.sum(axis=1)
    col = weights.sum(axis=0)
    # X^T (diag(r) + diag(c) - W - W^T) X without forming the N x N
    # middle matrix explicitly more than once
    middle = -(weights + weights.T)
    middle[np.diag_indices_from(middle)] += row + col
    grad = 2.0 * transform @ (data.T @ (middle @ data))
    return objective, grad


class NCAEmbedder:
    """Linear NCA embedder: mini-batch gradient ascent on the NCA objective.

    Parameters
    ----------
    n_components:
        Embedding dimensionality ``d`` (capped at the input width).
    epochs, batch_size, lr:
        Mini-batch ascent schedule; the update rule is Adam (on the
        transform matrix directly — no nn graph needed for a linear
        map).
    seed:
        Seeds both the PCA-free parts of initialization and the batch
        shuffles, so fits are deterministic.
    """

    def __init__(
        self,
        n_components: int = 16,
        epochs: int = 30,
        batch_size: int = 256,
        lr: float = 0.02,
        seed=0,
    ):
        if n_components <= 0:
            raise ValueError(
                f"n_components must be positive, got {n_components}"
            )
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if batch_size < 2:
            raise ValueError(f"batch_size must be >= 2, got {batch_size}")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.n_components = int(n_components)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.seed = seed
        self.mean_: "np.ndarray | None" = None
        self.components_: "np.ndarray | None" = None
        self.objective_history_: "list[float]" = []

    @property
    def params(self) -> dict:
        """Constructor kwargs that rebuild this configuration exactly."""
        return {
            "n_components": self.n_components,
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "lr": self.lr,
            "seed": self.seed,
        }

    def fit(self, data: np.ndarray, labels: np.ndarray) -> "NCAEmbedder":
        """Learn the transform from (N, D) inputs and (N,) class labels."""
        data = check_2d(data, "data")
        labels = np.asarray(labels).ravel()
        if len(labels) != len(data):
            raise ValueError(
                f"labels length {len(labels)} != data rows {len(data)}"
            )
        rng = ensure_rng(self.seed)
        n, width = data.shape
        d = min(self.n_components, width)
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        transform = _pca_init(centered, d)
        # inline Adam state on the transform matrix
        m = np.zeros_like(transform)
        v = np.zeros_like(transform)
        beta1, beta2, eps, t = 0.9, 0.999, 1e-8, 0
        self.objective_history_ = []
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            total, counted = 0.0, 0
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                if len(batch) < 2:
                    continue
                objective, grad = nca_objective(
                    transform, centered[batch], labels[batch]
                )
                total += objective
                counted += len(batch)
                grad /= len(batch)
                t += 1
                m = beta1 * m + (1 - beta1) * grad
                v = beta2 * v + (1 - beta2) * grad * grad
                m_hat = m / (1 - beta1**t)
                v_hat = v / (1 - beta2**t)
                # ascent: the objective is maximized
                transform += self.lr * m_hat / (np.sqrt(v_hat) + eps)
            self.objective_history_.append(total / max(counted, 1))
        self.components_ = transform
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Embed (M, D) rows into the learned (M, d) space."""
        if self.components_ is None:
            raise ValueError("NCAEmbedder is not fitted; call fit() first")
        data = check_2d(data, "data")
        return (np.asarray(data, dtype=float) - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return self.fit(data, labels).transform(data)


def _pca_init(centered: np.ndarray, n_components: int) -> np.ndarray:
    """Top principal directions of the (already centered) data.

    The standard NCA initialization: start from the variance-preserving
    linear map so early ascent steps refine structure instead of
    recovering it.  Deterministic (eigh of the covariance), and sign is
    fixed per row so fits don't flip between runs.
    """
    cov = (centered.T @ centered) / max(len(centered) - 1, 1)
    eigenvalues, eigenvectors = np.linalg.eigh(cov)
    order = np.argsort(eigenvalues)[::-1][:n_components]
    components = eigenvectors[:, order].T
    signs = np.sign(components[np.arange(len(components)),
                               np.abs(components).argmax(axis=1)])
    signs[signs == 0] = 1.0
    return components * signs[:, None]
