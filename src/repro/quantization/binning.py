"""Input-space feature binning: uint8 radio maps.

RSSI fingerprints are stored as float64 by default — 8 bytes per
(AP, spot) reading for a signal that carries maybe 6 bits of usable
information.  :class:`FeatureBinner` bins each feature to at most 256
levels the way sklearn's hist-gradient-boosting does
(``_hist_gradient_boosting/binning.py``): per-feature thresholds fitted
on (a subsample of) the training map, codes stored as ``uint8`` — an 8x
memory cut — and distance arithmetic done against the *bin midpoints*
via a small dequantization LUT, so the cache-blocked
:func:`~repro.manifold.chunked.chunked_argkmin` kernel streams float32
tiles out of one-quarter the DRAM traffic of a raw float32 map.

Queries are deliberately **not** binned at search time (asymmetric
distance): raw float queries against dequantized map tiles halve the
quantization error versus code-vs-code distances and cost nothing, since
the query side is tiny.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d, check_fitted

#: uint8 codes cap the bin count; 2 is the smallest meaningful split.
MAX_BINS = 256


class FeatureBinner:
    """Per-feature scalar quantizer to at most 256 ``uint8`` codes.

    Parameters
    ----------
    n_bins:
        Number of bins per feature, in ``[2, 256]``.  256 keeps kNN
        recall effectively lossless on RSSI maps; lower settings trade
        recall for nothing here (codes are uint8 regardless), so they
        exist mainly for stress-testing the error envelope.
    strategy:
        ``"quantile"`` places thresholds at equally-spaced quantiles of
        the training distribution (sklearn's default — dense where the
        data is); ``"uniform"`` spaces them evenly over the observed
        range.
    subsample:
        Fit thresholds on at most this many rows, drawn without
        replacement (quantiles converge long before 2*10^5 rows; fitting
        on a 10^6-point map would just burn time sorting).  ``None``
        disables subsampling.
    seed:
        RNG seed for the subsample draw — fitting is deterministic.

    Attributes
    ----------
    thresholds_:
        (D, n_bins - 1) ascending per-feature bin edges.  Code ``c``
        covers ``(thresholds_[j, c-1], thresholds_[j, c]]``.
    midpoints_:
        (D, n_bins) float32 dequantization LUT — the representative
        value of each (feature, code) pair.
    """

    def __init__(
        self,
        n_bins: int = 256,
        strategy: str = "quantile",
        subsample: "int | None" = 200_000,
        seed: int = 0,
    ):
        n_bins = int(n_bins)
        if not 2 <= n_bins <= MAX_BINS:
            raise ValueError(
                f"n_bins must be in [2, {MAX_BINS}], got {n_bins}"
            )
        if strategy not in ("quantile", "uniform"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if subsample is not None and int(subsample) < 2:
            raise ValueError(f"subsample must be >= 2, got {subsample}")
        self.n_bins = n_bins
        self.strategy = strategy
        self.subsample = None if subsample is None else int(subsample)
        self.seed = int(seed)
        self.thresholds_: "np.ndarray | None" = None
        self.midpoints_: "np.ndarray | None" = None

    # ------------------------------------------------------------------ fitting
    def fit(self, X: np.ndarray) -> "FeatureBinner":
        """Learn per-feature thresholds and midpoint LUT from ``X``."""
        X = check_2d(X, "X")
        if not np.isfinite(X).all():
            raise ValueError("binning requires finite training values")
        if self.subsample is not None and len(X) > self.subsample:
            rng = np.random.default_rng(self.seed)
            X = X[rng.choice(len(X), size=self.subsample, replace=False)]
        lo = X.min(axis=0)
        hi = X.max(axis=0)
        if self.strategy == "uniform":
            # (D, n_bins + 1) evenly spaced edges over the observed range
            grid = np.linspace(0.0, 1.0, self.n_bins + 1)
            edges = lo[:, None] + (hi - lo)[:, None] * grid[None, :]
        else:
            # interior edges at equally spaced quantiles; degenerate
            # (constant) features collapse every threshold onto the value,
            # which searchsorted handles — all rows land in one bin
            qs = np.linspace(0.0, 100.0, self.n_bins + 1)
            edges = np.percentile(X, qs, axis=0, method="midpoint").T
            edges[:, 0] = lo
            edges[:, -1] = hi
        self.thresholds_ = np.ascontiguousarray(edges[:, 1:-1], dtype=float)
        self.midpoints_ = (
            0.5 * (edges[:, :-1] + edges[:, 1:])
        ).astype(np.float32)
        return self

    # ---------------------------------------------------------------- transform
    def transform(self, X: np.ndarray) -> np.ndarray:
        """Bin values to uint8 codes, one ``searchsorted`` per feature.

        Out-of-range values clip into the first/last bin, matching the
        sklearn semantics for unseen data.
        """
        check_fitted(self, "thresholds_")
        X = check_2d(X, "X")
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"X has {X.shape[1]} features, the binner was fitted on "
                f"{self.n_features}"
            )
        codes = np.empty(X.shape, dtype=np.uint8)
        for j in range(X.shape[1]):
            codes[:, j] = np.searchsorted(
                self.thresholds_[j], X[:, j], side="left"
            )
        return codes

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Map uint8 codes back to their float32 bin midpoints."""
        check_fitted(self, "midpoints_")
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self.n_features:
            raise ValueError(
                f"codes must be (N, {self.n_features}), got {codes.shape}"
            )
        return self.midpoints_[
            np.arange(self.n_features)[None, :], codes
        ]

    def quantize(self, X: np.ndarray) -> np.ndarray:
        """``dequantize(transform(X))`` — values snapped to bin midpoints."""
        return self.dequantize(self.transform(X))

    # ------------------------------------------------------------------- info
    @property
    def n_features(self) -> int:
        check_fitted(self, "thresholds_")
        return len(self.thresholds_)

    @property
    def params(self) -> "dict[str, object]":
        """Constructor parameters (cache-key / persistence material)."""
        return {
            "n_bins": self.n_bins,
            "strategy": self.strategy,
            "subsample": self.subsample,
            "seed": self.seed,
        }

    # ------------------------------------------------------------ persistence
    def state_arrays(self) -> "dict[str, np.ndarray]":
        """Fitted state as flat arrays for the artifact serializers."""
        check_fitted(self, "thresholds_")
        return {
            "binner_thresholds": self.thresholds_,
            "binner_midpoints": self.midpoints_,
            "binner_config": np.array(
                [
                    self.n_bins,
                    0 if self.strategy == "quantile" else 1,
                    -1 if self.subsample is None else self.subsample,
                    self.seed,
                ],
                dtype=np.int64,
            ),
        }

    @classmethod
    def from_state_arrays(
        cls, arrays: "dict[str, np.ndarray]"
    ) -> "FeatureBinner":
        """Rebuild a fitted binner from :meth:`state_arrays` output."""
        config = np.asarray(arrays["binner_config"], dtype=np.int64).ravel()
        n_bins, strategy_code, subsample, seed = (int(v) for v in config)
        binner = cls(
            n_bins=n_bins,
            strategy="quantile" if strategy_code == 0 else "uniform",
            subsample=None if subsample < 0 else subsample,
            seed=seed,
        )
        binner.thresholds_ = np.ascontiguousarray(
            arrays["binner_thresholds"], dtype=float
        )
        binner.midpoints_ = np.ascontiguousarray(
            arrays["binner_midpoints"], dtype=np.float32
        )
        if binner.thresholds_.shape != (
            len(binner.midpoints_),
            n_bins - 1,
        ) or binner.midpoints_.shape[1] != n_bins:
            raise ValueError(
                "binner state arrays are inconsistent with n_bins="
                f"{n_bins}: thresholds {binner.thresholds_.shape}, "
                f"midpoints {binner.midpoints_.shape}"
            )
        return binner


class BinnedPoints:
    """A uint8-coded point set exposing the chunk-source protocol.

    Adapts ``(codes, binner)`` to the duck-typed seam of
    :func:`repro.manifold.chunked.chunked_argkmin`: ``shape``/``dtype``
    describe the *dequantized* view, ``chunk(start, stop)`` streams
    float32 midpoint tiles.  Only the codes are held — ``nbytes`` is
    what the serving tier actually pays per resident radio map.
    """

    def __init__(self, binner: FeatureBinner, codes: np.ndarray):
        check_fitted(binner, "midpoints_")
        codes = np.asarray(codes)
        if codes.dtype != np.uint8:
            raise ValueError(f"codes must be uint8, got {codes.dtype}")
        if codes.ndim != 2 or codes.shape[1] != binner.n_features:
            raise ValueError(
                f"codes must be (N, {binner.n_features}), got {codes.shape}"
            )
        self.binner = binner
        self.codes = np.ascontiguousarray(codes)

    @property
    def shape(self) -> "tuple[int, int]":
        return self.codes.shape

    @property
    def dtype(self) -> np.dtype:
        return self.binner.midpoints_.dtype

    @property
    def nbytes(self) -> int:
        """Resident bytes of the stored map (codes only — the LUT is
        shared across shards and amortizes to nothing)."""
        return self.codes.nbytes

    @property
    def storage_itemsize(self) -> int:
        """Bytes per stored element (1 for uint8 codes); the chunked
        kernels size their tiles from this rather than the transient
        dequantized dtype, so binned scans get 4x-larger tiles out of
        the same L2 budget."""
        return self.codes.itemsize

    def __len__(self) -> int:
        return len(self.codes)

    def chunk(self, start: int, stop: int) -> np.ndarray:
        return self.binner.dequantize(self.codes[start:stop])

    def sq_norms(self, chunk_rows: int = 4096) -> np.ndarray:
        """``|p|^2`` of the dequantized points, one streaming pass."""
        n = len(self.codes)
        out = np.empty(n, dtype=self.dtype)
        for start in range(0, n, chunk_rows):
            tile = self.chunk(start, min(start + chunk_rows, n))
            out[start : start + len(tile)] = np.einsum(
                "ij,ij->i", tile, tile
            )
        return out
