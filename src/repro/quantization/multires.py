"""Two-resolution quantization: fine cells τ and coarse cells l (§III-B).

Each sample becomes ``(s, c, r, (x, y))`` where ``c`` is the fine class
and ``r`` the coarse class.  The coarse head gives the classifier a
denser, easier target that regularizes the sparse fine head.
"""

from __future__ import annotations

import numpy as np

from repro.quantization.grid import GridQuantizer
from repro.utils.validation import check_fitted, check_positive


class MultiResolutionQuantizer:
    """A fine (τ) and a coarse (l > τ) :class:`GridQuantizer` pair."""

    def __init__(self, tau: float, coarse: float, representative: str = "center"):
        check_positive(tau, "tau")
        check_positive(coarse, "coarse")
        if coarse <= tau:
            raise ValueError(
                f"coarse side length must exceed tau, got coarse={coarse} <= tau={tau}"
            )
        self.fine = GridQuantizer(tau, representative=representative)
        self.coarse = GridQuantizer(coarse, representative=representative)

    def fit(self, coordinates: np.ndarray) -> "MultiResolutionQuantizer":
        self.fine.fit(coordinates)
        self.coarse.fit(coordinates)
        return self

    def transform(
        self, coordinates: np.ndarray, strict: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (fine_ids, coarse_ids) for coordinates."""
        return (
            self.fine.transform(coordinates, strict=strict),
            self.coarse.transform(coordinates, strict=strict),
        )

    def fit_transform(self, coordinates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        self.fit(coordinates)
        return self.transform(coordinates)

    def inverse_transform(self, fine_ids: np.ndarray) -> np.ndarray:
        """Position lookup always uses the fine resolution (the paper
        reads coordinates off the fine class's centroid)."""
        return self.fine.inverse_transform(fine_ids)

    @property
    def n_fine(self) -> int:
        check_fitted(self.fine, "classes_")
        return self.fine.n_classes

    @property
    def n_coarse(self) -> int:
        check_fitted(self.coarse, "classes_")
        return self.coarse.n_classes

    def coarse_of_fine(self) -> np.ndarray:
        """Map each fine class to the coarse class containing its centroid.

        Useful for consistency checks: a prediction whose fine and coarse
        heads disagree is suspect.
        """
        check_fitted(self.fine, "centroids_")
        return self.coarse.transform(self.fine.centroids_, strict=False)
