"""Multi-hot label encodings and adjacency augmentation (§III-B).

The paper combats fine-grid class sparsity by assigning each sample the
classes *adjacent* to its true cell in addition to the cell itself,
turning the problem into genuine multi-label classification.
"""

from __future__ import annotations

import numpy as np

from repro.quantization.grid import GridQuantizer


def multi_hot(class_ids: np.ndarray, num_classes: int) -> np.ndarray:
    """(N, num_classes) float multi-hot matrix from integer ids.

    ``class_ids`` may be (N,) for single labels or a list of id-arrays
    for pre-augmented multi-labels.
    """
    if num_classes <= 0:
        raise ValueError(f"num_classes must be positive, got {num_classes}")
    if isinstance(class_ids, np.ndarray) and class_ids.ndim == 1:
        n = len(class_ids)
        out = np.zeros((n, num_classes), dtype=float)
        ids = class_ids.astype(int)
        if len(ids) and (ids.min() < 0 or ids.max() >= num_classes):
            raise ValueError("class ids out of range")
        out[np.arange(n), ids] = 1.0
        return out
    out = np.zeros((len(class_ids), num_classes), dtype=float)
    for row, ids in enumerate(class_ids):
        ids = np.asarray(ids, dtype=int)
        if len(ids) and (ids.min() < 0 or ids.max() >= num_classes):
            raise ValueError(f"class ids out of range in row {row}")
        out[row, ids] = 1.0
    return out


def adjacent_cells(cell: tuple[int, int], include_diagonal: bool = True):
    """The 4- or 8-neighborhood of an integer grid cell (cell excluded)."""
    cx, cy = int(cell[0]), int(cell[1])
    if include_diagonal:
        offsets = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]
    else:
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
    return [(cx + dx, cy + dy) for dx, dy in offsets]


def augment_with_adjacency(
    quantizer: GridQuantizer,
    class_ids: np.ndarray,
    include_diagonal: bool = True,
) -> list[np.ndarray]:
    """For each sample, its class id plus the ids of populated adjacent cells.

    Empty neighbors (inaccessible space) contribute nothing — exactly the
    paper's mechanism for keeping dead space out of the label set.
    """
    result = []
    for class_id in np.asarray(class_ids, dtype=int):
        ids = [int(class_id)]
        for cell in adjacent_cells(quantizer.cell_of(class_id), include_diagonal):
            neighbor_id = quantizer.class_of_cell(cell)
            if neighbor_id is not None:
                ids.append(neighbor_id)
        result.append(np.array(sorted(set(ids)), dtype=int))
    return result


def soft_multi_hot(
    quantizer: GridQuantizer,
    class_ids: np.ndarray,
    adjacency_weight: float = 0.3,
    include_diagonal: bool = True,
) -> np.ndarray:
    """Multi-hot targets with 1.0 on the true cell and ``adjacency_weight``
    on populated adjacent cells — a softened version of
    :func:`augment_with_adjacency` that keeps the true cell dominant."""
    if not 0.0 <= adjacency_weight <= 1.0:
        raise ValueError(
            f"adjacency_weight must be in [0, 1], got {adjacency_weight}"
        )
    ids = np.asarray(class_ids, dtype=int)
    out = np.zeros((len(ids), quantizer.n_classes), dtype=float)
    for row, class_id in enumerate(ids):
        for cell in adjacent_cells(quantizer.cell_of(class_id), include_diagonal):
            neighbor_id = quantizer.class_of_cell(cell)
            if neighbor_id is not None:
                out[row, neighbor_id] = adjacency_weight
        out[row, class_id] = 1.0
    return out
