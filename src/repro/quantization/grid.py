"""Single-resolution square-grid quantizer."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d, check_fitted, check_positive


class GridQuantizer:
    """Quantize 2-D coordinates into τ-sided square grid classes.

    Following §III-B: the space is divided into non-overlapping square
    grids with side length ``tau``; each grid cell observed in the
    training data receives a dense class id; cells with no data points
    are discarded (they correspond to inaccessible space and never become
    predictable classes).  Inference maps a class id back to the cell's
    representative coordinates.

    Parameters
    ----------
    tau:
        Grid side length in the coordinate units (meters in the paper;
        τ < 0.2 m for Wi-Fi, 0.4 m for IMU).
    representative:
        ``"center"`` returns the geometric center of the cell;
        ``"centroid"`` returns the mean of the training points that fell
        in the cell (slightly more faithful where cells are sparsely and
        unevenly populated).

    Attributes
    ----------
    classes_:
        (K, 2) integer cell coordinates per dense class id.
    centroids_:
        (K, 2) representative coordinates returned at inference.
    counts_:
        (K,) training points per class — the sparsity diagnostic that
        motivates the multi-resolution variant.
    """

    def __init__(self, tau: float, representative: str = "center"):
        check_positive(tau, "tau")
        if representative not in ("center", "centroid"):
            raise ValueError(f"unknown representative {representative!r}")
        self.tau = float(tau)
        self.representative = representative
        self.origin_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None
        self.centroids_: np.ndarray | None = None
        self.counts_: np.ndarray | None = None
        self._cell_to_class: dict[tuple[int, int], int] | None = None
        self._cell_lo: np.ndarray | None = None
        self._cell_hi: np.ndarray | None = None
        self._class_keys: np.ndarray | None = None

    # ------------------------------------------------------------------ fitting
    def fit(self, coordinates: np.ndarray) -> "GridQuantizer":
        """Learn the populated cells (and class ids) from training coordinates."""
        coords = self._check_coords(coordinates)
        self.origin_ = coords.min(axis=0)
        cells = self._cells_for(coords)
        unique_cells, inverse, counts = np.unique(
            cells, axis=0, return_inverse=True, return_counts=True
        )
        # numpy 2.0 returns a keep-dims (N, 1) inverse from axis unique;
        # fed to add.at unraveled it mis-shapes the scatter, so flatten
        # unconditionally (a no-op on every other numpy)
        inverse = np.reshape(inverse, -1)
        self.classes_ = unique_cells
        self.counts_ = counts
        self._rebuild_lookup()
        if self.representative == "center":
            self.centroids_ = (unique_cells + 0.5) * self.tau + self.origin_
        else:
            sums = np.zeros((len(unique_cells), 2))
            np.add.at(sums, inverse, coords)
            self.centroids_ = sums / counts[:, None]
        return self

    def fit_transform(self, coordinates: np.ndarray) -> np.ndarray:
        """Fit and return the class id of every training coordinate."""
        self.fit(coordinates)
        return self.transform(coordinates)

    # ---------------------------------------------------------------- transform
    def transform(self, coordinates: np.ndarray, strict: bool = True) -> np.ndarray:
        """Class ids for coordinates.

        ``strict=True`` raises if any coordinate falls in a cell that had
        no training data; ``strict=False`` assigns the nearest populated
        cell instead (useful for labelling noisy validation points).
        """
        check_fitted(self, "classes_")
        coords = self._check_coords(coordinates)
        cells = self._cells_for(coords)
        # vectorized cell -> class lookup: encode cells into the same
        # lexicographic key space as the fitted classes and binary-search;
        # out-of-bounding-box cells encode to -1 and miss by construction
        keys = self._encode_cells(cells)
        pos = np.searchsorted(self._class_keys, keys)
        pos = np.minimum(pos, len(self._class_keys) - 1)
        hit = (keys >= 0) & (self._class_keys[pos] == keys)
        out = np.where(hit, pos, -1)
        if not hit.all():
            if strict:
                raise ValueError(
                    f"{int((~hit).sum())} coordinate(s) fall outside all "
                    "populated cells; pass strict=False to snap them to "
                    "the nearest class"
                )
            misses = np.flatnonzero(~hit)
            out[misses] = self._nearest_class(coords[misses])
        return out

    def inverse_transform(self, class_ids: np.ndarray) -> np.ndarray:
        """Representative coordinates for class ids (the paper's lookup)."""
        check_fitted(self, "centroids_")
        ids = np.asarray(class_ids, dtype=int)
        if ids.ndim != 1:
            ids = ids.ravel()
        if ids.min(initial=0) < 0 or ids.max(initial=-1) >= len(self.centroids_):
            bad = ids[(ids < 0) | (ids >= len(self.centroids_))]
            raise ValueError(f"class ids out of range: {bad[:5]}...")
        return self.centroids_[ids]

    # ------------------------------------------------------------------- info
    @property
    def n_classes(self) -> int:
        check_fitted(self, "classes_")
        return len(self.classes_)

    def quantization_error(self, coordinates: np.ndarray) -> np.ndarray:
        """Distance from each coordinate to its cell representative —
        the floor on achievable position error for a perfect classifier."""
        ids = self.transform(coordinates, strict=False)
        return np.linalg.norm(
            self._check_coords(coordinates) - self.centroids_[ids], axis=1
        )

    def cell_of(self, class_id: int) -> tuple[int, int]:
        """Integer cell coordinates of a class id."""
        check_fitted(self, "classes_")
        cx, cy = self.classes_[int(class_id)]
        return int(cx), int(cy)

    def class_of_cell(self, cell: tuple[int, int]) -> "int | None":
        """Dense class id for integer cell coordinates, or None if empty."""
        check_fitted(self, "classes_")
        return self._cell_to_class.get((int(cell[0]), int(cell[1])))

    # ----------------------------------------------------------------- helpers
    def _check_coords(self, coordinates: np.ndarray) -> np.ndarray:
        coords = check_2d(coordinates, "coordinates")
        if coords.shape[1] != 2:
            raise ValueError(f"coordinates must be (N, 2), got {coords.shape}")
        return coords

    def _cells_for(self, coords: np.ndarray) -> np.ndarray:
        return np.floor((coords - self.origin_) / self.tau).astype(int)

    def _rebuild_lookup(self) -> None:
        """Derive the cell -> class lookup state from ``classes_``.

        Shared by :meth:`fit` and the persistence restore path.  The
        axis-unique rows of ``classes_`` are lexicographically sorted,
        so a cell's class id equals its rank among the encoded (cx, cy)
        keys — the ``searchsorted`` lookup :meth:`transform` runs over.
        The dict stays for the :meth:`class_of_cell` point API.
        """
        self._cell_to_class = {
            (int(cx), int(cy)): int(class_id)
            for class_id, (cx, cy) in enumerate(self.classes_)
        }
        self._cell_lo = self.classes_.min(axis=0)
        self._cell_hi = self.classes_.max(axis=0)
        self._class_keys = self._encode_cells(self.classes_)

    def _encode_cells(self, cells: np.ndarray) -> np.ndarray:
        """Lexicographic int64 key per cell; -1 for out-of-bbox cells.

        Keys order exactly like the (cx, cy) rows of ``classes_``, so
        ``searchsorted`` over the fitted keys recovers dense class ids.
        """
        lo, hi = self._cell_lo, self._cell_hi
        cells = cells.astype(np.int64, copy=False)
        span_y = int(hi[1]) - int(lo[1]) + 1
        keys = (cells[:, 0] - lo[0]) * span_y + (cells[:, 1] - lo[1])
        inside = np.all((cells >= lo) & (cells <= hi), axis=1)
        return np.where(inside, keys, -1)

    def _nearest_class(self, coords: np.ndarray) -> np.ndarray:
        # chunked k=1 scan: never materializes the (M, K, 2) broadcast
        # that blew memory on fine grids with many off-cell points
        from repro.manifold.chunked import chunked_argkmin

        _dist, indices = chunked_argkmin(coords, self.centroids_, k=1)
        return indices[:, 0]
