"""Single-resolution square-grid quantizer."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d, check_fitted, check_positive


class GridQuantizer:
    """Quantize 2-D coordinates into τ-sided square grid classes.

    Following §III-B: the space is divided into non-overlapping square
    grids with side length ``tau``; each grid cell observed in the
    training data receives a dense class id; cells with no data points
    are discarded (they correspond to inaccessible space and never become
    predictable classes).  Inference maps a class id back to the cell's
    representative coordinates.

    Parameters
    ----------
    tau:
        Grid side length in the coordinate units (meters in the paper;
        τ < 0.2 m for Wi-Fi, 0.4 m for IMU).
    representative:
        ``"center"`` returns the geometric center of the cell;
        ``"centroid"`` returns the mean of the training points that fell
        in the cell (slightly more faithful where cells are sparsely and
        unevenly populated).

    Attributes
    ----------
    classes_:
        (K, 2) integer cell coordinates per dense class id.
    centroids_:
        (K, 2) representative coordinates returned at inference.
    counts_:
        (K,) training points per class — the sparsity diagnostic that
        motivates the multi-resolution variant.
    """

    def __init__(self, tau: float, representative: str = "center"):
        check_positive(tau, "tau")
        if representative not in ("center", "centroid"):
            raise ValueError(f"unknown representative {representative!r}")
        self.tau = float(tau)
        self.representative = representative
        self.origin_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None
        self.centroids_: np.ndarray | None = None
        self.counts_: np.ndarray | None = None
        self._cell_to_class: dict[tuple[int, int], int] | None = None

    # ------------------------------------------------------------------ fitting
    def fit(self, coordinates: np.ndarray) -> "GridQuantizer":
        """Learn the populated cells (and class ids) from training coordinates."""
        coords = self._check_coords(coordinates)
        self.origin_ = coords.min(axis=0)
        cells = self._cells_for(coords)
        unique_cells, inverse, counts = np.unique(
            cells, axis=0, return_inverse=True, return_counts=True
        )
        self.classes_ = unique_cells
        self.counts_ = counts
        self._cell_to_class = {
            (int(cx), int(cy)): int(class_id)
            for class_id, (cx, cy) in enumerate(unique_cells)
        }
        if self.representative == "center":
            self.centroids_ = (unique_cells + 0.5) * self.tau + self.origin_
        else:
            sums = np.zeros((len(unique_cells), 2))
            np.add.at(sums, inverse, coords)
            self.centroids_ = sums / counts[:, None]
        return self

    def fit_transform(self, coordinates: np.ndarray) -> np.ndarray:
        """Fit and return the class id of every training coordinate."""
        self.fit(coordinates)
        return self.transform(coordinates)

    # ---------------------------------------------------------------- transform
    def transform(self, coordinates: np.ndarray, strict: bool = True) -> np.ndarray:
        """Class ids for coordinates.

        ``strict=True`` raises if any coordinate falls in a cell that had
        no training data; ``strict=False`` assigns the nearest populated
        cell instead (useful for labelling noisy validation points).
        """
        check_fitted(self, "classes_")
        coords = self._check_coords(coordinates)
        cells = self._cells_for(coords)
        out = np.empty(len(coords), dtype=int)
        misses = []
        for i, (cx, cy) in enumerate(cells):
            class_id = self._cell_to_class.get((int(cx), int(cy)))
            if class_id is None:
                misses.append(i)
                out[i] = -1
            else:
                out[i] = class_id
        if misses:
            if strict:
                raise ValueError(
                    f"{len(misses)} coordinate(s) fall outside all populated "
                    "cells; pass strict=False to snap them to the nearest class"
                )
            out[misses] = self._nearest_class(coords[misses])
        return out

    def inverse_transform(self, class_ids: np.ndarray) -> np.ndarray:
        """Representative coordinates for class ids (the paper's lookup)."""
        check_fitted(self, "centroids_")
        ids = np.asarray(class_ids, dtype=int)
        if ids.ndim != 1:
            ids = ids.ravel()
        if ids.min(initial=0) < 0 or ids.max(initial=-1) >= len(self.centroids_):
            bad = ids[(ids < 0) | (ids >= len(self.centroids_))]
            raise ValueError(f"class ids out of range: {bad[:5]}...")
        return self.centroids_[ids]

    # ------------------------------------------------------------------- info
    @property
    def n_classes(self) -> int:
        check_fitted(self, "classes_")
        return len(self.classes_)

    def quantization_error(self, coordinates: np.ndarray) -> np.ndarray:
        """Distance from each coordinate to its cell representative —
        the floor on achievable position error for a perfect classifier."""
        ids = self.transform(coordinates, strict=False)
        return np.linalg.norm(
            self._check_coords(coordinates) - self.centroids_[ids], axis=1
        )

    def cell_of(self, class_id: int) -> tuple[int, int]:
        """Integer cell coordinates of a class id."""
        check_fitted(self, "classes_")
        cx, cy = self.classes_[int(class_id)]
        return int(cx), int(cy)

    def class_of_cell(self, cell: tuple[int, int]) -> "int | None":
        """Dense class id for integer cell coordinates, or None if empty."""
        check_fitted(self, "classes_")
        return self._cell_to_class.get((int(cell[0]), int(cell[1])))

    # ----------------------------------------------------------------- helpers
    def _check_coords(self, coordinates: np.ndarray) -> np.ndarray:
        coords = check_2d(coordinates, "coordinates")
        if coords.shape[1] != 2:
            raise ValueError(f"coordinates must be (N, 2), got {coords.shape}")
        return coords

    def _cells_for(self, coords: np.ndarray) -> np.ndarray:
        return np.floor((coords - self.origin_) / self.tau).astype(int)

    def _nearest_class(self, coords: np.ndarray) -> np.ndarray:
        diffs = coords[:, None, :] - self.centroids_[None, :, :]
        return np.argmin(np.sum(diffs**2, axis=-1), axis=1)
