"""Quantization: output-space grids (§III-B) and input-space binning.

Continuous coordinates are snapped to non-overlapping square grid cells
of side τ; populated cells become classes, empty cells (inaccessible
space) are discarded.  A coarse second resolution l > τ and adjacency
label augmentation address class sparsity.

On the input side, :class:`FeatureBinner` bins RSSI features to uint8
codes (sklearn hist-gradient-boosting style) so radio maps serve from
one-eighth the memory; :class:`BinnedPoints` adapts the codes to the
cache-blocked distance kernels in :mod:`repro.manifold.chunked`.
"""

from repro.quantization.grid import GridQuantizer
from repro.quantization.multires import MultiResolutionQuantizer
from repro.quantization.binning import FeatureBinner, BinnedPoints, MAX_BINS
from repro.quantization.labels import (
    multi_hot,
    adjacent_cells,
    augment_with_adjacency,
)

__all__ = [
    "GridQuantizer",
    "MultiResolutionQuantizer",
    "FeatureBinner",
    "BinnedPoints",
    "MAX_BINS",
    "multi_hot",
    "adjacent_cells",
    "augment_with_adjacency",
]
