"""Output-space quantization (§III-B of the paper).

Continuous coordinates are snapped to non-overlapping square grid cells
of side τ; populated cells become classes, empty cells (inaccessible
space) are discarded.  A coarse second resolution l > τ and adjacency
label augmentation address class sparsity.
"""

from repro.quantization.grid import GridQuantizer
from repro.quantization.multires import MultiResolutionQuantizer
from repro.quantization.labels import (
    multi_hot,
    adjacent_cells,
    augment_with_adjacency,
)

__all__ = [
    "GridQuantizer",
    "MultiResolutionQuantizer",
    "multi_hot",
    "adjacent_cells",
    "augment_with_adjacency",
]
