"""Terminal scatter rendering for the Fig. 1/4/5 reproductions.

matplotlib is unavailable offline, so figures are emitted two ways:
a CSV (for external plotting) and an ASCII density plot good enough to
eyeball whether predictions respect the building structure.
"""

from __future__ import annotations

import csv

import numpy as np

from repro.utils.validation import check_2d

#: Density ramp from sparse to dense.
_RAMP = " .:-=+*#%@"


def ascii_scatter(
    points: np.ndarray,
    width: int = 78,
    height: int = 24,
    extent: "tuple[float, float, float, float] | None" = None,
    title: str = "",
) -> str:
    """Render points as an ASCII density plot.

    Parameters
    ----------
    points:
        (N, 2) coordinates.
    width, height:
        Character-cell resolution.
    extent:
        (xmin, ymin, xmax, ymax); defaults to the data bounding box.
        Pass the same extent to multiple plots to compare them.
    """
    points = check_2d(points, "points")
    if points.shape[1] != 2:
        raise ValueError(f"points must be (N, 2), got {points.shape}")
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")
    if extent is None:
        xmin, ymin = points.min(axis=0)
        xmax, ymax = points.max(axis=0)
    else:
        xmin, ymin, xmax, ymax = extent
    span_x = max(xmax - xmin, 1e-12)
    span_y = max(ymax - ymin, 1e-12)
    cols = np.clip(((points[:, 0] - xmin) / span_x * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((points[:, 1] - ymin) / span_y * (height - 1)).astype(int), 0, height - 1)
    grid = np.zeros((height, width), dtype=int)
    np.add.at(grid, (rows, cols), 1)
    peak = grid.max()
    lines = []
    if title:
        lines.append(title)
    border = "+" + "-" * width + "+"
    lines.append(border)
    for row in range(height - 1, -1, -1):  # y grows upward
        chars = []
        for col in range(width):
            count = grid[row, col]
            if count == 0:
                chars.append(" ")
            else:
                level = int(np.ceil(count / peak * (len(_RAMP) - 1)))
                chars.append(_RAMP[max(level, 1)])
        lines.append("|" + "".join(chars) + "|")
    lines.append(border)
    return "\n".join(lines)


def save_scatter_csv(path: str, points: np.ndarray, labels=None) -> None:
    """Write points (and optional integer labels) to a CSV for plotting."""
    points = check_2d(points, "points")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if labels is None:
            writer.writerow(["x", "y"])
            writer.writerows(points.tolist())
        else:
            labels = np.asarray(labels)
            if len(labels) != len(points):
                raise ValueError("labels length must match points")
            writer.writerow(["x", "y", "label"])
            for (x, y), label in zip(points, labels):
                writer.writerow([x, y, label])
