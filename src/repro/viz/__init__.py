"""Figure substrate without matplotlib: ASCII scatter plots + CSV dumps."""

from repro.viz.scatter import ascii_scatter, save_scatter_csv

__all__ = ["ascii_scatter", "save_scatter_csv"]
