"""Floor plans: unions of accessible polygons with optional holes."""

from __future__ import annotations

import numpy as np

from repro.geometry.polygon import Polygon
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_2d


class FloorPlan:
    """Accessible space = union(regions) minus union(holes).

    Regions model building footprints / corridors; holes model interior
    courtyards (e.g. the open middle of the UJIIndoorLoc top-left
    building that the paper points at in Fig. 1/4) and other dead space.
    """

    def __init__(self, regions: list[Polygon], holes: "list[Polygon] | None" = None):
        if not regions:
            raise ValueError("a FloorPlan needs at least one region")
        self.regions = list(regions)
        self.holes = list(holes or [])

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """Bounding box of all regions: (xmin, ymin, xmax, ymax)."""
        boxes = np.array([r.bounds for r in self.regions])
        return (
            float(boxes[:, 0].min()),
            float(boxes[:, 1].min()),
            float(boxes[:, 2].max()),
            float(boxes[:, 3].max()),
        )

    def accessible(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask: inside some region and inside no hole."""
        points = check_2d(points, "points")
        in_region = np.zeros(len(points), dtype=bool)
        for region in self.regions:
            in_region |= region.contains(points)
        for hole in self.holes:
            in_region &= ~hole.contains(points)
        return in_region

    def accessibility_fraction(self, points: np.ndarray) -> float:
        """Fraction of points on accessible space — the structure score
        used to quantify Fig. 4/5 ('NObLe's outputs resemble the map')."""
        mask = self.accessible(points)
        if len(mask) == 0:
            return float("nan")
        return float(np.mean(mask))

    def sample(self, n: int, rng=None) -> np.ndarray:
        """Uniform samples over accessible space, area-weighted by region."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        rng = ensure_rng(rng)
        areas = np.array([r.area() for r in self.regions])
        weights = areas / areas.sum()
        out = np.empty((n, 2))
        filled = 0
        guard = 0
        while filled < n:
            guard += 1
            if guard > 100_000:
                raise RuntimeError("sampling failed; holes may cover all regions")
            region = self.regions[int(rng.choice(len(self.regions), p=weights))]
            candidate = region.sample_interior(1, rng=rng)
            if self.accessible(candidate)[0]:
                out[filled] = candidate[0]
                filled += 1
        return out

    def area(self) -> float:
        """Approximate accessible area: region areas minus hole areas.

        Exact when holes are fully contained in regions and mutually
        disjoint, which holds for the layouts in :mod:`repro.data.campus`.
        """
        return float(
            sum(r.area() for r in self.regions) - sum(h.area() for h in self.holes)
        )
