"""Project predicted coordinates onto the map (the [8]/[19] baseline).

The Deep-Regression-Projection comparator keeps on-map predictions
unchanged and snaps off-map predictions to the nearest accessible point.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.floorplan import FloorPlan
from repro.utils.validation import check_2d


def project_to_map(points: np.ndarray, plan: FloorPlan) -> np.ndarray:
    """Snap each off-map point to the closest point on the plan.

    On-map points (accessible) are returned untouched.  Off-map points go
    to the nearest region boundary; if that landed inside a hole (possible
    for points deep inside a courtyard), the hole boundary is used.
    """
    points = check_2d(points, "points")
    out = points.copy()
    off_map = ~plan.accessible(points)
    if not off_map.any():
        return out
    offenders = points[off_map]
    candidates = np.stack(
        [region.nearest_boundary_point(offenders) for region in plan.regions], axis=1
    )  # (M, R, 2)
    dist = np.linalg.norm(candidates - offenders[:, None, :], axis=-1)
    best = np.argmin(dist, axis=1)
    snapped = candidates[np.arange(len(offenders)), best]
    # a point inside a hole snaps to the hole's own boundary if closer
    for hole in plan.holes:
        inside_hole = hole.contains(offenders)
        if inside_hole.any():
            hole_projection = hole.nearest_boundary_point(offenders[inside_hole])
            hole_dist = np.linalg.norm(
                hole_projection - offenders[inside_hole], axis=1
            )
            current = np.linalg.norm(
                snapped[inside_hole] - offenders[inside_hole], axis=1
            )
            replace = hole_dist < current
            rows = np.flatnonzero(inside_hole)[replace]
            snapped[rows] = hole_projection[replace]
    out[off_map] = snapped
    return out
