"""Floor-plan geometry: polygons, accessibility, and map projection.

Supports the Deep-Regression-Projection baseline (snap a prediction to
the nearest on-map point, per [8]/[19]) and the structure-awareness
metric used for the Fig. 4 / Fig. 5 reproductions (fraction of predicted
points that land on accessible space).
"""

from repro.geometry.polygon import Polygon
from repro.geometry.floorplan import FloorPlan
from repro.geometry.projection import project_to_map
from repro.geometry.occupancy import OccupancyGrid
from repro.geometry.segments import segment_distances, route_graph_segments

__all__ = [
    "Polygon",
    "FloorPlan",
    "project_to_map",
    "OccupancyGrid",
    "segment_distances",
    "route_graph_segments",
]
