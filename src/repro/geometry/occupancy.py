"""Occupancy grids built from observed sample locations.

When no explicit floor plan is available (the realistic deployment
case), accessible space can be estimated as "cells where training data
exists" — the same principle the paper's quantizer exploits.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d, check_fitted, check_positive


class OccupancyGrid:
    """A boolean grid of cells that contain at least ``min_count`` samples."""

    def __init__(self, cell_size: float, min_count: int = 1):
        check_positive(cell_size, "cell_size")
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        self.cell_size = float(cell_size)
        self.min_count = int(min_count)
        self.origin_: np.ndarray | None = None
        self.occupied_: "set[tuple[int, int]] | None" = None
        self._occupied_centers: np.ndarray | None = None

    def fit(self, points: np.ndarray) -> "OccupancyGrid":
        points = self._check(points)
        self.origin_ = points.min(axis=0)
        cells = self._cells(points)
        unique, counts = np.unique(cells, axis=0, return_counts=True)
        keep = unique[counts >= self.min_count]
        self.occupied_ = {(int(cx), int(cy)) for cx, cy in keep}
        self._occupied_centers = (keep + 0.5) * self.cell_size + self.origin_
        return self

    def is_occupied(self, points: np.ndarray) -> np.ndarray:
        """Whether each point falls in an occupied cell."""
        check_fitted(self, "occupied_")
        cells = self._cells(self._check(points))
        return np.array(
            [(int(cx), int(cy)) in self.occupied_ for cx, cy in cells], dtype=bool
        )

    def snap(self, points: np.ndarray) -> np.ndarray:
        """Move off-grid points to the center of the nearest occupied cell."""
        check_fitted(self, "occupied_")
        points = self._check(points)
        out = points.copy()
        off = ~self.is_occupied(points)
        if off.any():
            offenders = points[off]
            diffs = offenders[:, None, :] - self._occupied_centers[None, :, :]
            nearest = np.argmin(np.sum(diffs**2, axis=-1), axis=1)
            out[off] = self._occupied_centers[nearest]
        return out

    @property
    def n_occupied(self) -> int:
        check_fitted(self, "occupied_")
        return len(self.occupied_)

    def _check(self, points: np.ndarray) -> np.ndarray:
        points = check_2d(points, "points")
        if points.shape[1] != 2:
            raise ValueError(f"points must be (N, 2), got {points.shape}")
        return points

    def _cells(self, points: np.ndarray) -> np.ndarray:
        return np.floor((points - self.origin_) / self.cell_size).astype(int)
