"""Simple polygons: containment, nearest boundary point, area, sampling."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_2d


class Polygon:
    """A simple (non-self-intersecting) polygon given by its vertices.

    Vertices are (V, 2), in order, without repeating the first vertex at
    the end.  Supports vectorized point-in-polygon (even-odd rule),
    nearest-point projection onto the boundary, area, and uniform
    interior sampling by rejection.
    """

    def __init__(self, vertices: np.ndarray):
        vertices = check_2d(vertices, "vertices")
        if vertices.shape[1] != 2:
            raise ValueError(f"vertices must be (V, 2), got {vertices.shape}")
        if len(vertices) < 3:
            raise ValueError(f"a polygon needs at least 3 vertices, got {len(vertices)}")
        self.vertices = vertices
        self._x1 = vertices
        self._x2 = np.roll(vertices, -1, axis=0)

    @classmethod
    def rectangle(cls, x0: float, y0: float, x1: float, y1: float) -> "Polygon":
        """Axis-aligned rectangle from two opposite corners."""
        xa, xb = sorted((float(x0), float(x1)))
        ya, yb = sorted((float(y0), float(y1)))
        if xa == xb or ya == yb:
            raise ValueError("rectangle must have positive width and height")
        return cls(np.array([[xa, ya], [xb, ya], [xb, yb], [xa, yb]]))

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """(xmin, ymin, xmax, ymax)."""
        mins = self.vertices.min(axis=0)
        maxs = self.vertices.max(axis=0)
        return float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1])

    def area(self) -> float:
        """Shoelace area (always non-negative)."""
        x, y = self.vertices[:, 0], self.vertices[:, 1]
        return float(abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))) / 2.0)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Vectorized even-odd (ray casting) point-in-polygon test.

        Points exactly on an edge may land on either side; the floor-plan
        layer treats boundary points as accessible via a small tolerance
        in :meth:`FloorPlan.accessible`.
        """
        points = check_2d(points, "points")
        px = points[:, 0][:, None]
        py = points[:, 1][:, None]
        x1, y1 = self._x1[:, 0][None, :], self._x1[:, 1][None, :]
        x2, y2 = self._x2[:, 0][None, :], self._x2[:, 1][None, :]
        straddles = (y1 <= py) != (y2 <= py)
        # x coordinate where the edge crosses the horizontal ray
        with np.errstate(divide="ignore", invalid="ignore"):
            cross_x = x1 + (py - y1) * (x2 - x1) / (y2 - y1)
        hits = straddles & (px < cross_x)
        return hits.sum(axis=1) % 2 == 1

    def nearest_boundary_point(self, points: np.ndarray) -> np.ndarray:
        """Closest point on the polygon boundary for each query point."""
        points = check_2d(points, "points")
        seg_start = self._x1[None, :, :]  # (1, E, 2)
        seg_vec = (self._x2 - self._x1)[None, :, :]
        seg_len_sq = np.sum(seg_vec**2, axis=-1)  # (1, E)
        rel = points[:, None, :] - seg_start  # (N, E, 2)
        t = np.sum(rel * seg_vec, axis=-1) / np.where(seg_len_sq > 0, seg_len_sq, 1.0)
        t = np.clip(t, 0.0, 1.0)
        projections = seg_start + t[:, :, None] * seg_vec  # (N, E, 2)
        dist_sq = np.sum((points[:, None, :] - projections) ** 2, axis=-1)
        best = np.argmin(dist_sq, axis=1)
        return projections[np.arange(len(points)), best]

    def distance_to_boundary(self, points: np.ndarray) -> np.ndarray:
        """Unsigned Euclidean distance from each point to the boundary."""
        nearest = self.nearest_boundary_point(points)
        return np.linalg.norm(check_2d(points, "points") - nearest, axis=1)

    def sample_interior(self, n: int, rng=None, max_tries: int = 10_000) -> np.ndarray:
        """Uniform interior samples by rejection from the bounding box."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        rng = ensure_rng(rng)
        xmin, ymin, xmax, ymax = self.bounds
        samples = np.empty((n, 2))
        filled = 0
        for _attempt in range(max_tries):
            if filled >= n:
                break
            batch = max(n - filled, 16)
            candidates = np.column_stack(
                [
                    rng.uniform(xmin, xmax, size=batch),
                    rng.uniform(ymin, ymax, size=batch),
                ]
            )
            inside = candidates[self.contains(candidates)]
            take = min(len(inside), n - filled)
            samples[filled : filled + take] = inside[:take]
            filled += take
        if filled < n:
            raise RuntimeError(
                "rejection sampling failed; polygon area may be degenerate"
            )
        return samples
