"""Distance from points to line-segment sets (route polylines)."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d


def segment_distances(points: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Distance from each point to the nearest of a set of segments.

    Parameters
    ----------
    points:
        (N, 2) query points.
    segments:
        (S, 2, 2) array of segments: ``segments[s, 0]`` is one endpoint,
        ``segments[s, 1]`` the other.

    Returns
    -------
    (N,) minimum Euclidean distance to any segment.
    """
    points = check_2d(points, "points")
    segments = np.asarray(segments, dtype=float)
    if segments.ndim != 3 or segments.shape[1:] != (2, 2):
        raise ValueError(f"segments must be (S, 2, 2), got {segments.shape}")
    if len(segments) == 0:
        raise ValueError("need at least one segment")
    start = segments[:, 0, :][None, :, :]          # (1, S, 2)
    direction = (segments[:, 1, :] - segments[:, 0, :])[None, :, :]
    length_sq = np.sum(direction**2, axis=-1)      # (1, S)
    rel = points[:, None, :] - start               # (N, S, 2)
    t = np.sum(rel * direction, axis=-1) / np.where(length_sq > 0, length_sq, 1.0)
    t = np.clip(t, 0.0, 1.0)
    nearest = start + t[:, :, None] * direction
    distance = np.linalg.norm(points[:, None, :] - nearest, axis=-1)
    return distance.min(axis=1)


def route_graph_segments(nodes: np.ndarray, adjacency: dict) -> np.ndarray:
    """(S, 2, 2) segment array from a route graph (each edge once)."""
    nodes = check_2d(nodes, "nodes")
    segments = []
    for i, neighbors in adjacency.items():
        for j in neighbors:
            if i < j:  # undirected: emit each edge once
                segments.append([nodes[i], nodes[j]])
    if not segments:
        raise ValueError("route graph has no edges")
    return np.array(segments)
