"""Path dataset construction for IMU tracking, following §V-A exactly:

(1) randomly choose a reference location as start position,
(2) randomly choose a path length (in reference hops, ≤ 50) and
    determine the end position accordingly,
(3) concatenate the IMU readings between start and end as the input.

The paper obtained 6857 paths split 4389 / 1096 / 1372; the builder
parametrizes the counts and performs the same-style split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.imu import WalkRecording
from repro.nn.data import Dataset
from repro.utils.rng import ensure_rng

#: Paper's maximum path length, in reference-location hops.
MAX_PATH_LENGTH = 50


@dataclass
class PathSample:
    """One travel path: segment indices into the pooled segment store.

    ``start_heading`` is the walking direction at the start reference
    (radians, world frame).  Gyroscopes only observe heading *changes*,
    so the initial direction is genuinely unobservable from the IMU
    input; a deployed tracker knows it from its own recent state, and
    the recording protocol knows it from consecutive GPS fixes.
    """

    segment_indices: np.ndarray
    start_reference: int
    end_reference: int
    start_position: np.ndarray
    end_position: np.ndarray
    start_heading: float = 0.0

    @property
    def length(self) -> int:
        return len(self.segment_indices)

    @property
    def displacement(self) -> np.ndarray:
        return self.end_position - self.start_position


@dataclass
class PathDataset:
    """Pooled IMU segments plus path definitions over them.

    Attributes
    ----------
    segment_features:
        (S, F) featurized IMU segments (downsampled flattened readings).
    reference_positions:
        (R, 2) all reference locations across walks.
    paths:
        The path samples (train+val+test concatenated; use the split
        index arrays to address the subsets).
    max_length:
        Maximum path length in segments (pad target for the models).
    """

    segment_features: np.ndarray
    reference_positions: np.ndarray
    paths: list[PathSample]
    max_length: int
    train_indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    val_indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    test_indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    def __len__(self) -> int:
        return len(self.paths)

    @property
    def feature_dim(self) -> int:
        return self.segment_features.shape[1]

    def subset(self, indices: np.ndarray) -> list[PathSample]:
        return [self.paths[int(i)] for i in np.asarray(indices, dtype=int)]

    def end_positions(self, indices: np.ndarray) -> np.ndarray:
        return np.array([self.paths[int(i)].end_position for i in indices])

    def start_positions(self, indices: np.ndarray) -> np.ndarray:
        return np.array([self.paths[int(i)].start_position for i in indices])


def featurize_segment(segment: np.ndarray, downsample: int = 16) -> np.ndarray:
    """Flatten a (S, 6) IMU segment into a fixed-length feature vector.

    Readings are averaged in non-overlapping blocks of ``downsample``
    samples (anti-aliased decimation), then flattened channel-major.
    Matches the paper's projection-module input g_i ∈ R^{d×n} in spirit
    while keeping the vector small enough for CPU training.
    """
    segment = np.asarray(segment, dtype=float)
    if segment.ndim != 2 or segment.shape[1] != 6:
        raise ValueError(f"segment must be (S, 6), got {segment.shape}")
    if downsample < 1:
        raise ValueError(f"downsample must be >= 1, got {downsample}")
    s = segment.shape[0] - segment.shape[0] % downsample
    if s == 0:
        raise ValueError("segment shorter than the downsample factor")
    blocks = segment[:s].reshape(s // downsample, downsample, 6).mean(axis=1)
    return blocks.T.ravel()  # channel-major: all ax blocks, all ay blocks, ...


def build_path_dataset(
    walks: list[WalkRecording],
    n_paths: int = 2000,
    max_length: int = MAX_PATH_LENGTH,
    downsample: int = 16,
    split: tuple[float, float, float] = (0.64, 0.16, 0.20),
    rng=None,
) -> PathDataset:
    """Construct a :class:`PathDataset` from recorded walks.

    Paths never cross walk boundaries.  The split fractions default to
    the paper's 4389/1096/1372 proportions of 6857 (≈ 64/16/20 %).
    """
    if not walks:
        raise ValueError("need at least one walk")
    if n_paths <= 0:
        raise ValueError(f"n_paths must be positive, got {n_paths}")
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")
    if abs(sum(split) - 1.0) > 1e-9:
        raise ValueError(f"split fractions must sum to 1, got {split}")
    rng = ensure_rng(rng)

    features, positions = [], []
    walk_segment_offset, walk_ref_offset = [], []
    seg_count = ref_count = 0
    for walk in walks:
        walk_segment_offset.append(seg_count)
        walk_ref_offset.append(ref_count)
        for segment in walk.segments:
            features.append(featurize_segment(segment, downsample=downsample))
        positions.append(walk.references)
        seg_count += walk.n_segments
        ref_count += walk.n_references
    segment_features = np.array(features)
    reference_positions = np.vstack(positions)

    paths: list[PathSample] = []
    walk_ids = rng.integers(0, len(walks), size=n_paths)
    for walk_id in walk_ids:
        walk = walks[int(walk_id)]
        seg0 = walk_segment_offset[int(walk_id)]
        ref0 = walk_ref_offset[int(walk_id)]
        longest = min(max_length, walk.n_segments)
        start = int(rng.integers(0, walk.n_segments - 1 + 1))
        remaining = walk.n_segments - start
        length = int(rng.integers(1, min(longest, remaining) + 1))
        indices = np.arange(seg0 + start, seg0 + start + length)
        heading = (
            float(walk.headings[start]) if walk.headings is not None else 0.0
        )
        paths.append(
            PathSample(
                segment_indices=indices,
                start_reference=ref0 + start,
                end_reference=ref0 + start + length,
                start_position=walk.references[start].copy(),
                end_position=walk.references[start + length].copy(),
                start_heading=heading,
            )
        )

    order = rng.permutation(n_paths)
    n_train = int(round(split[0] * n_paths))
    n_val = int(round(split[1] * n_paths))
    return PathDataset(
        segment_features=segment_features,
        reference_positions=reference_positions,
        paths=paths,
        max_length=max_length,
        train_indices=order[:n_train],
        val_indices=order[n_train : n_train + n_val],
        test_indices=order[n_train + n_val :],
    )


class PaddedPathDataset(Dataset):
    """Adapts paths to the (input_vector, target_vector) Trainer interface.

    Each item's input is ``[flattened padded segment features | start
    encoding]`` built lazily — the full design matrix is never
    materialized (6857 × 50 × F would not fit comfortably in memory).
    Targets are supplied by a caller-provided function mapping a path to
    its target vector (class multi-hot, coordinates, ...).
    """

    def __init__(
        self,
        dataset: PathDataset,
        indices: np.ndarray,
        start_encoder,
        target_fn,
    ):
        self.dataset = dataset
        self.indices = np.asarray(indices, dtype=int)
        self.start_encoder = start_encoder
        self.target_fn = target_fn
        self._pad_width = dataset.max_length * dataset.feature_dim

    def __len__(self) -> int:
        return len(self.indices)

    def input_dim(self) -> int:
        probe = self[0][0]
        return probe.shape[0]

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        path = self.dataset.paths[int(self.indices[index])]
        feats = self.dataset.segment_features[path.segment_indices]
        flat = np.zeros(self._pad_width)
        flat[: feats.size] = feats.ravel()
        start = self.start_encoder(path)
        return np.concatenate([flat, start]), self.target_fn(path)
