"""UJIIndoorLoc-format fingerprint datasets: synthesis and CSV loading.

The real dataset (Torres-Sospedra et al., 2014) is a CSV with 520 WAP
RSSI columns (value 100 = "WAP not detected"), LONGITUDE, LATITUDE,
FLOOR, BUILDINGID and metadata columns.  ``load_uji_csv`` reads that
format when a file is available; ``generate_uji_like`` synthesizes a
campus with the same structural properties (see DESIGN.md §2).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field

import numpy as np

from repro.data.campus import (
    UJI_FLOORS,
    sample_reference_spots,
    uji_campus_plan,
)
from repro.data.rssi import RadioEnvironment, WirelessAccessPoint
from repro.geometry.floorplan import FloorPlan
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import check_lengths_match

#: UJIIndoorLoc's placeholder for a WAP that was not heard.
NOT_DETECTED = 100.0


def content_digest(arrays) -> str:
    """Stable hex digest of a sequence of arrays (shape + dtype + bytes).

    The single definition both :meth:`FingerprintDataset.content_fingerprint`
    and :func:`repro.serving.cache.dataset_fingerprint` hash through, so
    dataset cache keys can never diverge between the two paths.
    """
    import hashlib

    digest = hashlib.blake2b(digest_size=16)
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(repr((array.shape, str(array.dtype))).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()

#: Receiver sensitivity used when normalizing (dBm).
SENSITIVITY_DBM = -104.0


@dataclass
class FingerprintDataset:
    """A Wi-Fi fingerprint dataset in UJIIndoorLoc conventions.

    Attributes
    ----------
    rssi:
        (N, W) raw RSSI in dBm with ``NOT_DETECTED`` (=100) for unheard
        WAPs — exactly the on-disk convention.
    coordinates:
        (N, 2) longitude/latitude in meters (campus-local frame).
    floor:
        (N,) integer floor ids.
    building:
        (N,) integer building ids.
    plan:
        Optional FloorPlan of the accessible space (None when loaded
        from a real CSV, where no plan ships with the data).
    """

    rssi: np.ndarray
    coordinates: np.ndarray
    floor: np.ndarray
    building: np.ndarray
    plan: "FloorPlan | None" = None
    spot_ids: "np.ndarray | None" = field(default=None, repr=False)

    def __post_init__(self):
        self.rssi = np.asarray(self.rssi, dtype=float)
        self.coordinates = np.asarray(self.coordinates, dtype=float)
        self.floor = np.asarray(self.floor, dtype=int)
        self.building = np.asarray(self.building, dtype=int)
        check_lengths_match(self.rssi, self.coordinates, "rssi", "coordinates")
        check_lengths_match(self.rssi, self.floor, "rssi", "floor")
        check_lengths_match(self.rssi, self.building, "rssi", "building")
        self._fingerprint: "str | None" = None

    def content_fingerprint(self) -> str:
        """Memoized content digest of the arrays the models consume.

        Hashes shape, dtype, and bytes of rssi/coordinates/floor/building
        (the optional floor plan and spot ids affect no estimator).  The
        digest is computed **once** and never invalidated — datasets are
        treated as immutable after construction; derive changed data via
        :meth:`subset`/:meth:`split` or a new instance, never by mutating
        the arrays in place after fingerprinting.  This keeps repeated
        :class:`repro.serving.ModelCache` hits from re-paying the ~2 ms
        hashing cost that otherwise dominates the cache-hit path.
        """
        if self._fingerprint is None:
            self._fingerprint = content_digest(
                (self.rssi, self.coordinates, self.floor, self.building)
            )
        return self._fingerprint

    def __len__(self) -> int:
        return len(self.rssi)

    @property
    def n_aps(self) -> int:
        return self.rssi.shape[1]

    @property
    def n_buildings(self) -> int:
        return int(self.building.max()) + 1 if len(self.building) else 0

    @property
    def n_floors(self) -> int:
        return int(self.floor.max()) + 1 if len(self.floor) else 0

    def normalized_signals(self) -> np.ndarray:
        """Map raw RSSI into [0, 1] network inputs.

        ``NOT_DETECTED`` → 0; otherwise linear from sensitivity (0) to
        0 dBm (1).  This is the paper's "normalize the input vector".
        """
        signals = self.rssi.copy()
        unheard = signals == NOT_DETECTED
        signals[unheard] = SENSITIVITY_DBM
        signals = (signals - SENSITIVITY_DBM) / (0.0 - SENSITIVITY_DBM)
        return np.clip(signals, 0.0, 1.0)

    def subset(self, indices: np.ndarray) -> "FingerprintDataset":
        """A new dataset restricted to ``indices`` (plan shared)."""
        indices = np.asarray(indices, dtype=int)
        return FingerprintDataset(
            rssi=self.rssi[indices],
            coordinates=self.coordinates[indices],
            floor=self.floor[indices],
            building=self.building[indices],
            plan=self.plan,
            spot_ids=None if self.spot_ids is None else self.spot_ids[indices],
        )

    def split(
        self, fractions: tuple[float, ...] = (0.7, 0.1, 0.2), rng=None
    ) -> tuple["FingerprintDataset", ...]:
        """Random split into len(fractions) parts (must sum to 1)."""
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise ValueError(f"fractions must sum to 1, got {fractions}")
        rng = ensure_rng(rng)
        order = rng.permutation(len(self))
        counts = [int(round(f * len(self))) for f in fractions[:-1]]
        counts.append(len(self) - sum(counts))
        parts = []
        start = 0
        for count in counts:
            parts.append(self.subset(order[start : start + count]))
            start += count
        return tuple(parts)


def generate_uji_like(
    n_spots_per_building: int = 64,
    measurements_per_spot: int = 12,
    n_aps_per_floor: int = 10,
    n_floors: int = UJI_FLOORS,
    shadowing_sigma: float = 4.0,
    device_count: int = 8,
    device_offset_sigma: float = 3.0,
    seed=0,
) -> FingerprintDataset:
    """Synthesize a UJIIndoorLoc-like campus dataset.

    Structure reproduced from the real data: three buildings × four
    floors on a 397 m × 273 m campus; samples only on accessible space
    (courtyards excluded); repeated measurements per reference spot;
    per-device RSSI offsets (UJI used 25 Android device models);
    censoring of weak signals to ``NOT_DETECTED``.

    Scale parameters default to a laptop-friendly size (~2300 samples,
    120 WAPs); the benchmark harness raises them toward the real
    dataset's scale where runtime permits.
    """
    if measurements_per_spot <= 0:
        raise ValueError("measurements_per_spot must be positive")
    if device_count <= 0:
        raise ValueError("device_count must be positive")
    rng_spots, rng_aps, rng_radio, rng_device = spawn_rngs(seed, 4)
    _campus, buildings = uji_campus_plan()

    aps: list[WirelessAccessPoint] = []
    for building_plan in buildings:
        aps.extend(
            RadioEnvironment.place_grid(
                building_plan.bounds,
                per_floor=n_aps_per_floor,
                n_floors=n_floors,
                jitter=4.0,
                rng=rng_aps,
            )
        )
    radio = RadioEnvironment(aps, shadowing_sigma=shadowing_sigma)

    device_offsets = rng_device.normal(0.0, device_offset_sigma, size=device_count)

    all_rssi, all_xy, all_floor, all_building, all_spots = [], [], [], [], []
    spot_id_base = 0
    for building_id, building_plan in enumerate(buildings):
        spots = sample_reference_spots(
            building_plan, n_spots_per_building, min_separation=2.0, rng=rng_spots
        )
        # distribute reference spots over floors round-robin
        floors = np.arange(len(spots)) % n_floors
        for spot_index, (spot, floor) in enumerate(zip(spots, floors)):
            positions = np.tile(spot, (measurements_per_spot, 1))
            floor_ids = np.full(measurements_per_spot, floor)
            readings = radio.sample(positions, floor_ids, rng=rng_radio)
            devices = rng_device.integers(0, device_count, size=measurements_per_spot)
            readings = readings + device_offsets[devices][:, None]
            all_rssi.append(readings)
            all_xy.append(positions)
            all_floor.append(floor_ids)
            all_building.append(np.full(measurements_per_spot, building_id))
            all_spots.append(np.full(measurements_per_spot, spot_id_base + spot_index))
        spot_id_base += len(spots)

    rssi = np.vstack(all_rssi)
    rssi[np.isnan(rssi)] = NOT_DETECTED
    rssi[(rssi != NOT_DETECTED) & (rssi < SENSITIVITY_DBM)] = NOT_DETECTED
    campus_plan, _ = uji_campus_plan()
    return FingerprintDataset(
        rssi=rssi,
        coordinates=np.vstack(all_xy),
        floor=np.concatenate(all_floor),
        building=np.concatenate(all_building),
        plan=campus_plan,
        spot_ids=np.concatenate(all_spots),
    )


def save_uji_csv(dataset: FingerprintDataset, path: str) -> None:
    """Write a dataset in the standard UJIIndoorLoc CSV layout.

    Produces WAP001..WAPnnn, LONGITUDE, LATITUDE, FLOOR, BUILDINGID
    columns, so synthetic datasets can be consumed by third-party
    UJIIndoorLoc tooling and round-trip through :func:`load_uji_csv`.
    """
    header = [f"WAP{i + 1:03d}" for i in range(dataset.n_aps)] + [
        "LONGITUDE",
        "LATITUDE",
        "FLOOR",
        "BUILDINGID",
    ]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for i in range(len(dataset)):
            row = [
                "100" if value == NOT_DETECTED else f"{value:.4f}"
                for value in dataset.rssi[i]
            ]
            row.append(f"{dataset.coordinates[i, 0]:.6f}")
            row.append(f"{dataset.coordinates[i, 1]:.6f}")
            row.append(str(int(dataset.floor[i])))
            row.append(str(int(dataset.building[i])))
            writer.writerow(row)


def load_uji_csv(path: str) -> FingerprintDataset:
    """Load a real UJIIndoorLoc CSV (trainingData.csv / validationData.csv).

    Expects the standard 529-column layout: WAP001..WAP520, LONGITUDE,
    LATITUDE, FLOOR, BUILDINGID, then metadata.  Coordinates are shifted
    to a campus-local frame (min-subtracted) so they are comparable with
    the synthetic generator's meters.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        wap_columns = [i for i, name in enumerate(header) if name.startswith("WAP")]
        if not wap_columns:
            raise ValueError(f"{path} does not look like a UJIIndoorLoc CSV")
        column = {name: i for i, name in enumerate(header)}
        for required in ("LONGITUDE", "LATITUDE", "FLOOR", "BUILDINGID"):
            if required not in column:
                raise ValueError(f"{path} is missing required column {required}")
        rssi_rows, xy_rows, floors, buildings = [], [], [], []
        for row in reader:
            if not row:
                continue
            rssi_rows.append([float(row[i]) for i in wap_columns])
            xy_rows.append(
                [float(row[column["LONGITUDE"]]), float(row[column["LATITUDE"]])]
            )
            floors.append(int(float(row[column["FLOOR"]])))
            buildings.append(int(float(row[column["BUILDINGID"]])))
    coordinates = np.array(xy_rows)
    coordinates -= coordinates.min(axis=0)
    return FingerprintDataset(
        rssi=np.array(rssi_rows),
        coordinates=coordinates,
        floor=np.array(floors),
        building=np.array(buildings),
        plan=None,
    )
