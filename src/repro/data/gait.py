"""Human gait and IMU sensor model.

Synthesizes 3-axis accelerometer + 3-axis gyroscope streams for a
walking device, with the two failure properties the paper leans on:

* raw numerical double-integration diverges (accelerometer noise, gyro
  bias random walk, gravity leakage), so "physics only" tracking fails;
* the signal still *contains* displacement information (step cadence ∝
  speed, gyro-z ∝ turning), so a learned model can do far better.

Device frame: x = forward, y = lateral (left), z = up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng

#: Standard gravity, m/s².
GRAVITY = 9.81


@dataclass(frozen=True)
class IMUConfig:
    """Sensor and gait parameters.

    Defaults follow consumer-grade MEMS parts and average adult gait
    (step frequency ≈ 1.8 Hz at 1.4 m/s preferred walking speed).
    """

    sample_rate_hz: float = 50.0
    accel_noise_std: float = 0.4        # m/s², white
    gyro_noise_std: float = 0.02        # rad/s, white
    gyro_bias_walk_std: float = 0.003   # rad/s per √s random walk
    accel_bias_std: float = 0.05        # m/s², constant per recording
    step_frequency_hz: float = 1.8
    step_accel_amplitude: float = 1.8   # m/s² vertical bounce amplitude
    sway_amplitude: float = 0.5         # m/s² lateral sway amplitude
    speed_mps: float = 1.4

    def __post_init__(self):
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        if self.speed_mps <= 0:
            raise ValueError("speed_mps must be positive")


class GaitModel:
    """Render a piecewise-linear trajectory into IMU readings."""

    def __init__(self, config: "IMUConfig | None" = None):
        self.config = config or IMUConfig()

    def trajectory_to_imu(
        self,
        positions: np.ndarray,
        rng=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """IMU streams for a dense position trace sampled at the IMU rate.

        Parameters
        ----------
        positions:
            (T, 2) world positions at consecutive sample instants
            (spacing = speed / rate along the walk).

        Returns
        -------
        accel:
            (T, 3) device-frame accelerometer readings (m/s², gravity
            included on z).
        gyro:
            (T, 3) device-frame gyroscope readings (rad/s).
        """
        cfg = self.config
        rng = ensure_rng(rng)
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (T, 2), got {positions.shape}")
        t_count = len(positions)
        if t_count < 3:
            raise ValueError("need at least 3 position samples")
        dt = 1.0 / cfg.sample_rate_hz

        velocity = np.gradient(positions, dt, axis=0)            # (T, 2)
        acceleration = np.gradient(velocity, dt, axis=0)         # (T, 2)
        heading = np.unwrap(np.arctan2(velocity[:, 1], velocity[:, 0]))
        turn_rate = np.gradient(heading, dt)

        # world → device rotation of the horizontal acceleration
        cos_h, sin_h = np.cos(heading), np.sin(heading)
        forward = cos_h * acceleration[:, 0] + sin_h * acceleration[:, 1]
        lateral = -sin_h * acceleration[:, 0] + cos_h * acceleration[:, 1]

        # gait oscillations: vertical bounce + lateral sway at step cadence
        time = np.arange(t_count) * dt
        phase = 2.0 * np.pi * cfg.step_frequency_hz * time + rng.uniform(0, 2 * np.pi)
        bounce = cfg.step_accel_amplitude * np.sin(2.0 * phase)  # two peaks/stride
        sway = cfg.sway_amplitude * np.sin(phase)

        accel = np.empty((t_count, 3))
        accel[:, 0] = forward + 0.3 * cfg.step_accel_amplitude * np.sin(2.0 * phase)
        accel[:, 1] = lateral + sway
        accel[:, 2] = GRAVITY + bounce

        gyro = np.zeros((t_count, 3))
        gyro[:, 2] = turn_rate
        # slight roll/pitch wobble synchronized with gait
        gyro[:, 0] = 0.05 * np.sin(phase)
        gyro[:, 1] = 0.05 * np.sin(2.0 * phase + 0.7)

        # sensor corruptions
        accel += rng.normal(0.0, cfg.accel_noise_std, size=accel.shape)
        accel += rng.normal(0.0, cfg.accel_bias_std, size=(1, 3))
        gyro += rng.normal(0.0, cfg.gyro_noise_std, size=gyro.shape)
        bias_walk = np.cumsum(
            rng.normal(0.0, cfg.gyro_bias_walk_std * np.sqrt(dt), size=(t_count, 3)),
            axis=0,
        )
        gyro += bias_walk
        return accel, gyro

    def densify_waypoints(self, waypoints: np.ndarray) -> np.ndarray:
        """Resample a waypoint polyline at the IMU rate at constant speed."""
        cfg = self.config
        waypoints = np.asarray(waypoints, dtype=float)
        if waypoints.ndim != 2 or waypoints.shape[1] != 2 or len(waypoints) < 2:
            raise ValueError("waypoints must be (K>=2, 2)")
        deltas = np.diff(waypoints, axis=0)
        seg_len = np.linalg.norm(deltas, axis=1)
        cumulative = np.concatenate([[0.0], np.cumsum(seg_len)])
        total = cumulative[-1]
        if total <= 0:
            raise ValueError("waypoints have zero total length")
        step = cfg.speed_mps / cfg.sample_rate_hz
        arc = np.arange(0.0, total, step)
        x = np.interp(arc, cumulative, waypoints[:, 0])
        y = np.interp(arc, cumulative, waypoints[:, 1])
        return np.column_stack([x, y])
