"""IPIN2016-Tutorial-like dataset: single small building, fewer WAPs."""

from __future__ import annotations

import numpy as np

from repro.data.campus import ipin_building_plan, sample_reference_spots
from repro.data.rssi import RadioEnvironment
from repro.data.ujiindoor import (
    NOT_DETECTED,
    SENSITIVITY_DBM,
    FingerprintDataset,
)
from repro.utils.rng import spawn_rngs


def generate_ipin_like(
    n_spots: int = 80,
    measurements_per_spot: int = 10,
    n_aps: int = 24,
    n_floors: int = 2,
    shadowing_sigma: float = 3.0,
    seed=0,
) -> FingerprintDataset:
    """Synthesize the small single-building IPIN2016 Tutorial setting.

    One ~60 m × 30 m building with a central light-well, a couple of
    floors, dense WAP coverage.  The small space and lower shadowing make
    absolute errors land in the low meters, as in the paper's §IV-B
    (NObLe 1.13 m mean / 0.046 m median; Deep Regression 3.83 m).
    """
    rng_spots, rng_aps, rng_radio = spawn_rngs(seed, 3)
    plan = ipin_building_plan()
    aps = RadioEnvironment.place_grid(
        plan.bounds,
        per_floor=max(1, n_aps // n_floors),
        n_floors=n_floors,
        jitter=1.5,
        rng=rng_aps,
    )
    radio = RadioEnvironment(
        aps, path_loss_exponent=2.8, shadowing_sigma=shadowing_sigma
    )
    spots = sample_reference_spots(plan, n_spots, min_separation=1.0, rng=rng_spots)
    floors = np.arange(len(spots)) % n_floors

    positions = np.repeat(spots, measurements_per_spot, axis=0)
    floor_ids = np.repeat(floors, measurements_per_spot)
    spot_ids = np.repeat(np.arange(len(spots)), measurements_per_spot)
    rssi = radio.sample(positions, floor_ids, rng=rng_radio)
    rssi[np.isnan(rssi)] = NOT_DETECTED
    rssi[(rssi != NOT_DETECTED) & (rssi < SENSITIVITY_DBM)] = NOT_DETECTED
    return FingerprintDataset(
        rssi=rssi,
        coordinates=positions,
        floor=floor_ids,
        building=np.zeros(len(positions), dtype=int),
        plan=plan,
        spot_ids=spot_ids,
    )
