"""Campus geometries mirroring the paper's two Wi-Fi testbeds.

``uji_campus_plan`` builds a 397 m × 273 m campus with three ring-shaped
buildings (rectangular footprint with an open courtyard hole), matching
the structure visible in the paper's Fig. 1: the satellite view shows
three slab buildings whose interiors are partially open, and the paper
explicitly notes "the middle area of the top left building is not part
of buildings".

``ipin_building_plan`` is a single small building (IPIN2016 Tutorial
setting).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.floorplan import FloorPlan
from repro.geometry.polygon import Polygon
from repro.utils.rng import ensure_rng

#: Extent of the UJIIndoorLoc campus per the paper: 397 m × 273 m.
UJI_EXTENT = (397.0, 273.0)

#: Floors per building in UJIIndoorLoc.
UJI_FLOORS = 4

#: Number of buildings in UJIIndoorLoc.
UJI_BUILDINGS = 3


def uji_campus_plan() -> tuple[FloorPlan, list[FloorPlan]]:
    """The campus plan and the per-building plans.

    Returns
    -------
    campus:
        A single FloorPlan whose regions are the three building rings
        (courtyards are holes, i.e. inaccessible).
    buildings:
        One FloorPlan per building, in building-id order, arranged
        diagonally across the campus like UJI's Espaitec buildings.
    """
    # Three slabs, placed on a diagonal (as in the Fig. 1 satellite view).
    # Each building: outer footprint ~110 m × 65 m with an inner courtyard.
    layouts = [
        # (outer x0, y0, x1, y1)
        (20.0, 180.0, 150.0, 255.0),   # building 0: top left (has the courtyard)
        (130.0, 90.0, 265.0, 160.0),   # building 1: middle
        (245.0, 10.0, 380.0, 85.0),    # building 2: bottom right
    ]
    buildings: list[FloorPlan] = []
    regions: list[Polygon] = []
    holes: list[Polygon] = []
    for x0, y0, x1, y1 in layouts:
        outer = Polygon.rectangle(x0, y0, x1, y1)
        # courtyard: central hole leaving a ~18 m deep ring of usable space
        inset_x = 0.28 * (x1 - x0)
        inset_y = 0.30 * (y1 - y0)
        courtyard = Polygon.rectangle(
            x0 + inset_x, y0 + inset_y, x1 - inset_x, y1 - inset_y
        )
        regions.append(outer)
        holes.append(courtyard)
        buildings.append(FloorPlan([outer], holes=[courtyard]))
    return FloorPlan(regions, holes=holes), buildings


def ipin_building_plan() -> FloorPlan:
    """A single small building (~60 m × 30 m) with a lobby cutout."""
    outer = Polygon.rectangle(0.0, 0.0, 60.0, 30.0)
    lightwell = Polygon.rectangle(22.0, 10.0, 38.0, 20.0)
    return FloorPlan([outer], holes=[lightwell])


def sample_reference_spots(
    plan: FloorPlan,
    n_spots: int,
    min_separation: float = 1.0,
    rng=None,
    max_tries: int = 200_000,
) -> np.ndarray:
    """Sample fingerprinting reference locations on accessible space.

    Spots are drawn uniformly over the plan with Poisson-disk-style
    rejection: no two spots closer than ``min_separation``.  This mirrors
    the offline phase of fingerprinting, where surveyors sample a roughly
    even set of locations along accessible corridors.
    """
    if n_spots <= 0:
        raise ValueError(f"n_spots must be positive, got {n_spots}")
    if min_separation < 0:
        raise ValueError(f"min_separation must be >= 0, got {min_separation}")
    rng = ensure_rng(rng)
    spots: list[np.ndarray] = []
    for _attempt in range(max_tries):
        if len(spots) >= n_spots:
            break
        candidate = plan.sample(1, rng=rng)[0]
        if spots:
            existing = np.array(spots)
            if np.min(np.linalg.norm(existing - candidate, axis=1)) < min_separation:
                continue
        spots.append(candidate)
    if len(spots) < n_spots:
        raise RuntimeError(
            f"could only place {len(spots)}/{n_spots} spots with "
            f"min_separation={min_separation}; reduce the separation or spot count"
        )
    return np.array(spots)
