"""Log-distance path-loss radio model for Wi-Fi fingerprint synthesis.

The standard indoor propagation model (Bahl & Padmanabhan's RADAR used
the same family):

    RSSI(d) = tx_power - 10 * n * log10(max(d, d0) / d0)
              - floor_attenuation * |Δfloor| + X_sigma

with path-loss exponent ``n`` (2.0 free space … 4+ cluttered indoor),
log-normal shadowing X_sigma, and a per-floor attenuation factor.
Readings below the receiver sensitivity are censored to "not detected",
matching UJIIndoorLoc's +100 placeholder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_2d


@dataclass(frozen=True)
class WirelessAccessPoint:
    """A WAP: position in meters, floor index, transmit power in dBm."""

    x: float
    y: float
    floor: int = 0
    tx_power: float = -30.0

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)


class RadioEnvironment:
    """Generate RSSI fingerprints for a set of WAPs.

    Parameters
    ----------
    access_points:
        The deployed WAPs.
    path_loss_exponent:
        ``n`` in the log-distance model (3.0 default: cluttered indoor).
    shadowing_sigma:
        Standard deviation (dB) of log-normal shadowing noise.
    floor_attenuation:
        dB lost per floor between transmitter and receiver.
    floor_height:
        Vertical meters per floor (adds to the 3-D distance).
    sensitivity:
        Receiver sensitivity in dBm; weaker signals are censored.
    reference_distance:
        ``d0`` of the model, meters.
    """

    def __init__(
        self,
        access_points: list[WirelessAccessPoint],
        path_loss_exponent: float = 3.0,
        shadowing_sigma: float = 4.0,
        floor_attenuation: float = 15.0,
        floor_height: float = 3.0,
        sensitivity: float = -104.0,
        reference_distance: float = 1.0,
    ):
        if not access_points:
            raise ValueError("RadioEnvironment needs at least one access point")
        if path_loss_exponent <= 0:
            raise ValueError(
                f"path_loss_exponent must be positive, got {path_loss_exponent}"
            )
        if shadowing_sigma < 0:
            raise ValueError(f"shadowing_sigma must be >= 0, got {shadowing_sigma}")
        if reference_distance <= 0:
            raise ValueError(
                f"reference_distance must be positive, got {reference_distance}"
            )
        self.access_points = list(access_points)
        self.path_loss_exponent = float(path_loss_exponent)
        self.shadowing_sigma = float(shadowing_sigma)
        self.floor_attenuation = float(floor_attenuation)
        self.floor_height = float(floor_height)
        self.sensitivity = float(sensitivity)
        self.reference_distance = float(reference_distance)
        self._ap_xy = np.array([ap.position for ap in self.access_points])
        self._ap_floor = np.array([ap.floor for ap in self.access_points])
        self._ap_power = np.array([ap.tx_power for ap in self.access_points])

    @property
    def n_aps(self) -> int:
        return len(self.access_points)

    def mean_rssi(self, positions: np.ndarray, floors: np.ndarray) -> np.ndarray:
        """Noise-free expected RSSI, (N, W), before censoring."""
        positions = check_2d(positions, "positions")
        floors = np.asarray(floors, dtype=int)
        if len(floors) != len(positions):
            raise ValueError("positions and floors must have the same length")
        horizontal = np.linalg.norm(
            positions[:, None, :] - self._ap_xy[None, :, :], axis=-1
        )
        floor_delta = np.abs(floors[:, None] - self._ap_floor[None, :])
        vertical = floor_delta * self.floor_height
        distance = np.sqrt(horizontal**2 + vertical**2)
        distance = np.maximum(distance, self.reference_distance)
        loss = (
            10.0
            * self.path_loss_exponent
            * np.log10(distance / self.reference_distance)
        )
        return self._ap_power[None, :] - loss - self.floor_attenuation * floor_delta

    def sample(
        self, positions: np.ndarray, floors: np.ndarray, rng=None
    ) -> np.ndarray:
        """Noisy RSSI readings; censored values come back as ``nan``.

        Callers encode censored entries per their dataset convention
        (UJIIndoorLoc uses +100; see :mod:`repro.data.ujiindoor`).
        """
        rng = ensure_rng(rng)
        mean = self.mean_rssi(positions, floors)
        noisy = mean + rng.normal(0.0, self.shadowing_sigma, size=mean.shape)
        noisy[noisy < self.sensitivity] = np.nan
        return noisy

    @staticmethod
    def place_grid(
        bounds: tuple[float, float, float, float],
        per_floor: int,
        n_floors: int,
        tx_power: float = -30.0,
        jitter: float = 0.0,
        rng=None,
    ) -> list[WirelessAccessPoint]:
        """Deploy WAPs on a jittered grid covering ``bounds`` on every floor."""
        if per_floor <= 0 or n_floors <= 0:
            raise ValueError("per_floor and n_floors must be positive")
        rng = ensure_rng(rng)
        xmin, ymin, xmax, ymax = bounds
        cols = int(np.ceil(np.sqrt(per_floor)))
        rows = int(np.ceil(per_floor / cols))
        xs = np.linspace(xmin, xmax, cols + 2)[1:-1]
        ys = np.linspace(ymin, ymax, rows + 2)[1:-1]
        aps: list[WirelessAccessPoint] = []
        for floor in range(n_floors):
            count = 0
            for y in ys:
                for x in xs:
                    if count >= per_floor:
                        break
                    dx = rng.uniform(-jitter, jitter) if jitter else 0.0
                    dy = rng.uniform(-jitter, jitter) if jitter else 0.0
                    aps.append(
                        WirelessAccessPoint(
                            x=float(x + dx), y=float(y + dy), floor=floor,
                            tx_power=tx_power,
                        )
                    )
                    count += 1
        return aps
