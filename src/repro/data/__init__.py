"""Dataset substrate: radio / inertial simulators and format loaders.

Network access and the authors' private IMU dataset are unavailable, so
this subpackage synthesizes datasets with the structural properties the
paper's experiments rely on (see DESIGN.md §2 for the substitution
arguments).  Real UJIIndoorLoc CSVs are loaded transparently when a file
path is supplied.
"""

from repro.data.rssi import RadioEnvironment, WirelessAccessPoint
from repro.data.campus import (
    uji_campus_plan,
    ipin_building_plan,
    sample_reference_spots,
)
from repro.data.ujiindoor import (
    FingerprintDataset,
    generate_uji_like,
    load_uji_csv,
    save_uji_csv,
    NOT_DETECTED,
)
from repro.data.ipin import generate_ipin_like
from repro.data.gait import GaitModel, IMUConfig
from repro.data.imu import CampusWalkSimulator, WalkRecording
from repro.data.paths import PathDataset, build_path_dataset

__all__ = [
    "RadioEnvironment",
    "WirelessAccessPoint",
    "uji_campus_plan",
    "ipin_building_plan",
    "sample_reference_spots",
    "FingerprintDataset",
    "generate_uji_like",
    "load_uji_csv",
    "save_uji_csv",
    "NOT_DETECTED",
    "generate_ipin_like",
    "GaitModel",
    "IMUConfig",
    "CampusWalkSimulator",
    "WalkRecording",
    "PathDataset",
    "build_path_dataset",
]
