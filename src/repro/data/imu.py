"""Campus walk simulator for the IMU tracking application (§V-A).

Walks happen on a structured outdoor court of 160 m × 60 m: a route
graph of orthogonal pathways (perimeter loop plus cross paths), which is
exactly the kind of structure NObLe's output quantization exploits.
A walk is a non-backtracking random traversal of the route graph; every
``samples_per_segment`` IMU readings a reference location with (GPS)
coordinates is dropped, reproducing the paper's recording protocol
(177 reference locations, 768 readings per sensor axis between
consecutive references, ≈ 75 minutes of walking at 50 Hz).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.gait import GaitModel, IMUConfig
from repro.utils.rng import ensure_rng, spawn_rngs

#: Court extent from the paper: 160 m × 60 m.
COURT_EXTENT = (160.0, 60.0)

#: IMU readings per sensor axis between consecutive reference locations.
SAMPLES_PER_SEGMENT = 768


@dataclass
class WalkRecording:
    """One continuous walk: reference locations plus per-segment IMU data.

    Attributes
    ----------
    references:
        (R, 2) reference locations (world meters).
    segments:
        (R-1, S, 6) IMU readings between consecutive references; last
        axis is [ax, ay, az, gx, gy, gz].
    headings:
        (R,) walking direction (radians, world frame) at each reference
        — ground truth the recording protocol knows because references
        carry GPS fixes; dead-reckoning baselines consume it as their
        initial heading.
    """

    references: np.ndarray
    segments: np.ndarray
    headings: "np.ndarray | None" = None

    def __post_init__(self):
        self.references = np.asarray(self.references, dtype=float)
        self.segments = np.asarray(self.segments, dtype=float)
        if len(self.segments) != len(self.references) - 1:
            raise ValueError(
                f"expected {len(self.references) - 1} segments for "
                f"{len(self.references)} references, got {len(self.segments)}"
            )
        if self.headings is not None:
            self.headings = np.asarray(self.headings, dtype=float)
            if len(self.headings) != len(self.references):
                raise ValueError("headings must align with references")

    @property
    def n_references(self) -> int:
        return len(self.references)

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def duration_seconds(self) -> float:
        cfg_rate = 50.0  # informational; simulator always uses its config rate
        return self.segments.shape[0] * self.segments.shape[1] / cfg_rate


@dataclass
class RouteGraph:
    """Orthogonal pathway graph on the court: nodes and adjacency."""

    nodes: np.ndarray
    adjacency: "dict[int, list[int]]" = field(repr=False, default_factory=dict)

    def neighbors(self, node: int) -> list[int]:
        return self.adjacency[node]


def court_route_graph(
    extent: tuple[float, float] = COURT_EXTENT,
    margin: float = 5.0,
    n_cross_paths: int = 4,
) -> RouteGraph:
    """Pathway graph: a perimeter loop with ``n_cross_paths`` vertical cross
    paths, intersections as nodes, walkable edges along the grid lines."""
    width, height = extent
    if margin * 2 >= min(width, height):
        raise ValueError("margin too large for the court extent")
    xs = np.linspace(margin, width - margin, n_cross_paths + 2)
    ys = np.array([margin, height - margin])
    nodes = np.array([[x, y] for y in ys for x in xs])
    n_cols = len(xs)
    adjacency: dict[int, list[int]] = {i: [] for i in range(len(nodes))}
    for row in range(2):
        for col in range(n_cols):
            i = row * n_cols + col
            if col + 1 < n_cols:  # horizontal edge
                j = row * n_cols + col + 1
                adjacency[i].append(j)
                adjacency[j].append(i)
            if row == 0:  # vertical edge to the top row
                j = n_cols + col
                adjacency[i].append(j)
                adjacency[j].append(i)
    return RouteGraph(nodes=nodes, adjacency=adjacency)


class CampusWalkSimulator:
    """Generate :class:`WalkRecording` objects on the court route graph."""

    def __init__(
        self,
        imu_config: "IMUConfig | None" = None,
        route: "RouteGraph | None" = None,
        samples_per_segment: int = SAMPLES_PER_SEGMENT,
    ):
        if samples_per_segment < 8:
            raise ValueError("samples_per_segment must be at least 8")
        self.config = imu_config or IMUConfig()
        self.route = route or court_route_graph()
        self.samples_per_segment = int(samples_per_segment)
        self._gait = GaitModel(self.config)

    def random_walk_waypoints(self, n_legs: int, rng=None) -> np.ndarray:
        """A non-backtracking random traversal of the route graph."""
        if n_legs < 1:
            raise ValueError("n_legs must be at least 1")
        rng = ensure_rng(rng)
        current = int(rng.integers(len(self.route.nodes)))
        previous = -1
        waypoints = [self.route.nodes[current]]
        for _leg in range(n_legs):
            options = [n for n in self.route.neighbors(current) if n != previous]
            if not options:
                options = self.route.neighbors(current)
            previous, current = current, int(options[int(rng.integers(len(options)))])
            waypoints.append(self.route.nodes[current])
        return np.array(waypoints)

    def record_walk(self, n_references: int, rng=None) -> WalkRecording:
        """Walk until ``n_references`` reference locations are collected.

        The walker traverses random route legs; a reference is dropped
        every ``samples_per_segment`` IMU samples, with the walk's dense
        position trace rendered to IMU readings by the gait model.
        """
        if n_references < 2:
            raise ValueError("need at least 2 reference locations")
        rng_route, rng_imu = spawn_rngs(rng, 2)
        needed_samples = (n_references - 1) * self.samples_per_segment + 1
        distance_per_sample = self.config.speed_mps / self.config.sample_rate_hz
        needed_distance = needed_samples * distance_per_sample
        # route legs are >= ~25 m each; over-provision then trim
        mean_leg = 30.0
        n_legs = max(4, int(np.ceil(needed_distance / mean_leg)) + 2)
        waypoints = self.random_walk_waypoints(n_legs, rng=rng_route)
        dense = self._gait.densify_waypoints(waypoints)
        while len(dense) < needed_samples:
            extra = self.random_walk_waypoints(4, rng=rng_route)
            # continue from the current endpoint to keep the trace continuous
            extra = extra - extra[0] + dense[-1]
            dense = np.vstack([dense, self._gait.densify_waypoints(extra)[1:]])
        dense = dense[:needed_samples]
        accel, gyro = self._gait.trajectory_to_imu(dense, rng=rng_imu)
        imu = np.concatenate([accel, gyro], axis=1)  # (T, 6)

        ref_idx = np.arange(n_references) * self.samples_per_segment
        references = dense[ref_idx]
        segments = np.stack(
            [
                imu[ref_idx[i] : ref_idx[i + 1]]
                for i in range(n_references - 1)
            ]
        )
        velocity = np.gradient(dense, axis=0)
        headings = np.arctan2(velocity[ref_idx, 1], velocity[ref_idx, 0])
        return WalkRecording(
            references=references, segments=segments, headings=headings
        )

    def record_session(
        self, n_walks: int = 2, references_per_walk: int = 89, rng=None
    ) -> list[WalkRecording]:
        """The paper's protocol: two independent walks, 177 references total
        (89 + 88 by default at the paper's scale)."""
        if n_walks < 1:
            raise ValueError("n_walks must be at least 1")
        rngs = spawn_rngs(rng, n_walks)
        return [
            self.record_walk(references_per_walk, rng=rngs[i])
            for i in range(n_walks)
        ]
