"""The paper's Fig. 5(a) network as a single composite Module.

Input per sample (one flat vector, assembled by
:class:`repro.data.paths.PaddedPathDataset`):

    [ padded segment features (max_len × feat) | start encoding (S) ]

Forward:
  projection:  shared Linear+Tanh applied to every segment g_i
  displacement: MLP over the concatenated projections → vector V ∈ R²
  head:        MLP over [V | start encoding] → classification logits
               (NObLe) or coordinates (Deep Regression baseline)

Output per sample: ``[head output | V]`` so a MultiHeadLoss can
supervise both the end-location head and (optionally) the displacement
vector.  backward() routes gradients through both paths: the head's
gradient w.r.t. V is *added* to any direct supervision gradient on V.
"""

from __future__ import annotations

import numpy as np

from repro.nn.batchnorm import BatchNorm1d
from repro.nn.layers import Linear, Tanh
from repro.nn.module import Module, Sequential
from repro.utils.rng import ensure_rng


class TrackerNetwork(Module):
    """Projection + displacement + location modules (Fig. 5(a)).

    Parameters
    ----------
    max_len:
        Maximum number of path segments (50 in the paper); shorter paths
        arrive zero-padded and are masked out after projection.
    feature_dim:
        Flattened per-segment feature size.
    start_dim:
        Width of the start-position encoding (one-hot location class).
    head_dim:
        Output width of the location head: number of location classes
        for NObLe, 2 for the regression baseline.
    projection_dim, hidden:
        Projection embedding size and MLP width.
    """

    def __init__(
        self,
        max_len: int,
        feature_dim: int,
        start_dim: int,
        head_dim: int,
        projection_dim: int = 16,
        hidden: int = 128,
        rng=None,
    ):
        super().__init__()
        for name, value in [
            ("max_len", max_len),
            ("feature_dim", feature_dim),
            ("start_dim", start_dim),
            ("head_dim", head_dim),
            ("projection_dim", projection_dim),
            ("hidden", hidden),
        ]:
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        rng = ensure_rng(rng)
        self.max_len = int(max_len)
        self.feature_dim = int(feature_dim)
        self.start_dim = int(start_dim)
        self.head_dim = int(head_dim)
        self.projection_dim = int(projection_dim)
        self.hidden = int(hidden)

        self.projection = Linear(feature_dim, projection_dim, rng=rng)
        self.projection_act = Tanh()
        self.displacement = Sequential(
            Linear(max_len * projection_dim, hidden, rng=rng),
            BatchNorm1d(hidden),
            Tanh(),
            Linear(hidden, hidden, rng=rng),
            BatchNorm1d(hidden),
            Tanh(),
            Linear(hidden, 2, rng=rng),
        )
        self.location = Sequential(
            Linear(2 + start_dim, hidden, rng=rng),
            BatchNorm1d(hidden),
            Tanh(),
            Linear(hidden, head_dim, rng=rng),
        )
        self._cache: tuple | None = None
        self._backbone_frozen = False

    # -- backbone freezing (for the §V-B plug-in transfer) ---------------------
    def freeze_backbone(self, frozen: bool = True) -> "TrackerNetwork":
        """Freeze the projection + displacement modules.

        §V-B: "This module is not environment-specific, and a trained
        module can be plugged into other models designed for location
        tracking in other environments."  Freezing keeps the plugged-in
        modules in eval mode (batchnorm statistics untouched) while the
        location head trains on the new environment.
        """
        self._backbone_frozen = bool(frozen)
        if frozen:
            self.projection.train(False)
            self.displacement.train(False)
        return self

    @property
    def backbone_frozen(self) -> bool:
        return self._backbone_frozen

    def train(self, mode: bool = True) -> "TrackerNetwork":
        super().train(mode)
        if self._backbone_frozen and mode:
            self.projection.train(False)
            self.displacement.train(False)
        return self

    def head_parameters(self):
        """Parameters of the location head only (for frozen-backbone fits)."""
        return self.location.parameters()

    def backbone_state(self) -> dict:
        """State dict of the transferable modules (projection + displacement)."""
        state = {}
        for name, param in self.projection.named_parameters("projection."):
            state[name] = param.data.copy()
        for name, param in self.displacement.named_parameters("displacement."):
            state[name] = param.data.copy()
        for name, buf in self.displacement.named_buffers("displacement."):
            state[name] = buf.copy()
        return state

    def load_backbone_state(self, state: dict) -> None:
        """Load a backbone saved by :meth:`backbone_state`."""
        own = {}
        for name, param in self.projection.named_parameters("projection."):
            own[name] = param
        for name, param in self.displacement.named_parameters("displacement."):
            own[name] = param
        buffers = dict(self.displacement.named_buffers_refs("displacement."))
        for name, value in state.items():
            if name in own:
                if own[name].data.shape != value.shape:
                    raise ValueError(
                        f"backbone shape mismatch for {name}: "
                        f"{own[name].data.shape} vs {value.shape}"
                    )
                own[name].data[...] = value
            elif name in buffers:
                holder, attr = buffers[name]
                getattr(holder, attr)[...] = value
            else:
                raise KeyError(f"unexpected backbone key {name!r}")

    @property
    def input_dim(self) -> int:
        return self.max_len * self.feature_dim + self.start_dim

    @property
    def output_dim(self) -> int:
        return self.head_dim + 2

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(
                f"TrackerNetwork expected (N, {self.input_dim}), got {x.shape}"
            )
        batch = x.shape[0]
        seg_flat = x[:, : self.max_len * self.feature_dim]
        start = x[:, self.max_len * self.feature_dim :]
        segments = seg_flat.reshape(batch * self.max_len, self.feature_dim)
        # padded segments are all-zero feature vectors; mask them out after
        # projection so the projection bias cannot leak into the padding
        mask = (
            np.any(segments != 0.0, axis=1).astype(float).reshape(batch, self.max_len)
        )
        projected = self.projection_act(self.projection(segments))
        projected = projected.reshape(batch, self.max_len, self.projection_dim)
        projected = projected * mask[:, :, None]
        concat = projected.reshape(batch, self.max_len * self.projection_dim)
        displacement = self.displacement(concat)  # (N, 2)
        head_input = np.concatenate([displacement, start], axis=1)
        head_out = self.location(head_input)
        self._cache = (batch, mask)
        return np.concatenate([head_out, displacement], axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        batch, mask = self._cache
        grad_head = grad_output[:, : self.head_dim]
        grad_v_direct = grad_output[:, self.head_dim :]
        grad_head_input = self.location.backward(grad_head)  # (N, 2 + start)
        grad_v = grad_head_input[:, :2] + grad_v_direct
        grad_start = grad_head_input[:, 2:]
        grad_concat = self.displacement.backward(grad_v)
        grad_projected = grad_concat.reshape(batch, self.max_len, self.projection_dim)
        grad_projected = grad_projected * mask[:, :, None]
        grad_proj_flat = grad_projected.reshape(
            batch * self.max_len, self.projection_dim
        )
        grad_segments = self.projection.backward(
            self.projection_act.backward(grad_proj_flat)
        )
        grad_seg_flat = grad_segments.reshape(
            batch, self.max_len * self.feature_dim
        )
        return np.concatenate([grad_seg_flat, grad_start], axis=1)

    def predict_displacement(self, x: np.ndarray) -> np.ndarray:
        """Displacement vectors only (the plug-in module of §V-B)."""
        out = self.forward(np.asarray(x, dtype=float))
        return out[:, self.head_dim :]

    def flops_per_inference(self) -> int:
        """FLOPs for a single sample (used by :mod:`repro.energy`)."""
        from repro.energy.flops import count_flops

        proj = 2 * self.feature_dim * self.projection_dim + self.projection_dim
        total = self.max_len * (proj + self.projection_dim)  # + tanh
        total += count_flops(self.displacement)
        total += count_flops(self.location)
        return int(total)
