"""NObLe for IMU device tracking (§V-B).

Output space quantization at τ = 0.4 m over path ending locations; the
model predicts the ending neighborhood class from (IMU sequence, start
class); inference looks up the class centroid.  An auxiliary MSE head on
the displacement vector supervises the displacement module directly
(the paper describes the displacement network as predicting "the
displacement vector of a user's travel path").
"""

from __future__ import annotations

import numpy as np

from repro.data.paths import PaddedPathDataset, PathDataset, PathSample
from repro.nn import (
    Adam,
    BCEWithLogitsLoss,
    DataLoader,
    MSELoss,
    MultiHeadLoss,
    Trainer,
    TrainingHistory,
)
from repro.quantization.grid import GridQuantizer
from repro.quantization.labels import multi_hot
from repro.tracking.network import TrackerNetwork
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class NObLeTracker:
    """The paper's IMU tracker.

    Parameters
    ----------
    tau:
        Quantization grid size for ending locations (0.4 m in §V-B).
    projection_dim, hidden:
        Network sizes (see :class:`TrackerNetwork`).
    displacement_weight:
        Weight of the auxiliary MSE loss on the displacement vector
        (0 disables it; the class head still trains the whole network).
    """

    def __init__(
        self,
        tau: float = 0.4,
        projection_dim: int = 16,
        hidden: int = 128,
        displacement_weight: float = 1.0,
        epochs: int = 40,
        batch_size: int = 64,
        lr: float = 1e-3,
        patience: int = 8,
        seed=0,
    ):
        self.tau = float(tau)
        self.projection_dim = int(projection_dim)
        self.hidden = int(hidden)
        self.displacement_weight = float(displacement_weight)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.patience = int(patience)
        self.seed = seed

        self.network_: "TrackerNetwork | None" = None
        self.quantizer_: "GridQuantizer | None" = None
        self.displacement_scale_: "float | None" = None
        self.history_: "TrainingHistory | None" = None

    # --------------------------------------------------------------- training
    def fit(self, data: PathDataset) -> "NObLeTracker":
        rng = ensure_rng(self.seed)
        train_paths = data.subset(data.train_indices)
        if not train_paths:
            raise ValueError("PathDataset has no training paths")
        end_positions = np.array([p.end_position for p in train_paths])
        self.quantizer_ = GridQuantizer(self.tau).fit(end_positions)
        n_classes = self.quantizer_.n_classes

        displacements = np.array([p.displacement for p in train_paths])
        scale = float(np.std(displacements))
        self.displacement_scale_ = scale if scale > 0 else 1.0

        self.network_ = TrackerNetwork(
            max_len=data.max_length,
            feature_dim=data.feature_dim,
            start_dim=n_classes + 2,  # one-hot start class + [cos θ0, sin θ0]
            head_dim=n_classes,
            projection_dim=self.projection_dim,
            hidden=self.hidden,
            rng=rng,
        )
        self._apply_transfer()
        loss = MultiHeadLoss(
            {
                "location": (slice(0, n_classes), BCEWithLogitsLoss(), 1.0),
                "displacement": (
                    slice(n_classes, n_classes + 2),
                    MSELoss(),
                    self.displacement_weight,
                ),
            }
        )
        trainable = (
            self.network_.head_parameters()
            if self.network_.backbone_frozen
            else self.network_.parameters()
        )
        trainer = Trainer(self.network_, loss, Adam(trainable, lr=self.lr))
        train_loader = DataLoader(
            self._adapt(data, data.train_indices),
            batch_size=self.batch_size,
            drop_last=True,
            rng=rng,
        )
        if len(data.val_indices):
            val_loader = DataLoader(
                self._adapt(data, data.val_indices),
                batch_size=self.batch_size,
                shuffle=False,
            )
            self.history_ = trainer.fit(
                train_loader,
                epochs=self.epochs,
                val_loader=val_loader,
                patience=self.patience,
            )
        else:
            self.history_ = trainer.fit(train_loader, epochs=self.epochs)
        return self

    def _adapt(self, data: PathDataset, indices: np.ndarray) -> PaddedPathDataset:
        n_classes = self.quantizer_.n_classes
        scale = self.displacement_scale_

        def start_encoder(path: PathSample) -> np.ndarray:
            class_id = self.quantizer_.transform(
                path.start_position[None, :], strict=False
            )[0]
            one_hot = multi_hot(np.array([class_id]), n_classes)[0]
            heading = np.array(
                [np.cos(path.start_heading), np.sin(path.start_heading)]
            )
            return np.concatenate([one_hot, heading])

        def target_fn(path: PathSample) -> np.ndarray:
            end_id = self.quantizer_.transform(
                path.end_position[None, :], strict=False
            )[0]
            class_target = multi_hot(np.array([end_id]), n_classes)[0]
            return np.concatenate([class_target, path.displacement / scale])

        return PaddedPathDataset(data, indices, start_encoder, target_fn)

    # --------------------------------------------------------------- transfer
    def transfer(
        self,
        data: PathDataset,
        freeze_backbone: bool = True,
        epochs: "int | None" = None,
        lr: "float | None" = None,
    ) -> "NObLeTracker":
        """Plug this tracker's displacement module into a new environment.

        Reproduces §V-B's claim that the displacement network "is not
        environment-specific": a new tracker is built for ``data`` (new
        quantizer, new location head), the projection + displacement
        weights are copied over, and — with ``freeze_backbone`` — only
        the location head trains on the new environment's paths.

        Returns the new fitted tracker; ``self`` is left untouched.
        """
        check_fitted(self, "network_")
        target = NObLeTracker(
            tau=self.tau,
            projection_dim=self.projection_dim,
            hidden=self.hidden,
            # frozen backbone: displacement supervision would be wasted
            displacement_weight=0.0 if freeze_backbone else self.displacement_weight,
            epochs=epochs if epochs is not None else self.epochs,
            batch_size=self.batch_size,
            lr=lr if lr is not None else self.lr,
            patience=self.patience,
            seed=self.seed,
        )
        if data.feature_dim != self.network_.feature_dim:
            raise ValueError(
                "new environment's featurization width "
                f"({data.feature_dim}) does not match the trained backbone "
                f"({self.network_.feature_dim})"
            )
        if data.max_length != self.network_.max_len:
            raise ValueError(
                f"new environment's max path length ({data.max_length}) must "
                f"match the trained backbone ({self.network_.max_len})"
            )
        backbone = self.network_.backbone_state()
        # keep the source displacement normalization: the plugged-in module
        # was trained to emit displacements on that scale
        target._transfer_setup = (backbone, freeze_backbone, self.displacement_scale_)
        target.fit(data)
        return target

    _transfer_setup: "tuple | None" = None

    def _apply_transfer(self) -> None:
        if self._transfer_setup is None:
            return
        backbone, freeze, scale = self._transfer_setup
        self.network_.load_backbone_state(backbone)
        if freeze:
            self.network_.freeze_backbone(True)
        self.displacement_scale_ = scale

    # -------------------------------------------------------------- inference
    def predict_coordinates(self, data: PathDataset, indices: np.ndarray) -> np.ndarray:
        """End-position estimates for the paths at ``indices``."""
        check_fitted(self, "network_")
        classes = self.predict_classes(data, indices)
        return self.quantizer_.inverse_transform(classes)

    def predict_classes(self, data: PathDataset, indices: np.ndarray) -> np.ndarray:
        check_fitted(self, "network_")
        self.network_.eval()
        adapted = self._adapt(data, indices)
        n_classes = self.quantizer_.n_classes
        out = np.empty(len(adapted), dtype=int)
        for start in range(0, len(adapted), self.batch_size):
            stop = min(start + self.batch_size, len(adapted))
            batch = np.stack([adapted[i][0] for i in range(start, stop)])
            logits = self.network_(batch)[:, :n_classes]
            out[start:stop] = logits.argmax(axis=1)
        return out

    def predict_displacements(
        self, data: PathDataset, indices: np.ndarray
    ) -> np.ndarray:
        """Displacement-module outputs, de-normalized to meters."""
        check_fitted(self, "network_")
        self.network_.eval()
        adapted = self._adapt(data, indices)
        out = np.empty((len(adapted), 2))
        for start in range(0, len(adapted), self.batch_size):
            stop = min(start + self.batch_size, len(adapted))
            batch = np.stack([adapted[i][0] for i in range(start, stop)])
            out[start:stop] = self.network_.predict_displacement(batch)
        return out * self.displacement_scale_
