"""Map-aided heuristic tracking in the spirit of [8] (Gonzalez et al.,
DATE 2017) and LocMe [19].

The cited systems hand-transfer map knowledge into rules: "turns can
only be made on specific points on the map", so a detected turn snaps
the position estimate to the nearest map corner, resetting accumulated
drift.  This comparator runs PDR and applies exactly that rule using
the route-graph nodes; the paper quotes [8] at 4.3 m mean error.
"""

from __future__ import annotations

import numpy as np

from repro.data.gait import GRAVITY, IMUConfig
from repro.data.paths import PathDataset
from repro.tracking.dead_reckoning import DeadReckoningTracker
from repro.utils.validation import check_fitted


class MapCorrectedTracker:
    """PDR + turn-triggered snap to the nearest route corner.

    Parameters
    ----------
    raw_segments:
        (S, T, 6) raw IMU segments (pooled indexing, like
        :class:`DeadReckoningTracker`).
    corners:
        (K, 2) positions where turns are possible (route-graph nodes).
    turn_rate_threshold:
        |gyro-z| (rad/s, smoothed) above which a turn is declared.
    snap_radius:
        Only snap when the current estimate is within this distance of
        some corner (avoids teleporting across the map).
    """

    def __init__(
        self,
        raw_segments: np.ndarray,
        corners: np.ndarray,
        config: "IMUConfig | None" = None,
        initial_headings: "np.ndarray | None" = None,
        turn_rate_threshold: float = 0.5,
        snap_radius: float = 25.0,
    ):
        self.raw_segments = np.asarray(raw_segments, dtype=float)
        if self.raw_segments.ndim != 3 or self.raw_segments.shape[2] != 6:
            raise ValueError(
                f"raw_segments must be (S, T, 6), got {self.raw_segments.shape}"
            )
        self.corners = np.asarray(corners, dtype=float)
        if self.corners.ndim != 2 or self.corners.shape[1] != 2:
            raise ValueError(f"corners must be (K, 2), got {self.corners.shape}")
        self.config = config or IMUConfig()
        self.initial_headings = initial_headings
        self.turn_rate_threshold = float(turn_rate_threshold)
        self.snap_radius = float(snap_radius)
        self._fitted = True

    def fit(self, data: PathDataset) -> "MapCorrectedTracker":
        DeadReckoningTracker.fit(self, data)  # same coverage validation
        return self

    def predict_coordinates(self, data: PathDataset, indices: np.ndarray) -> np.ndarray:
        check_fitted(self, "_fitted")
        out = np.empty((len(indices), 2))
        for row, index in enumerate(np.asarray(indices, dtype=int)):
            path = data.paths[int(index)]
            imu = self.raw_segments[path.segment_indices].reshape(-1, 6)
            heading0 = (
                float(self.initial_headings[path.start_reference])
                if self.initial_headings is not None
                else 0.0
            )
            out[row] = self._track(imu, path.start_position, heading0)
        return out

    def _track(
        self, imu: np.ndarray, start: np.ndarray, initial_heading: float
    ) -> np.ndarray:
        cfg = self.config
        dt = 1.0 / cfg.sample_rate_hz
        stride = cfg.speed_mps / cfg.step_frequency_hz
        heading = initial_heading + np.cumsum(imu[:, 5]) * dt
        smooth = _moving_average(imu[:, 5], max(1, int(0.5 * cfg.sample_rate_hz)))
        vertical = imu[:, 2] - GRAVITY
        min_gap = max(1, int(0.35 * cfg.sample_rate_hz))

        position = np.asarray(start, dtype=float).copy()
        last_step = -min_gap
        turn_active = False
        for t in range(1, len(imu) - 1):
            # step advance
            is_peak = (
                vertical[t] > 1.0
                and vertical[t] >= vertical[t - 1]
                and vertical[t] >= vertical[t + 1]
            )
            if is_peak and t - last_step >= min_gap:
                last_step = t
                position += stride * np.array(
                    [np.cos(heading[t]), np.sin(heading[t])]
                )
            # turn detection with hysteresis: snap once per turn event
            turning = abs(smooth[t]) > self.turn_rate_threshold
            if turning and not turn_active:
                turn_active = True
                distances = np.linalg.norm(self.corners - position, axis=1)
                nearest = int(np.argmin(distances))
                if distances[nearest] <= self.snap_radius:
                    position = self.corners[nearest].copy()
            elif not turning:
                turn_active = False
        return position


def _moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    if window <= 1:
        return np.asarray(signal, dtype=float)
    kernel = np.ones(window) / window
    return np.convolve(signal, kernel, mode="same")
