"""Coarse-grained ML tracking in the spirit of [8] (Gonzalez et al.).

[8] predicts per-window travel quantities with classical ML ("nearest
neighbors and random forest regression to predict the travel distance")
and chains them along the walk.  Our comparator predicts each segment's
motion in its own heading frame — (forward, lateral) displacement plus
heading change — with a random forest (or kNN), then integrates:

    θ_{i+1} = θ_i + Δθ̂_i
    p_{i+1} = p_i + R(θ_i) · v̂_i

Heading-frame targets make the regression pose-invariant, which is what
lets a *coarse-grained* model work at all; drift still accumulates with
path length, which is why [8] needs its map-snapping rule (see
:class:`repro.tracking.map_correction.MapCorrectedTracker`).
"""

from __future__ import annotations

import numpy as np

from repro.data.imu import WalkRecording
from repro.data.paths import PathDataset, featurize_segment
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn_regressor import KNNRegressor
from repro.utils.validation import check_fitted


class MLDistanceTracker:
    """Per-segment motion regression chained into an end-position estimate.

    Parameters
    ----------
    model:
        ``"forest"`` (default) or ``"knn"``.
    downsample:
        Featurization decimation — must match the PathDataset the
        tracker is evaluated against.
    """

    def __init__(
        self,
        model: str = "forest",
        downsample: int = 16,
        n_estimators: int = 40,
        max_depth: "int | None" = 12,
        k: int = 5,
        seed=0,
    ):
        if model not in ("forest", "knn"):
            raise ValueError(f"model must be 'forest' or 'knn', got {model!r}")
        self.model_kind = model
        self.downsample = int(downsample)
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.k = int(k)
        self.seed = seed
        self.regressor_ = None
        self._features: "np.ndarray | None" = None

    def fit_walks(self, walks: "list[WalkRecording]") -> "MLDistanceTracker":
        """Train on every recorded segment's (features → motion) pair."""
        if not walks:
            raise ValueError("need at least one walk")
        features, targets = [], []
        for walk in walks:
            if walk.headings is None:
                raise ValueError("walks must carry headings (see WalkRecording)")
            for i in range(walk.n_segments):
                features.append(
                    featurize_segment(walk.segments[i], downsample=self.downsample)
                )
                theta = walk.headings[i]
                delta = walk.references[i + 1] - walk.references[i]
                # rotate the world displacement into the segment's frame
                cos_t, sin_t = np.cos(-theta), np.sin(-theta)
                local = np.array(
                    [
                        cos_t * delta[0] - sin_t * delta[1],
                        sin_t * delta[0] + cos_t * delta[1],
                    ]
                )
                dtheta = _wrap_angle(walk.headings[i + 1] - theta)
                targets.append(np.array([local[0], local[1], dtheta]))
        x = np.array(features)
        y = np.array(targets)
        self._features = x
        if self.model_kind == "forest":
            self.regressor_ = RandomForestRegressor(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                rng=self.seed,
            )
        else:
            self.regressor_ = KNNRegressor(k=self.k, weights="distance")
        self.regressor_.fit(x, y)
        return self

    def fit(self, data: PathDataset) -> "MLDistanceTracker":
        """Tracker-API compatibility: validates the feature store matches."""
        check_fitted(self, "regressor_")
        if data.feature_dim != self._features.shape[1]:
            raise ValueError(
                "PathDataset featurization does not match this tracker's "
                f"downsample: {data.feature_dim} vs {self._features.shape[1]}"
            )
        return self

    def predict_coordinates(self, data: PathDataset, indices: np.ndarray) -> np.ndarray:
        check_fitted(self, "regressor_")
        out = np.empty((len(indices), 2))
        for row, index in enumerate(np.asarray(indices, dtype=int)):
            path = data.paths[int(index)]
            features = data.segment_features[path.segment_indices]
            motion = self.regressor_.predict(features)
            if motion.ndim == 1:
                motion = motion[None, :]
            position = path.start_position.astype(float).copy()
            theta = float(path.start_heading)
            for vx, vy, dtheta in motion:
                cos_t, sin_t = np.cos(theta), np.sin(theta)
                position += np.array(
                    [cos_t * vx - sin_t * vy, sin_t * vx + cos_t * vy]
                )
                theta += dtheta
            out[row] = position
        return out


def _wrap_angle(angle: float) -> float:
    """Wrap to (-π, π]."""
    wrapped = (angle + np.pi) % (2.0 * np.pi) - np.pi
    return float(wrapped)
