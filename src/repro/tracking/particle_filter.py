"""Particle-filter map matching — a LocMe [19]-style comparator.

LocMe "exploits human locomotion and the map" by continuously
constraining the position estimate to legal space.  The classical
mechanism is a particle filter: particles propagate with the pedestrian
motion model (step length + gyro heading, with noise) and are
re-weighted by map consistency — particles that stray off the route
lose weight and are resampled away.  End-position estimate = weighted
particle mean.
"""

from __future__ import annotations

import numpy as np

from repro.data.gait import GRAVITY, IMUConfig
from repro.data.paths import PathDataset
from repro.geometry.segments import segment_distances
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class ParticleFilterTracker:
    """Map-constrained particle filter over raw IMU segments.

    Parameters
    ----------
    raw_segments:
        (S, T, 6) raw IMU segments (pooled PathDataset indexing).
    route_segments:
        (E, 2, 2) legal-route segments (see
        :func:`repro.geometry.segments.route_graph_segments`).
    n_particles:
        Particle count.
    map_sigma:
        Soft map constraint: particle weight ∝ exp(−d²/2σ²) where d is
        the distance to the route.
    """

    def __init__(
        self,
        raw_segments: np.ndarray,
        route_segments: np.ndarray,
        config: "IMUConfig | None" = None,
        initial_headings: "np.ndarray | None" = None,
        n_particles: int = 200,
        map_sigma: float = 3.0,
        step_noise: float = 0.15,
        heading_noise: float = 0.05,
        seed=0,
    ):
        self.raw_segments = np.asarray(raw_segments, dtype=float)
        if self.raw_segments.ndim != 3 or self.raw_segments.shape[2] != 6:
            raise ValueError(
                f"raw_segments must be (S, T, 6), got {self.raw_segments.shape}"
            )
        self.route_segments = np.asarray(route_segments, dtype=float)
        if self.route_segments.ndim != 3:
            raise ValueError("route_segments must be (E, 2, 2)")
        if n_particles < 2:
            raise ValueError(f"n_particles must be >= 2, got {n_particles}")
        if map_sigma <= 0:
            raise ValueError(f"map_sigma must be positive, got {map_sigma}")
        self.config = config or IMUConfig()
        self.initial_headings = initial_headings
        self.n_particles = int(n_particles)
        self.map_sigma = float(map_sigma)
        self.step_noise = float(step_noise)
        self.heading_noise = float(heading_noise)
        self.seed = seed
        self._fitted = True

    def fit(self, data: PathDataset) -> "ParticleFilterTracker":
        max_index = max(int(p.segment_indices.max()) for p in data.paths)
        if max_index >= len(self.raw_segments):
            raise ValueError(
                "raw_segments store is smaller than the dataset's segment index space"
            )
        return self

    def predict_coordinates(self, data: PathDataset, indices: np.ndarray) -> np.ndarray:
        check_fitted(self, "_fitted")
        rng = ensure_rng(self.seed)
        out = np.empty((len(indices), 2))
        for row, index in enumerate(np.asarray(indices, dtype=int)):
            path = data.paths[int(index)]
            imu = self.raw_segments[path.segment_indices].reshape(-1, 6)
            heading0 = (
                float(self.initial_headings[path.start_reference])
                if self.initial_headings is not None
                else float(path.start_heading)
            )
            out[row] = self._run_filter(imu, path.start_position, heading0, rng)
        return out

    # ------------------------------------------------------------------ core
    def _run_filter(
        self,
        imu: np.ndarray,
        start: np.ndarray,
        initial_heading: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        cfg = self.config
        dt = 1.0 / cfg.sample_rate_hz
        stride = cfg.speed_mps / cfg.step_frequency_hz
        gyro_heading = initial_heading + np.cumsum(imu[:, 5]) * dt
        vertical = imu[:, 2] - GRAVITY
        min_gap = max(1, int(0.35 * cfg.sample_rate_hz))

        positions = np.tile(np.asarray(start, dtype=float), (self.n_particles, 1))
        headings = np.full(self.n_particles, initial_heading) + rng.normal(
            0.0, self.heading_noise, size=self.n_particles
        )
        weights = np.full(self.n_particles, 1.0 / self.n_particles)

        last_step = -min_gap
        last_heading = initial_heading
        for t in range(1, len(imu) - 1):
            is_peak = (
                vertical[t] > 1.0
                and vertical[t] >= vertical[t - 1]
                and vertical[t] >= vertical[t + 1]
            )
            if not (is_peak and t - last_step >= min_gap):
                continue
            last_step = t
            turn = gyro_heading[t] - last_heading
            last_heading = gyro_heading[t]
            # propagate: per-particle heading follows the gyro increment
            headings += turn + rng.normal(
                0.0, self.heading_noise, size=self.n_particles
            )
            steps = stride + rng.normal(
                0.0, self.step_noise * stride, size=self.n_particles
            )
            positions[:, 0] += steps * np.cos(headings)
            positions[:, 1] += steps * np.sin(headings)
            # re-weight by map consistency and resample on degeneracy
            distances = segment_distances(positions, self.route_segments)
            weights *= np.exp(-0.5 * (distances / self.map_sigma) ** 2)
            total = weights.sum()
            if total <= 1e-300:
                weights[:] = 1.0 / self.n_particles
            else:
                weights /= total
            effective = 1.0 / np.sum(weights**2)
            if effective < self.n_particles / 2:
                chosen = rng.choice(
                    self.n_particles, size=self.n_particles, p=weights
                )
                positions = positions[chosen]
                headings = headings[chosen] + rng.normal(
                    0.0, self.heading_noise / 2, size=self.n_particles
                )
                weights[:] = 1.0 / self.n_particles
        return np.average(positions, axis=0, weights=weights)
