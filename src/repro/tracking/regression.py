"""Deep Regression tracking baseline (Table III).

Same projection + displacement trunk as NObLe, but the head regresses
end coordinates directly with MSE — no output quantization, no
structure awareness.
"""

from __future__ import annotations

import numpy as np

from repro.data.paths import PaddedPathDataset, PathDataset, PathSample
from repro.nn import Adam, DataLoader, MSELoss, Trainer, TrainingHistory
from repro.nn.losses import MultiHeadLoss
from repro.quantization.grid import GridQuantizer
from repro.quantization.labels import multi_hot
from repro.tracking.network import TrackerNetwork
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class DeepRegressionTracker:
    """Regression tracker: head outputs standardized end coordinates."""

    def __init__(
        self,
        projection_dim: int = 16,
        hidden: int = 128,
        start_tau: float = 0.4,
        # the paper's baseline "is trained with mean square error ... and
        # directly predicts coordinates": no displacement supervision
        displacement_weight: float = 0.0,
        epochs: int = 40,
        batch_size: int = 64,
        lr: float = 1e-3,
        patience: int = 8,
        seed=0,
    ):
        self.projection_dim = int(projection_dim)
        self.hidden = int(hidden)
        self.start_tau = float(start_tau)
        self.displacement_weight = float(displacement_weight)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.patience = int(patience)
        self.seed = seed

        self.network_: "TrackerNetwork | None" = None
        self.start_quantizer_: "GridQuantizer | None" = None
        self.coord_mean_: "np.ndarray | None" = None
        self.coord_std_: "np.ndarray | None" = None
        self.displacement_scale_: "float | None" = None
        self.history_: "TrainingHistory | None" = None

    def fit(self, data: PathDataset) -> "DeepRegressionTracker":
        rng = ensure_rng(self.seed)
        train_paths = data.subset(data.train_indices)
        if not train_paths:
            raise ValueError("PathDataset has no training paths")
        # start encoding identical to NObLe's (one-hot start class) so the
        # two models differ only in the output formulation
        starts = np.array([p.start_position for p in train_paths])
        self.start_quantizer_ = GridQuantizer(self.start_tau).fit(starts)
        ends = np.array([p.end_position for p in train_paths])
        self.coord_mean_ = ends.mean(axis=0)
        self.coord_std_ = ends.std(axis=0)
        self.coord_std_[self.coord_std_ == 0] = 1.0
        displacements = np.array([p.displacement for p in train_paths])
        scale = float(np.std(displacements))
        self.displacement_scale_ = scale if scale > 0 else 1.0

        self.network_ = TrackerNetwork(
            max_len=data.max_length,
            feature_dim=data.feature_dim,
            start_dim=self.start_quantizer_.n_classes + 2,
            head_dim=2,
            projection_dim=self.projection_dim,
            hidden=self.hidden,
            rng=rng,
        )
        loss = MultiHeadLoss(
            {
                "coordinates": (slice(0, 2), MSELoss(), 1.0),
                "displacement": (slice(2, 4), MSELoss(), self.displacement_weight),
            }
        )
        trainer = Trainer(
            self.network_, loss, Adam(self.network_.parameters(), lr=self.lr)
        )
        train_loader = DataLoader(
            self._adapt(data, data.train_indices),
            batch_size=self.batch_size,
            drop_last=True,
            rng=rng,
        )
        if len(data.val_indices):
            val_loader = DataLoader(
                self._adapt(data, data.val_indices),
                batch_size=self.batch_size,
                shuffle=False,
            )
            self.history_ = trainer.fit(
                train_loader,
                epochs=self.epochs,
                val_loader=val_loader,
                patience=self.patience,
            )
        else:
            self.history_ = trainer.fit(train_loader, epochs=self.epochs)
        return self

    def _adapt(self, data: PathDataset, indices: np.ndarray) -> PaddedPathDataset:
        n_start = self.start_quantizer_.n_classes

        def start_encoder(path: PathSample) -> np.ndarray:
            class_id = self.start_quantizer_.transform(
                path.start_position[None, :], strict=False
            )[0]
            one_hot = multi_hot(np.array([class_id]), n_start)[0]
            heading = np.array(
                [np.cos(path.start_heading), np.sin(path.start_heading)]
            )
            return np.concatenate([one_hot, heading])

        def target_fn(path: PathSample) -> np.ndarray:
            coords = (path.end_position - self.coord_mean_) / self.coord_std_
            return np.concatenate(
                [coords, path.displacement / self.displacement_scale_]
            )

        return PaddedPathDataset(data, indices, start_encoder, target_fn)

    def predict_coordinates(self, data: PathDataset, indices: np.ndarray) -> np.ndarray:
        check_fitted(self, "network_")
        self.network_.eval()
        adapted = self._adapt(data, indices)
        out = np.empty((len(adapted), 2))
        for start in range(0, len(adapted), self.batch_size):
            stop = min(start + self.batch_size, len(adapted))
            batch = np.stack([adapted[i][0] for i in range(start, stop)])
            standardized = self.network_(batch)[:, :2]
            out[start:stop] = standardized * self.coord_std_ + self.coord_mean_
        return out
