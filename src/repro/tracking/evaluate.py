"""Evaluation harness for IMU trackers (Table III rows)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.paths import PathDataset
from repro.metrics.errors import ErrorSummary, position_errors, summarize_errors


@dataclass
class TrackingReport:
    """One evaluated tracker: end-position error summary."""

    name: str
    errors: ErrorSummary
    structure_score: "float | None" = None

    def row(self) -> str:
        parts = [
            f"{self.name:<28s}",
            f"{self.errors.mean:8.2f}",
            f"{self.errors.median:8.2f}",
        ]
        if self.structure_score is not None:
            parts.append(f"{100 * self.structure_score:9.1f}%")
        return " ".join(parts)


def evaluate_tracker(
    name: str,
    model,
    data: PathDataset,
    indices: "np.ndarray | None" = None,
    route_nodes: "np.ndarray | None" = None,
    on_route_tolerance: float = 3.0,
) -> TrackingReport:
    """Evaluate a fitted tracker on the paths at ``indices`` (test split
    by default).  When ``route_nodes`` is given, a structure score is
    computed: the fraction of predictions within ``on_route_tolerance``
    meters of the route polyline's vertices or edges (quantifying the
    Fig. 5(c)/(d) comparison)."""
    if indices is None:
        indices = data.test_indices
    predicted = model.predict_coordinates(data, indices)
    truth = data.end_positions(indices)
    report = TrackingReport(
        name=name, errors=summarize_errors(position_errors(predicted, truth))
    )
    if route_nodes is not None:
        report.structure_score = _near_route_fraction(
            predicted, np.asarray(route_nodes, dtype=float), on_route_tolerance
        )
    return report


def _near_route_fraction(
    points: np.ndarray, references: np.ndarray, tolerance: float
) -> float:
    """Fraction of points within ``tolerance`` of any reference location."""
    if len(references) == 0:
        return float("nan")
    distances = np.linalg.norm(
        points[:, None, :] - references[None, :, :], axis=-1
    ).min(axis=1)
    return float(np.mean(distances <= tolerance))
