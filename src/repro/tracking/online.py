"""Sequential (online) tracking along a walk.

The paper's path formulation predicts a single end position from a
start position; a deployed tracker runs *continuously*: each predicted
end becomes the next window's start.  :class:`OnlineTracker` wraps a
fitted :class:`repro.tracking.NObLeTracker` in exactly that loop, which
exposes the error-accumulation question the paper raises for IMU
systems (§II: "it keeps updating previous positions, which makes it
subject to error accumulation") — NObLe's quantized outputs re-anchor
the state to the route, bounding drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.paths import PathDataset, PathSample
from repro.tracking.noble_imu import NObLeTracker


@dataclass
class OnlineTrace:
    """The result of tracking one walk online."""

    predicted: np.ndarray
    truth: np.ndarray
    errors: np.ndarray = field(init=False)

    def __post_init__(self):
        self.errors = np.linalg.norm(self.predicted - self.truth, axis=1)

    @property
    def final_error(self) -> float:
        return float(self.errors[-1])

    @property
    def max_error(self) -> float:
        return float(self.errors.max())


class OnlineTracker:
    """Run a fitted NObLe tracker hop-by-hop along a walk.

    Parameters
    ----------
    tracker:
        A fitted :class:`NObLeTracker`.
    hop:
        Number of segments consumed per prediction step (each step
        predicts the position ``hop`` references ahead, then chains).
    """

    def __init__(self, tracker: NObLeTracker, hop: int = 1):
        if tracker.network_ is None:
            raise ValueError("tracker must be fitted before online use")
        if hop < 1:
            raise ValueError(f"hop must be >= 1, got {hop}")
        self.tracker = tracker
        self.hop = int(hop)

    def track(
        self,
        data: PathDataset,
        segment_indices: np.ndarray,
        start_position: np.ndarray,
        start_heading: float,
        truth: "np.ndarray | None" = None,
    ) -> OnlineTrace:
        """Track along ``segment_indices`` (a contiguous walk stretch).

        ``truth`` is the (n_steps, 2) ground-truth position after each
        hop; when omitted, zeros are used (errors are then meaningless
        but the predicted trace is still valid).
        """
        segment_indices = np.asarray(segment_indices, dtype=int)
        if len(segment_indices) < self.hop:
            raise ValueError("not enough segments for a single hop")
        steps = len(segment_indices) // self.hop
        predicted = np.empty((steps, 2))
        position = np.asarray(start_position, dtype=float).copy()
        heading = float(start_heading)
        for step in range(steps):
            window = segment_indices[step * self.hop : (step + 1) * self.hop]
            path = PathSample(
                segment_indices=window,
                start_reference=-1,
                end_reference=-1,
                start_position=position,
                end_position=position,  # unknown; unused at inference
                start_heading=heading,
            )
            position = self._predict_one(data, path)
            predicted[step] = position
            heading = self._update_heading(data, window, heading)
        truth = (
            np.zeros((steps, 2)) if truth is None else np.asarray(truth, float)
        )
        if len(truth) != steps:
            raise ValueError(
                f"truth must have one row per hop ({steps}), got {len(truth)}"
            )
        return OnlineTrace(predicted=predicted, truth=truth)

    def track_path(self, data: PathDataset, path_index: int) -> OnlineTrace:
        """Track an existing PathSample hop-by-hop with ground truth.

        Requires the path's intermediate references to exist in
        ``data.reference_positions`` (true for paths built by
        :func:`repro.data.paths.build_path_dataset`).
        """
        path = data.paths[int(path_index)]
        steps = path.length // self.hop
        truth = np.array(
            [
                data.reference_positions[path.start_reference + (s + 1) * self.hop]
                for s in range(steps)
            ]
        )
        return self.track(
            data,
            path.segment_indices,
            path.start_position,
            path.start_heading,
            truth=truth,
        )

    # ------------------------------------------------------------------ utils
    def _predict_one(self, data: PathDataset, path: PathSample) -> np.ndarray:
        tracker = self.tracker
        feats = data.segment_features[path.segment_indices]
        flat = np.zeros(data.max_length * data.feature_dim)
        flat[: feats.size] = feats.ravel()
        adapted = tracker._adapt(data, np.array([0]))
        start = adapted.start_encoder(path)
        x = np.concatenate([flat, start])[None, :]
        tracker.network_.eval()
        logits = tracker.network_(x)[:, : tracker.quantizer_.n_classes]
        class_id = logits.argmax(axis=1)
        return tracker.quantizer_.inverse_transform(class_id)[0]

    def _update_heading(
        self, data: PathDataset, window: np.ndarray, heading: float
    ) -> float:
        """Advance the heading estimate by the window's mean gyro-z signal.

        Segment features are channel-major block means (see
        ``featurize_segment``), so the gyro-z channel is the last block
        group; its mean × window duration approximates Δθ.
        """
        feats = data.segment_features[window]
        blocks_per_channel = data.feature_dim // 6
        gyro_z = feats[:, 5 * blocks_per_channel :]
        # block means already average the rate; total Δθ = mean rate × time
        mean_rate = float(gyro_z.mean())
        duration = self._segment_duration(data)
        return heading + mean_rate * duration * len(window)

    @staticmethod
    def _segment_duration(data: PathDataset) -> float:
        # features lose the absolute sample count; the simulator's
        # protocol fixes segment duration = samples / rate.  We recover
        # it from reference spacing at the default walking speed.
        gaps = np.linalg.norm(
            np.diff(data.reference_positions[:8], axis=0), axis=1
        )
        median_gap = float(np.median(gaps))
        return median_gap / 1.4  # default speed in IMUConfig
