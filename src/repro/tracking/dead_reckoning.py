"""Physics-only IMU tracking baselines.

Two classic approaches, both of which the paper's §II/§V discussion
expects to drift:

* strapdown double integration (``dead_reckon``): rotate device-frame
  acceleration into the world frame using the integrated gyro heading
  and integrate twice — accumulates error quadratically;
* pedestrian dead reckoning (``pdr_track``): step detection on the
  vertical acceleration plus a fixed stride length and gyro-integrated
  heading — drifts only with heading error, the basis of map-aided
  systems like [8].
"""

from __future__ import annotations

import numpy as np

from repro.data.gait import GRAVITY, IMUConfig
from repro.data.paths import PathDataset
from repro.utils.validation import check_fitted


def dead_reckon(
    imu: np.ndarray,
    start_position: np.ndarray,
    sample_rate_hz: float = 50.0,
    initial_heading: float = 0.0,
) -> np.ndarray:
    """Strapdown double integration; returns the final position estimate.

    ``imu`` is (T, 6): [ax, ay, az, gx, gy, gz] in the device frame.
    """
    imu = np.asarray(imu, dtype=float)
    if imu.ndim != 2 or imu.shape[1] != 6:
        raise ValueError(f"imu must be (T, 6), got {imu.shape}")
    dt = 1.0 / float(sample_rate_hz)
    heading = initial_heading + np.cumsum(imu[:, 5]) * dt
    cos_h, sin_h = np.cos(heading), np.sin(heading)
    ax_world = cos_h * imu[:, 0] - sin_h * imu[:, 1]
    ay_world = sin_h * imu[:, 0] + cos_h * imu[:, 1]
    velocity = np.cumsum(np.column_stack([ax_world, ay_world]), axis=0) * dt
    displacement = np.sum(velocity, axis=0) * dt
    return np.asarray(start_position, dtype=float) + displacement


def pdr_track(
    imu: np.ndarray,
    start_position: np.ndarray,
    sample_rate_hz: float = 50.0,
    stride_length: float = 0.78,
    initial_heading: float = 0.0,
    step_threshold: float = 1.0,
    min_step_interval_s: float = 0.35,
) -> np.ndarray:
    """Pedestrian dead reckoning; returns (n_steps+1, 2) track positions.

    Steps are vertical-acceleration peaks above ``gravity +
    step_threshold`` separated by at least ``min_step_interval_s``; each
    step advances ``stride_length`` along the gyro-integrated heading.
    """
    imu = np.asarray(imu, dtype=float)
    if imu.ndim != 2 or imu.shape[1] != 6:
        raise ValueError(f"imu must be (T, 6), got {imu.shape}")
    dt = 1.0 / float(sample_rate_hz)
    heading = initial_heading + np.cumsum(imu[:, 5]) * dt
    vertical = imu[:, 2] - GRAVITY
    min_gap = max(1, int(min_step_interval_s * sample_rate_hz))

    positions = [np.asarray(start_position, dtype=float)]
    last_step = -min_gap
    for t in range(1, len(imu) - 1):
        is_peak = (
            vertical[t] > step_threshold
            and vertical[t] >= vertical[t - 1]
            and vertical[t] >= vertical[t + 1]
        )
        if is_peak and t - last_step >= min_gap:
            last_step = t
            step = stride_length * np.array(
                [np.cos(heading[t]), np.sin(heading[t])]
            )
            positions.append(positions[-1] + step)
    return np.array(positions)


class DeadReckoningTracker:
    """Adapter exposing the physics baselines through the tracker API.

    Works on *raw* walk segments (held by the caller), since featurized
    path vectors destroy the temporal integrity integration needs.

    Parameters
    ----------
    raw_segments:
        (S, T, 6) raw IMU segments aligned with a PathDataset's pooled
        segment indexing.
    method:
        ``"pdr"`` (default) or ``"integration"``.
    """

    def __init__(
        self,
        raw_segments: np.ndarray,
        method: str = "pdr",
        config: "IMUConfig | None" = None,
        initial_headings: "np.ndarray | None" = None,
    ):
        if method not in ("pdr", "integration"):
            raise ValueError(f"method must be 'pdr' or 'integration', got {method!r}")
        self.raw_segments = np.asarray(raw_segments, dtype=float)
        if self.raw_segments.ndim != 3 or self.raw_segments.shape[2] != 6:
            raise ValueError(
                f"raw_segments must be (S, T, 6), got {self.raw_segments.shape}"
            )
        self.method = method
        self.config = config or IMUConfig()
        self.initial_headings = initial_headings
        self._fitted = True

    def fit(self, data: PathDataset) -> "DeadReckoningTracker":
        """No learning; validates the segment store covers the dataset."""
        max_index = max(
            int(p.segment_indices.max()) for p in data.paths if p.length > 0
        )
        if max_index >= len(self.raw_segments):
            raise ValueError(
                "raw_segments store is smaller than the dataset's segment index space"
            )
        return self

    def predict_coordinates(self, data: PathDataset, indices: np.ndarray) -> np.ndarray:
        check_fitted(self, "_fitted")
        out = np.empty((len(indices), 2))
        for row, index in enumerate(np.asarray(indices, dtype=int)):
            path = data.paths[int(index)]
            imu = self.raw_segments[path.segment_indices].reshape(-1, 6)
            heading = (
                float(self.initial_headings[path.start_reference])
                if self.initial_headings is not None
                else 0.0
            )
            if self.method == "integration":
                out[row] = dead_reckon(
                    imu,
                    path.start_position,
                    sample_rate_hz=self.config.sample_rate_hz,
                    initial_heading=heading,
                )
            else:
                track = pdr_track(
                    imu,
                    path.start_position,
                    sample_rate_hz=self.config.sample_rate_hz,
                    stride_length=self.config.speed_mps
                    / self.config.step_frequency_hz,
                    initial_heading=heading,
                )
                out[row] = track[-1]
        return out
