"""Application 2: device tracking using IMUs (paper §V).

:class:`NObLeTracker` is the paper's three-module network (projection →
displacement → location).  Baselines: :class:`DeepRegressionTracker`
(Table III's Deep Regression), :class:`DeadReckoningTracker` (pure
physics), and :class:`MapCorrectedTracker` (the [8]-style turn-snapping
heuristic).
"""

from repro.tracking.network import TrackerNetwork
from repro.tracking.noble_imu import NObLeTracker
from repro.tracking.regression import DeepRegressionTracker
from repro.tracking.dead_reckoning import DeadReckoningTracker, dead_reckon, pdr_track
from repro.tracking.map_correction import MapCorrectedTracker
from repro.tracking.distance_ml import MLDistanceTracker
from repro.tracking.particle_filter import ParticleFilterTracker
from repro.tracking.online import OnlineTracker, OnlineTrace
from repro.tracking.evaluate import TrackingReport, evaluate_tracker

__all__ = [
    "TrackerNetwork",
    "NObLeTracker",
    "DeepRegressionTracker",
    "DeadReckoningTracker",
    "dead_reckon",
    "pdr_track",
    "MapCorrectedTracker",
    "MLDistanceTracker",
    "ParticleFilterTracker",
    "OnlineTracker",
    "OnlineTrace",
    "TrackingReport",
    "evaluate_tracker",
]
