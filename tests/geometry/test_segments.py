"""Tests for point-to-segment distances and route-graph segment export."""

import numpy as np
import pytest

from repro.data.imu import court_route_graph
from repro.geometry.segments import route_graph_segments, segment_distances


class TestSegmentDistances:
    def test_point_on_segment_zero(self):
        segments = np.array([[[0.0, 0.0], [10.0, 0.0]]])
        d = segment_distances(np.array([[5.0, 0.0]]), segments)
        assert d[0] == pytest.approx(0.0, abs=1e-12)

    def test_perpendicular_distance(self):
        segments = np.array([[[0.0, 0.0], [10.0, 0.0]]])
        d = segment_distances(np.array([[5.0, 3.0]]), segments)
        assert d[0] == pytest.approx(3.0)

    def test_beyond_endpoint_uses_endpoint(self):
        segments = np.array([[[0.0, 0.0], [10.0, 0.0]]])
        d = segment_distances(np.array([[13.0, 4.0]]), segments)
        assert d[0] == pytest.approx(5.0)

    def test_nearest_of_multiple(self):
        segments = np.array(
            [[[0.0, 0.0], [10.0, 0.0]], [[0.0, 100.0], [10.0, 100.0]]]
        )
        d = segment_distances(np.array([[5.0, 99.0]]), segments)
        assert d[0] == pytest.approx(1.0)

    def test_degenerate_segment_is_point(self):
        segments = np.array([[[2.0, 2.0], [2.0, 2.0]]])
        d = segment_distances(np.array([[5.0, 6.0]]), segments)
        assert d[0] == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            segment_distances(np.zeros((1, 2)), np.zeros((0, 2, 2)))
        with pytest.raises(ValueError):
            segment_distances(np.zeros((1, 2)), np.zeros((3, 2)))


class TestRouteGraphSegments:
    def test_each_edge_once(self):
        route = court_route_graph()
        segments = route_graph_segments(route.nodes, route.adjacency)
        n_edges = sum(len(v) for v in route.adjacency.values()) // 2
        assert len(segments) == n_edges

    def test_nodes_have_zero_distance(self):
        route = court_route_graph()
        segments = route_graph_segments(route.nodes, route.adjacency)
        d = segment_distances(route.nodes, segments)
        np.testing.assert_allclose(d, 0.0, atol=1e-9)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            route_graph_segments(np.zeros((2, 2)), {0: [], 1: []})
