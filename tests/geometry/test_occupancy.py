"""Tests for occupancy grids."""

import numpy as np
import pytest

from repro.geometry.occupancy import OccupancyGrid

RNG = np.random.default_rng(43)


class TestFit:
    def test_counts_occupied_cells(self):
        points = np.array([[0.5, 0.5], [0.6, 0.6], [10.5, 10.5]])
        grid = OccupancyGrid(cell_size=1.0).fit(points)
        assert grid.n_occupied == 2

    def test_min_count_filters_sparse_cells(self):
        points = np.array([[0.5, 0.5], [0.6, 0.6], [10.5, 10.5]])
        grid = OccupancyGrid(cell_size=1.0, min_count=2).fit(points)
        assert grid.n_occupied == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            OccupancyGrid(cell_size=0.0)
        with pytest.raises(ValueError):
            OccupancyGrid(cell_size=1.0, min_count=0)


class TestQueries:
    def test_is_occupied(self):
        points = RNG.uniform(0, 5, size=(100, 2))
        grid = OccupancyGrid(cell_size=1.0).fit(points)
        assert grid.is_occupied(points).all()
        assert not grid.is_occupied(np.array([[100.0, 100.0]]))[0]

    def test_snap_moves_only_off_grid_points(self):
        points = np.array([[0.5, 0.5], [20.5, 20.5]])
        grid = OccupancyGrid(cell_size=1.0).fit(points)
        # grid origin is (0.5, 0.5): (0.6, 0.6) shares the first point's cell
        queries = np.array([[0.6, 0.6], [50.0, 50.0]])
        snapped = grid.snap(queries)
        np.testing.assert_array_equal(snapped[0], queries[0])  # already occupied
        # off-grid point snapped to the nearest occupied cell center
        assert np.linalg.norm(snapped[1] - [20.5, 20.5]) < 1.0

    def test_snap_result_occupied(self):
        points = RNG.uniform(0, 5, size=(50, 2))
        grid = OccupancyGrid(cell_size=0.5).fit(points)
        queries = RNG.uniform(-10, 15, size=(50, 2))
        assert grid.is_occupied(grid.snap(queries)).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            OccupancyGrid(cell_size=1.0).is_occupied(np.zeros((1, 2)))
