"""Tests for polygons: containment, projection, area, sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.polygon import Polygon

RNG = np.random.default_rng(41)


def unit_square():
    return Polygon.rectangle(0.0, 0.0, 1.0, 1.0)


def l_shape():
    return Polygon(
        np.array(
            [[0, 0], [2, 0], [2, 1], [1, 1], [1, 2], [0, 2]], dtype=float
        )
    )


class TestContains:
    def test_center_inside(self):
        assert unit_square().contains(np.array([[0.5, 0.5]]))[0]

    def test_outside(self):
        result = unit_square().contains(np.array([[2.0, 0.5], [-1.0, 0.5]]))
        assert not result.any()

    def test_l_shape_notch_excluded(self):
        poly = l_shape()
        assert poly.contains(np.array([[0.5, 0.5]]))[0]
        assert poly.contains(np.array([[1.5, 0.5]]))[0]
        assert not poly.contains(np.array([[1.5, 1.5]]))[0]

    def test_vectorized_matches_scalar(self):
        poly = l_shape()
        points = RNG.uniform(-1, 3, size=(100, 2))
        batch = poly.contains(points)
        single = np.array([poly.contains(p[None, :])[0] for p in points])
        np.testing.assert_array_equal(batch, single)

    @settings(max_examples=30, deadline=None)
    @given(
        x=st.floats(min_value=-5, max_value=5),
        y=st.floats(min_value=-5, max_value=5),
    )
    def test_rectangle_containment_matches_bounds(self, x, y):
        poly = Polygon.rectangle(-1.0, -2.0, 3.0, 4.0)
        expected = (-1.0 < x < 3.0) and (-2.0 < y < 4.0)
        on_boundary = x in (-1.0, 3.0) or y in (-2.0, 4.0)
        if not on_boundary:
            assert poly.contains(np.array([[x, y]]))[0] == expected


class TestGeometryMeasures:
    def test_rectangle_area(self):
        assert Polygon.rectangle(0, 0, 2, 3).area() == pytest.approx(6.0)

    def test_l_shape_area(self):
        assert l_shape().area() == pytest.approx(3.0)

    def test_area_orientation_invariant(self):
        poly = unit_square()
        reversed_poly = Polygon(poly.vertices[::-1])
        assert poly.area() == pytest.approx(reversed_poly.area())

    def test_bounds(self):
        assert l_shape().bounds == (0.0, 0.0, 2.0, 2.0)


class TestNearestBoundary:
    def test_projection_of_outside_point(self):
        nearest = unit_square().nearest_boundary_point(np.array([[2.0, 0.5]]))
        np.testing.assert_allclose(nearest[0], [1.0, 0.5])

    def test_projection_onto_corner(self):
        nearest = unit_square().nearest_boundary_point(np.array([[2.0, 2.0]]))
        np.testing.assert_allclose(nearest[0], [1.0, 1.0])

    def test_distance_zero_on_boundary(self):
        d = unit_square().distance_to_boundary(np.array([[1.0, 0.5]]))
        assert d[0] == pytest.approx(0.0, abs=1e-12)

    def test_interior_distance_positive(self):
        d = unit_square().distance_to_boundary(np.array([[0.5, 0.5]]))
        assert d[0] == pytest.approx(0.5)

    @settings(max_examples=30, deadline=None)
    @given(
        x=st.floats(min_value=-10, max_value=10),
        y=st.floats(min_value=-10, max_value=10),
    )
    def test_projected_point_is_on_boundary(self, x, y):
        poly = l_shape()
        projected = poly.nearest_boundary_point(np.array([[x, y]]))
        assert poly.distance_to_boundary(projected)[0] < 1e-9


class TestSampling:
    def test_samples_inside(self):
        poly = l_shape()
        samples = poly.sample_interior(200, rng=1)
        assert poly.contains(samples).all()

    def test_sample_count(self):
        assert unit_square().sample_interior(17, rng=2).shape == (17, 2)

    def test_zero_samples(self):
        assert unit_square().sample_interior(0, rng=3).shape == (0, 2)


class TestValidation:
    def test_too_few_vertices(self):
        with pytest.raises(ValueError, match="at least 3"):
            Polygon(np.array([[0, 0], [1, 1]]))

    def test_degenerate_rectangle(self):
        with pytest.raises(ValueError):
            Polygon.rectangle(0, 0, 0, 1)
