"""Tests for floor plans with holes."""

import numpy as np
import pytest

from repro.geometry.floorplan import FloorPlan
from repro.geometry.polygon import Polygon


def ring_plan():
    """10×10 building with a 4×4 courtyard hole in the middle."""
    outer = Polygon.rectangle(0, 0, 10, 10)
    hole = Polygon.rectangle(3, 3, 7, 7)
    return FloorPlan([outer], holes=[hole])


class TestAccessibility:
    def test_ring_interior_accessible(self):
        plan = ring_plan()
        assert plan.accessible(np.array([[1.0, 1.0]]))[0]

    def test_courtyard_not_accessible(self):
        plan = ring_plan()
        assert not plan.accessible(np.array([[5.0, 5.0]]))[0]

    def test_outside_not_accessible(self):
        plan = ring_plan()
        assert not plan.accessible(np.array([[20.0, 20.0]]))[0]

    def test_fraction(self):
        plan = ring_plan()
        points = np.array([[1.0, 1.0], [5.0, 5.0], [20.0, 20.0], [9.0, 9.0]])
        assert plan.accessibility_fraction(points) == pytest.approx(0.5)

    def test_multiple_regions(self):
        plan = FloorPlan(
            [Polygon.rectangle(0, 0, 1, 1), Polygon.rectangle(5, 5, 6, 6)]
        )
        inside = plan.accessible(np.array([[0.5, 0.5], [5.5, 5.5], [3.0, 3.0]]))
        assert inside.tolist() == [True, True, False]


class TestSampling:
    def test_samples_avoid_holes(self):
        plan = ring_plan()
        samples = plan.sample(300, rng=7)
        assert plan.accessible(samples).all()

    def test_sample_count(self):
        assert ring_plan().sample(25, rng=8).shape == (25, 2)

    def test_area_weighting_across_regions(self):
        big = Polygon.rectangle(0, 0, 10, 10)
        small = Polygon.rectangle(100, 100, 101, 101)
        plan = FloorPlan([big, small])
        samples = plan.sample(500, rng=9)
        in_big = big.contains(samples).mean()
        assert in_big > 0.9  # big region gets ~99% of samples


class TestMeasures:
    def test_bounds_cover_all_regions(self):
        plan = FloorPlan(
            [Polygon.rectangle(0, 0, 1, 1), Polygon.rectangle(5, -2, 6, 6)]
        )
        assert plan.bounds == (0.0, -2.0, 6.0, 6.0)

    def test_ring_area(self):
        assert ring_plan().area() == pytest.approx(100.0 - 16.0)

    def test_needs_regions(self):
        with pytest.raises(ValueError):
            FloorPlan([])
