"""Tests for the snap-to-map projection."""

import numpy as np

from repro.geometry.floorplan import FloorPlan
from repro.geometry.polygon import Polygon
from repro.geometry.projection import project_to_map


def ring_plan():
    return FloorPlan(
        [Polygon.rectangle(0, 0, 10, 10)],
        holes=[Polygon.rectangle(3, 3, 7, 7)],
    )


class TestProjectToMap:
    def test_on_map_points_unchanged(self):
        plan = ring_plan()
        points = np.array([[1.0, 1.0], [9.0, 2.0]])
        np.testing.assert_array_equal(project_to_map(points, plan), points)

    def test_outside_point_snaps_to_boundary(self):
        plan = ring_plan()
        out = project_to_map(np.array([[15.0, 5.0]]), plan)
        np.testing.assert_allclose(out[0], [10.0, 5.0])

    def test_courtyard_point_snaps_to_hole_boundary(self):
        plan = ring_plan()
        out = project_to_map(np.array([[5.0, 5.0]]), plan)
        # nearest accessible point is on the courtyard edge (x or y = 3 or 7)
        assert min(
            abs(out[0, 0] - 3), abs(out[0, 0] - 7), abs(out[0, 1] - 3), abs(out[0, 1] - 7)
        ) < 1e-9

    def test_projection_lands_on_accessible_space_or_its_boundary(self):
        plan = ring_plan()
        rng = np.random.default_rng(3)
        points = rng.uniform(-5, 15, size=(100, 2))
        projected = project_to_map(points, plan)
        boundary_distance = np.minimum(
            plan.regions[0].distance_to_boundary(projected),
            plan.holes[0].distance_to_boundary(projected),
        )
        on_map = plan.accessible(projected) | (boundary_distance < 1e-9)
        assert on_map.all()

    def test_multi_region_snaps_to_nearest(self):
        plan = FloorPlan(
            [Polygon.rectangle(0, 0, 1, 1), Polygon.rectangle(10, 0, 11, 1)]
        )
        out = project_to_map(np.array([[8.0, 0.5]]), plan)
        np.testing.assert_allclose(out[0], [10.0, 0.5])

    def test_idempotent_up_to_tolerance(self):
        plan = ring_plan()
        rng = np.random.default_rng(4)
        points = rng.uniform(-3, 13, size=(50, 2))
        once = project_to_map(points, plan)
        twice = project_to_map(once, plan)
        assert np.max(np.linalg.norm(once - twice, axis=1)) < 1e-6
