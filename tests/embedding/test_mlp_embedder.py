"""MLP embedder + package helpers: fit, determinism, bitwise state."""

import json

import numpy as np
import pytest

from repro.embedding import (
    EMBEDDER_KINDS,
    MLPEmbedder,
    NCAEmbedder,
    embedder_state,
    fit_embedder,
    is_fitted,
    make_embedder,
    restore_embedder,
)

RNG = np.random.default_rng(21)

#: Seconds-scale training configuration shared by these tests.
FAST = dict(
    n_components=4, hidden=(16,), pretrain_epochs=2, epochs=3, batch_size=32
)


def _toy(n=96, width=10, seed=5):
    rng = np.random.default_rng(seed)
    coordinates = rng.uniform(0, 40, size=(n, 2))
    signals = np.tanh(
        coordinates @ rng.normal(size=(2, width)) * 0.05
        + rng.normal(0, 0.05, size=(n, width))
    )
    return signals, coordinates


class TestFit:
    def test_transform_shape(self):
        signals, coordinates = _toy()
        embedder = MLPEmbedder(seed=0, **FAST).fit(signals, coordinates)
        out = embedder.transform(signals[:9])
        assert out.shape == (9, FAST["n_components"])
        assert np.isfinite(out).all()

    def test_deterministic_across_fits(self):
        signals, coordinates = _toy()
        a = MLPEmbedder(seed=4, **FAST).fit(signals, coordinates)
        b = MLPEmbedder(seed=4, **FAST).fit(signals, coordinates)
        np.testing.assert_array_equal(
            a.transform(signals), b.transform(signals)
        )

    def test_records_training_history(self):
        signals, coordinates = _toy()
        embedder = MLPEmbedder(seed=0, **FAST).fit(signals, coordinates)
        assert embedder.history_ is not None
        assert embedder.n_features_in_ == signals.shape[1]

    def test_unfitted_transform_raises(self):
        with pytest.raises(ValueError, match="not fitted"):
            MLPEmbedder().transform(np.zeros((3, 4)))

    def test_row_count_mismatch(self):
        with pytest.raises(ValueError, match="coordinates"):
            MLPEmbedder(**FAST).fit(np.zeros((4, 3)), np.zeros((5, 2)))

    def test_bad_n_components(self):
        with pytest.raises(ValueError, match="n_components"):
            MLPEmbedder(n_components=0)

    def test_params_canonicalize_dtype(self):
        assert MLPEmbedder(dtype=np.float32).params["dtype"] == "float32"
        assert MLPEmbedder().params["dtype"] is None


class TestHelpers:
    def test_make_embedder_kinds(self):
        assert EMBEDDER_KINDS == ("metric", "mlp")
        assert isinstance(make_embedder("metric"), NCAEmbedder)
        assert isinstance(make_embedder("mlp", n_components=3), MLPEmbedder)
        with pytest.raises(ValueError, match="unknown embedder"):
            make_embedder("pca")

    def test_is_fitted(self):
        signals, coordinates = _toy()
        embedder = MLPEmbedder(seed=0, **FAST)
        assert not is_fitted(embedder)
        embedder.fit(signals, coordinates)
        assert is_fitted(embedder)
        with pytest.raises(TypeError, match="not an embedder"):
            is_fitted(object())

    def test_fit_embedder_on_a_dataset(self, uji_small):
        # fit_embedder picks the supervision each learner needs: spot
        # classes for the metric learner, coordinates for the MLP
        metric = fit_embedder(
            NCAEmbedder(n_components=4, epochs=2, seed=0), uji_small
        )
        mlp = fit_embedder(MLPEmbedder(seed=0, **FAST), uji_small)
        signals = uji_small.normalized_signals()
        assert metric.transform(signals).shape == (len(uji_small), 4)
        assert mlp.transform(signals).shape == (len(uji_small), 4)


class TestStateRoundTrip:
    def test_mlp_round_trip_is_bitwise(self):
        signals, coordinates = _toy()
        embedder = MLPEmbedder(seed=7, **FAST).fit(signals, coordinates)
        arrays, meta = embedder_state(embedder)
        json.dumps(meta)  # meta must survive the .npz sidecar
        restored = restore_embedder(arrays, meta)
        assert restored.params == embedder.params
        queries = _toy(n=17, seed=9)[0]
        np.testing.assert_array_equal(
            embedder.transform(queries), restored.transform(queries)
        )

    def test_metric_round_trip_is_bitwise(self):
        signals, coordinates = _toy()
        labels = np.arange(len(signals)) % 8
        embedder = NCAEmbedder(n_components=3, epochs=2, seed=1).fit(
            signals, labels
        )
        arrays, meta = embedder_state(embedder)
        json.dumps(meta)
        restored = restore_embedder(arrays, meta)
        assert restored.params == embedder.params
        np.testing.assert_array_equal(
            embedder.transform(signals), restored.transform(signals)
        )

    def test_round_trip_survives_npz(self, tmp_path):
        # the real artifact path: through np.savez + np.load, not just
        # an in-memory dict
        signals, coordinates = _toy()
        embedder = MLPEmbedder(seed=2, **FAST).fit(signals, coordinates)
        arrays, meta = embedder_state(embedder)
        path = tmp_path / "embedder.npz"
        np.savez(path, **arrays)
        with np.load(path) as archive:
            restored = restore_embedder(dict(archive.items()), meta)
        np.testing.assert_array_equal(
            embedder.transform(signals), restored.transform(signals)
        )

    def test_unfitted_state_raises(self):
        with pytest.raises(ValueError, match="unfitted"):
            embedder_state(MLPEmbedder())
        with pytest.raises(ValueError, match="unfitted"):
            embedder_state(NCAEmbedder())
        with pytest.raises(TypeError, match="not an embedder"):
            embedder_state(object())

    def test_prefix_is_respected(self):
        signals, coordinates = _toy()
        embedder = MLPEmbedder(seed=3, **FAST).fit(signals, coordinates)
        arrays, _meta = embedder_state(embedder, prefix="x.")
        assert all(name.startswith("x.") for name in arrays)
