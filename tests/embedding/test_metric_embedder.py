"""NCA metric learner: objective math, fit determinism, validation."""

import numpy as np
import pytest

from repro.embedding import NCAEmbedder, nca_objective

RNG = np.random.default_rng(11)


def _clustered(n_classes=4, per_class=12, width=6, spread=0.3):
    """Centered class blobs with known labels."""
    centers = RNG.normal(size=(n_classes, width)) * 4.0
    labels = np.repeat(np.arange(n_classes), per_class)
    data = centers[labels] + RNG.normal(
        0, spread, size=(n_classes * per_class, width)
    )
    return data - data.mean(axis=0), labels


def _pca_hostile(n_classes=4, per_class=16, width=6):
    """Class structure hidden in a low-variance direction.

    The first coordinate carries the classes at small scale while the
    remaining ones are high-variance noise, so the PCA initialization
    starts in the wrong subspace and only gradient ascent on the NCA
    objective can recover the discriminative direction.
    """
    labels = np.repeat(np.arange(n_classes), per_class)
    n = n_classes * per_class
    data = RNG.normal(0, 5.0, size=(n, width))
    data[:, 0] = labels * 1.0 + RNG.normal(0, 0.15, size=n)
    return data - data.mean(axis=0), labels


class TestObjectiveGradient:
    def test_matches_finite_differences(self):
        # the gradient is the load-bearing math: check it against
        # central differences entry by entry
        data, labels = _clustered(n_classes=3, per_class=4, width=5)
        transform = RNG.normal(size=(2, 5)) * 0.3
        _, grad = nca_objective(transform, data, labels)
        step = 1e-6
        numeric = np.zeros_like(transform)
        for i in range(transform.shape[0]):
            for j in range(transform.shape[1]):
                plus = transform.copy()
                plus[i, j] += step
                minus = transform.copy()
                minus[i, j] -= step
                numeric[i, j] = (
                    nca_objective(plus, data, labels)[0]
                    - nca_objective(minus, data, labels)[0]
                ) / (2 * step)
        np.testing.assert_allclose(grad, numeric, rtol=1e-5, atol=1e-7)

    def test_objective_bounded_by_point_count(self):
        # sum of per-point probabilities: in [0, N] by construction
        data, labels = _clustered()
        transform = RNG.normal(size=(3, 6)) * 0.2
        value, _ = nca_objective(transform, data, labels)
        assert 0.0 <= value <= len(data)

    def test_degenerate_batch_is_a_no_op(self):
        value, grad = nca_objective(np.eye(2), np.zeros((1, 2)), np.zeros(1))
        assert value == 0.0
        np.testing.assert_array_equal(grad, np.zeros((2, 2)))


class TestFit:
    def test_ascends_the_objective(self):
        data, labels = _pca_hostile()
        embedder = NCAEmbedder(n_components=2, epochs=15, batch_size=64, seed=0)
        embedder.fit(data, labels)
        history = embedder.objective_history_
        assert len(history) == 15
        assert history[-1] > history[0]

    def test_transform_is_the_recorded_linear_map(self):
        data, labels = _clustered()
        embedder = NCAEmbedder(n_components=2, epochs=3, seed=0).fit(
            data, labels
        )
        out = embedder.transform(data[:7])
        assert out.shape == (7, 2)
        manual = (data[:7] - embedder.mean_) @ embedder.components_.T
        np.testing.assert_array_equal(out, manual)

    def test_deterministic_across_fits(self):
        data, labels = _clustered()
        a = NCAEmbedder(n_components=2, epochs=4, seed=3).fit(data, labels)
        b = NCAEmbedder(n_components=2, epochs=4, seed=3).fit(data, labels)
        np.testing.assert_array_equal(a.components_, b.components_)
        assert a.objective_history_ == b.objective_history_

    def test_components_capped_at_input_width(self):
        data, labels = _clustered(width=4)
        embedder = NCAEmbedder(n_components=16, epochs=2, seed=0).fit(
            data, labels
        )
        assert embedder.components_.shape == (4, 4)

    def test_fit_transform_equals_fit_then_transform(self):
        data, labels = _clustered()
        a = NCAEmbedder(n_components=3, epochs=2, seed=1).fit_transform(
            data, labels
        )
        b = NCAEmbedder(n_components=3, epochs=2, seed=1).fit(
            data, labels
        ).transform(data)
        np.testing.assert_array_equal(a, b)

    def test_unfitted_transform_raises(self):
        with pytest.raises(ValueError, match="not fitted"):
            NCAEmbedder().transform(np.zeros((3, 4)))

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            NCAEmbedder(epochs=1).fit(np.zeros((4, 3)), np.zeros(5))


class TestValidation:
    def test_bad_constructor_args(self):
        with pytest.raises(ValueError, match="n_components"):
            NCAEmbedder(n_components=0)
        with pytest.raises(ValueError, match="epochs"):
            NCAEmbedder(epochs=0)
        with pytest.raises(ValueError, match="batch_size"):
            NCAEmbedder(batch_size=1)
        with pytest.raises(ValueError, match="lr"):
            NCAEmbedder(lr=0.0)

    def test_params_round_trips_the_constructor(self):
        embedder = NCAEmbedder(
            n_components=4, epochs=7, batch_size=32, lr=0.1, seed=5
        )
        assert NCAEmbedder(**embedder.params).params == embedder.params
