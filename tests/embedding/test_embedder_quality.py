"""§III-C quality pins: learned embeddings beat raw-RSSI structure.

The paper's claim, measured with the :mod:`repro.analysis.embedding`
diagnostics on a seeded synthetic map: the metric learner tightens
same-spot clusters (``class_scatter_ratio`` drops vs the raw signal
space) and the coordinate-supervised MLP makes embedding distance track
physical distance better (``embedding_distance_correlation`` rises).
"""

import numpy as np
import pytest

from repro.analysis.embedding import (
    class_scatter_ratio,
    embedding_distance_correlation,
)
from repro.embedding import MLPEmbedder, NCAEmbedder, fit_embedder


@pytest.fixture(scope="module")
def spot_labels(uji_small):
    _, labels = np.unique(
        np.asarray(uji_small.coordinates), axis=0, return_inverse=True
    )
    return labels


class TestMetricEmbedderQuality:
    def test_scatter_ratio_improves_over_raw(self, uji_small, spot_labels):
        signals = uji_small.normalized_signals()
        embedder = fit_embedder(
            NCAEmbedder(n_components=8, epochs=10, seed=0), uji_small
        )
        raw = class_scatter_ratio(signals, spot_labels, rng=1)
        embedded = class_scatter_ratio(
            embedder.transform(signals), spot_labels, rng=1
        )
        assert embedded < raw


class TestMLPEmbedderQuality:
    def test_distance_correlation_improves_over_raw(self, uji_small):
        signals = uji_small.normalized_signals()
        embedder = fit_embedder(
            MLPEmbedder(
                n_components=8, hidden=(32,), pretrain_epochs=3,
                epochs=20, seed=0,
            ),
            uji_small,
        )
        raw = embedding_distance_correlation(
            signals, uji_small.coordinates, rng=2
        )
        embedded = embedding_distance_correlation(
            embedder.transform(signals), uji_small.coordinates, rng=2
        )
        assert embedded > raw
        assert embedded > 0.5
