"""Shared fixtures: small datasets and trained models, built once.

Session-scoped so the expensive pieces (simulators, short training runs)
run a single time for the whole suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    CampusWalkSimulator,
    build_path_dataset,
    generate_ipin_like,
    generate_uji_like,
)


@pytest.fixture(scope="session")
def uji_small():
    """A small-but-structured UJIIndoorLoc-like dataset (~290 samples)."""
    return generate_uji_like(
        n_spots_per_building=16,
        measurements_per_spot=6,
        n_aps_per_floor=5,
        seed=101,
    )


@pytest.fixture(scope="session")
def uji_split(uji_small):
    """(train, val, test) split of the small UJI dataset."""
    return uji_small.split((0.7, 0.1, 0.2), rng=202)


@pytest.fixture(scope="session")
def ipin_small():
    """A small IPIN2016-like single-building dataset."""
    return generate_ipin_like(
        n_spots=30, measurements_per_spot=5, n_aps=12, seed=303
    )


@pytest.fixture(scope="session")
def walks_small():
    """Two short recorded walks (fast IMU scale)."""
    simulator = CampusWalkSimulator(samples_per_segment=128)
    return simulator.record_session(n_walks=2, references_per_walk=14, rng=404)


@pytest.fixture(scope="session")
def path_data(walks_small):
    """A small path dataset over the short walks."""
    return build_path_dataset(
        walks_small, n_paths=240, max_length=6, downsample=16, rng=505
    )


@pytest.fixture(scope="session")
def raw_segments(walks_small):
    """Pooled raw IMU segments aligned with ``path_data`` indexing."""
    return np.vstack([w.segments for w in walks_small])


@pytest.fixture(scope="session")
def walk_headings(walks_small):
    """Pooled per-reference headings aligned with ``path_data``."""
    return np.concatenate([w.headings for w in walks_small])


@pytest.fixture(scope="session")
def trained_noble_wifi(uji_split):
    """A NObLe Wi-Fi model trained briefly on the small dataset."""
    from repro.localization import NObLeWifi

    train, _val, _test = uji_split
    model = NObLeWifi(
        epochs=120, batch_size=32, val_fraction=0.0, seed=606
    )
    model.fit(train)
    return model


@pytest.fixture(scope="session")
def trained_noble_tracker(path_data):
    """A NObLe IMU tracker trained briefly on the small path dataset."""
    from repro.tracking import NObLeTracker

    tracker = NObLeTracker(epochs=40, patience=40, seed=707)
    tracker.fit(path_data)
    return tracker
