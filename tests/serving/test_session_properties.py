"""Session-parity properties of the streaming tracking tier, pinned.

Every test drives a *manual* :class:`TrackingFrontend` (``start=False``)
or a bare :class:`SessionManager` with an injected fake clock — no
worker thread, zero ``time.sleep``, fully deterministic under any
scheduler (the PR 4 deadline-property idiom applied to stateful
serving).

The core property (seeded, randomized sweeps): every tick served
through the batched-across-users path is **bitwise** equal to running
that session alone through the offline tracker oracle
(:func:`solo_trajectory`), under

* interleaved arrival orders across users,
* users dropping out mid-stream (their absence must not perturb the
  survivors' batch composition results),
* mid-stream idle-TTL eviction with warm restore from the checkpoint
  store (the evicted track continues, still bitwise on-oracle).
"""

import numpy as np
import pytest

from repro.core.persistence import ModelStore
from repro.data.imu import CampusWalkSimulator, court_route_graph
from repro.geometry.segments import route_graph_segments
from repro.serving.sessions import (
    SessionManager,
    StreamingParticleTracker,
    StreamingPDRTracker,
    TrackingFrontend,
    solo_trajectory,
)


class FakeClock:
    """Injectable monotonic clock, advanced explicitly by the test."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def walk():
    sim = CampusWalkSimulator(samples_per_segment=64)
    return sim.record_session(n_walks=1, references_per_walk=24, rng=404)[0]


@pytest.fixture(scope="module")
def route_segs():
    route = court_route_graph()
    return route_graph_segments(route.nodes, route.adjacency)


def _streams(walk, users: int, ticks: int):
    """User u's tick stream: the walk with a u-segment head start."""
    return [
        [walk.segments[u + k] for k in range(ticks)] for u in range(users)
    ]


def _drain(frontend, clock, step_s: float = 0.01, max_steps: int = 10_000):
    """Pump until the queue is empty, advancing the fake clock."""
    for _ in range(max_steps):
        while frontend.pump() > 0:
            pass
        if not frontend.stats().pending:
            return
        clock.advance(step_s)
    raise AssertionError("frontend did not drain")


@pytest.mark.parametrize("seed", [0, 1, 2, 7])
def test_batched_interleaved_arrivals_match_solo_oracle(walk, seed):
    """Random interleavings + mid-stream dropouts, bitwise on-oracle.

    Users submit their ticks in a random global interleaving (per-user
    order preserved — IMU streams are sequential by nature); a random
    subset of users stops submitting partway.  Whatever batches the
    deadline pump forms, every answered tick must be bitwise equal to
    the user's solo offline trajectory.
    """
    rng = np.random.default_rng(seed)
    users = int(rng.integers(3, 7))
    ticks = int(rng.integers(4, 11))
    streams = _streams(walk, users, ticks)
    dropped_after = {
        u: (int(rng.integers(1, ticks)) if rng.random() < 0.3 else ticks)
        for u in range(users)
    }

    clock = FakeClock()
    engine = StreamingPDRTracker()
    manager = SessionManager(engine, clock=clock, seed=seed)
    for u in range(users):
        manager.start_session(
            u, walk.references[u], float(walk.headings[u])
        )
    frontend = TrackingFrontend(
        manager,
        batch_size=int(rng.integers(2, 6)),
        deadline_ms=20.0,
        clock=clock,
        start=False,
    )

    # random interleaving of (user, tick) arrivals, per-user order kept
    arrivals = [
        u for u in range(users) for _ in range(dropped_after[u])
    ]
    rng.shuffle(arrivals)
    next_tick = {u: 0 for u in range(users)}
    tickets = {u: [] for u in range(users)}
    for u in arrivals:
        k = next_tick[u]
        next_tick[u] = k + 1
        tickets[u].append(frontend.submit(u, imu=streams[u][k]))
        if rng.random() < 0.4:
            clock.advance(float(rng.uniform(0.0, 0.03)))
            while frontend.pump() > 0:
                pass
    _drain(frontend, clock)

    for u in range(users):
        n = dropped_after[u]
        got = np.array(
            [ticket.result(0.0).coordinates[0] for ticket in tickets[u]]
        )
        oracle = solo_trajectory(
            engine,
            streams[u][:n],
            walk.references[u],
            float(walk.headings[u]),
            seed=manager.session_seed(u),
        )
        assert got.shape == (n, 2)
        assert np.array_equal(got, oracle), f"user {u} diverged from solo"


@pytest.mark.parametrize("seed", [3, 11])
def test_particle_sessions_batched_match_solo_oracle(walk, route_segs, seed):
    """The stochastic engine holds the same bitwise property: each
    session owns its RNG stream, so batch composition cannot leak
    randomness across users."""
    rng = np.random.default_rng(seed)
    users, ticks = 4, 6
    streams = _streams(walk, users, ticks)
    clock = FakeClock()
    engine = StreamingParticleTracker(route_segs, n_particles=40)
    manager = SessionManager(engine, clock=clock, seed=seed)
    for u in range(users):
        manager.start_session(u, walk.references[u], float(walk.headings[u]))
    frontend = TrackingFrontend(
        manager, batch_size=3, deadline_ms=10.0, clock=clock, start=False
    )
    arrivals = [u for u in range(users) for _ in range(ticks)]
    rng.shuffle(arrivals)
    next_tick = {u: 0 for u in range(users)}
    tickets = {u: [] for u in range(users)}
    for u in arrivals:
        k = next_tick[u]
        next_tick[u] = k + 1
        tickets[u].append(frontend.submit(u, imu=streams[u][k]))
    _drain(frontend, clock)
    for u in range(users):
        got = np.array(
            [ticket.result(0.0).coordinates[0] for ticket in tickets[u]]
        )
        oracle = solo_trajectory(
            engine,
            streams[u],
            walk.references[u],
            float(walk.headings[u]),
            seed=manager.session_seed(u),
        )
        assert np.array_equal(got, oracle), f"user {u} diverged from solo"


def test_mid_stream_eviction_then_warm_restore_stays_on_oracle(
    walk, tmp_path
):
    """Idle-TTL eviction mid-stream is invisible to the trajectory.

    One user goes idle past the TTL and is evicted (checkpoint + drop)
    by the sweep that runs after another user's tick; when its stream
    resumes, the manager warm-restores from the store and the full
    served trajectory is still bitwise equal to the uninterrupted solo
    oracle.
    """
    users, ticks = 3, 8
    streams = _streams(walk, users, ticks)
    clock = FakeClock()
    engine = StreamingPDRTracker()
    manager = SessionManager(
        engine,
        store=ModelStore(tmp_path),
        idle_ttl_s=5.0,
        clock=clock,
        seed=21,
    )
    for u in range(users):
        manager.start_session(u, walk.references[u], float(walk.headings[u]))

    served = {u: [] for u in range(users)}
    idle_user = 1

    def tick(user):
        served[user].append(
            manager.step(user, streams[user][len(served[user])])
        )

    # phase 1: everyone streams
    for _ in range(3):
        for u in range(users):
            tick(u)
        clock.advance(2.0)
    # phase 2: the idle user stops; the others' ticks run the TTL sweep
    for _ in range(3):
        for u in range(users):
            if u != idle_user:
                tick(u)
        clock.advance(2.0)
    assert idle_user not in manager.active_users()
    assert manager.stats().evicted == 1

    # phase 3: the stream resumes; the first tick warm-restores
    for u in range(users):
        while len(served[u]) < ticks:
            tick(u)
    assert manager.stats().restored == 1

    for u in range(users):
        got = np.array(served[u])
        oracle = solo_trajectory(
            engine,
            streams[u],
            walk.references[u],
            float(walk.headings[u]),
            seed=manager.session_seed(u),
        )
        assert np.array_equal(got, oracle), f"user {u} diverged after evict"


def test_eviction_is_deterministic_under_fake_clock(walk, tmp_path):
    """TTL semantics pinned: idle strictly past the TTL evicts, exactly
    at the TTL does not (``>`` not ``>=``), and disabled TTL never
    evicts."""
    engine = StreamingPDRTracker()
    clock = FakeClock()
    manager = SessionManager(
        engine,
        store=ModelStore(tmp_path),
        idle_ttl_s=10.0,
        clock=clock,
        seed=0,
    )
    manager.start_session("a", walk.references[0], float(walk.headings[0]))
    manager.step("a", walk.segments[0])
    clock.advance(10.0)
    assert manager.evict_idle() == []  # exactly TTL: still live
    clock.advance(0.5)
    assert manager.evict_idle() == ["a"]
    assert manager.stats().active == 0

    unbounded = SessionManager(engine, clock=clock, seed=0)
    unbounded.start_session("b", walk.references[0], 0.0)
    clock.advance(1e9)
    assert unbounded.evict_idle() == []


def test_wave_schedule_preserves_per_user_order_in_one_batch(walk):
    """Two ticks of one user inside a single batch are applied in
    submission order (wave k = each user's k-th tick), interleaved with
    other users — the across-users-not-across-time batching contract."""
    users, ticks = 3, 4
    streams = _streams(walk, users, ticks)
    engine = StreamingPDRTracker()
    manager = SessionManager(engine, seed=5)
    for u in range(users):
        manager.start_session(u, walk.references[u], float(walk.headings[u]))
    # one giant batch holding every user's full stream, interleaved
    items = [
        (u, streams[u][k]) for k in range(ticks) for u in range(users)
    ]
    out = manager.step_batch(items)
    for u in range(users):
        got = np.array([out[k * users + u] for k in range(ticks)])
        oracle = solo_trajectory(
            engine,
            streams[u],
            walk.references[u],
            float(walk.headings[u]),
            seed=manager.session_seed(u),
        )
        assert np.array_equal(got, oracle)


def test_mixed_segment_lengths_in_one_wave_rejected(walk):
    engine = StreamingPDRTracker()
    manager = SessionManager(engine, seed=5)
    manager.start_session("a", walk.references[0], 0.0)
    manager.start_session("b", walk.references[1], 0.0)
    with pytest.raises(ValueError, match="share one segment"):
        manager.step_batch(
            [("a", walk.segments[0]), ("b", walk.segments[1][:32])]
        )
